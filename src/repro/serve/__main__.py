"""CLI of the analysis daemon: ``python -m repro.serve``.

Modes (exactly one):

``--wire``
    Serve line-delimited JSON-RPC 2.0 over stdin/stdout until EOF or a
    ``shutdown`` request.  stdout is the protocol channel, so all
    logging goes to stderr.

``--listen HOST:PORT``
    Serve over a localhost TCP socket (``PORT`` 0 binds an ephemeral
    port, reported on stderr) until a client sends ``shutdown``.

``--selfcheck``
    Spawn a ``--wire`` daemon as a subprocess and drive a scripted
    client batch through it: all four analysis methods, a malformed
    line, an unknown method, and a backpressure probe against a
    saturated pool -- then a clean shutdown.  Exit 0 only if every
    probe got the expected envelope.  This is the CI smoke.

Common knobs: ``--workers`` (pool threads), ``--max-inflight``
(backpressure bound), ``--max-programs`` (interner capacity).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from typing import List, Optional, Tuple

from repro._version import __version__
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import metrics_registry
from repro.serve.dispatch import DEFAULT_MAX_PROGRAMS, Dispatcher
from repro.serve.pool import WorkerPool
from repro.serve.protocol import OVERLOADED
from repro.serve.sockets import TCPServer, serve_stdio

LOG = get_logger("serve")

#: DSL program used by the selfcheck batch.
SELFCHECK_DSL = """
program servecheck
  real x(32), y(32)
  real s
  region L do i = 2, 31
    y(i) = x(i-1) + x(i+1)
    s = s + y(i)
    liveout y, s
  end region
end program
"""


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Analysis-as-a-service daemon (JSON-RPC 2.0, "
        "line-delimited).",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--wire",
        action="store_true",
        help="serve over stdin/stdout (logs go to stderr)",
    )
    mode.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="serve over a TCP socket (port 0 = ephemeral)",
    )
    mode.add_argument(
        "--selfcheck",
        action="store_true",
        help="drive a scripted client batch through a child --wire "
        "daemon and exit 0 on success (CI smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads executing requests (default 4)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="queued-or-running requests before OVERLOADED (-32029) "
        "rejections (default 8)",
    )
    parser.add_argument(
        "--max-programs",
        type=int,
        default=DEFAULT_MAX_PROGRAMS,
        help="interned programs held live (LRU; default %(default)s)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational log output",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log output as JSON lines",
    )
    return parser.parse_args(argv)


def _parse_listen(value: str) -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise SystemExit(
            f"--listen needs HOST:PORT (got {value!r})"
        )
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"--listen port must be an integer (got {port!r})")


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    # In wire mode stdout belongs to the protocol; logs always go to
    # stderr so both modes behave identically.
    configure_logging(
        quiet=args.quiet, json_lines=args.log_json, stream=sys.stderr
    )
    if args.selfcheck:
        return _selfcheck(args)

    # Arm the metrics registry so per-request meta deltas are scoped
    # through the obs counters and `metrics` reports live numbers.
    metrics_registry().enable()
    dispatcher = Dispatcher(max_programs=args.max_programs)
    pool = WorkerPool(workers=args.workers, max_inflight=args.max_inflight)
    LOG.info(
        "daemon starting",
        version=__version__,
        workers=args.workers,
        max_inflight=args.max_inflight,
    )
    try:
        if args.wire:
            serve_stdio(dispatcher, pool)
        else:
            host, port = _parse_listen(args.listen)
            server = TCPServer(dispatcher, pool, host=host, port=port)
            server.start()
            try:
                server.wait()
            except KeyboardInterrupt:
                server.shutdown()
    finally:
        pool.close()
    LOG.info("daemon stopped", cache=dispatcher.cache.stats())
    return 0


# ----------------------------------------------------------------------
# selfcheck
# ----------------------------------------------------------------------
def _selfcheck(args) -> int:
    """Scripted client batch against a child ``--wire`` daemon."""
    failures: List[str] = []
    # Two workers / two in-flight makes the backpressure probe
    # deterministic: two sleeps occupy the pool, the next request
    # must bounce.
    child = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--wire",
            "--workers",
            "2",
            "--max-inflight",
            "2",
            "--quiet",
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )

    def send(payload: dict) -> None:
        child.stdin.write(json.dumps(payload) + "\n")
        child.stdin.flush()

    def send_raw(line: str) -> None:
        child.stdin.write(line + "\n")
        child.stdin.flush()

    def recv() -> Optional[dict]:
        line = child.stdout.readline()
        if not line:
            return None
        return json.loads(line)

    def request(req_id, method, params=None) -> None:
        send(
            {
                "jsonrpc": "2.0",
                "id": req_id,
                "method": method,
                "params": params or {},
            }
        )

    def expect(tag: str, check) -> None:
        response = recv()
        if response is None:
            failures.append(f"{tag}: daemon closed the pipe early")
            return
        try:
            check(response)
        except AssertionError as exc:
            failures.append(f"{tag}: {exc} (got {response})")

    try:
        program = {"dsl": SELFCHECK_DSL}

        # -- the four analysis methods --------------------------------
        request(1, "analyze", program)
        expect(
            "analyze",
            lambda r: _assert(
                r.get("result", {}).get("regions"), "no regions in result"
            ),
        )
        request(2, "label", dict(program, region="L"))
        expect(
            "label",
            lambda r: _assert(
                r.get("result", {}).get("labels"), "no labels in result"
            ),
        )
        request(3, "simulate", dict(program, engine="case"))
        expect(
            "simulate",
            lambda r: _assert(
                r.get("result", {}).get("bit_identical") is True,
                "simulate not bit-identical",
            ),
        )
        request(4, "speedup_sweep", dict(program, processors=[1, 4]))
        expect(
            "speedup_sweep",
            lambda r: _assert(
                r.get("result", {}).get("engines"), "no engines in result"
            ),
        )
        # Re-analyze: the shared cache must produce warm hits now.
        request(5, "analyze", program)
        expect(
            "analyze-warm",
            lambda r: _assert(
                r.get("result", {}).get("meta", {})
                .get("cache", {})
                .get("hits", 0)
                > 0,
                "second analyze produced no warm cache hits",
            ),
        )

        # -- error envelopes ------------------------------------------
        send_raw("this is not json")
        expect(
            "malformed",
            lambda r: _assert(
                r.get("error", {}).get("code") == -32700,
                "malformed line did not produce PARSE_ERROR",
            ),
        )
        request(6, "no_such_method")
        expect(
            "unknown-method",
            lambda r: _assert(
                r.get("error", {}).get("code") == -32601,
                "unknown method did not produce METHOD_NOT_FOUND",
            ),
        )

        # -- backpressure probe ---------------------------------------
        request(7, "sleep", {"seconds": 1.0})
        request(8, "sleep", {"seconds": 1.0})
        request(9, "ping")
        # The rejection is written inline by the reader thread, so it
        # arrives before the sleeps complete.
        expect(
            "backpressure",
            lambda r: _assert(
                r.get("id") == 9
                and r.get("error", {}).get("code") == OVERLOADED,
                "saturated pool did not reject with OVERLOADED",
            ),
        )
        expect("sleep-1", lambda r: _assert(r.get("result"), "sleep 1 failed"))
        expect("sleep-2", lambda r: _assert(r.get("result"), "sleep 2 failed"))

        # -- clean shutdown -------------------------------------------
        request(10, "shutdown")
        expect(
            "shutdown",
            lambda r: _assert(
                r.get("result", {}).get("stopping") is True,
                "shutdown not acknowledged",
            ),
        )
        child.stdin.close()
        code = child.wait(timeout=30)
        if code != 0:
            failures.append(f"daemon exit code {code} (want 0)")
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=10)

    if failures:
        for failure in failures:
            LOG.error(f"selfcheck FAIL {failure}")
        return 1
    LOG.info(
        "selfcheck OK (analyze/label/simulate/speedup_sweep, error "
        "envelopes, backpressure, warm cache, clean shutdown)"
    )
    return 0


def _assert(condition, message: str) -> None:
    if not condition:
        raise AssertionError(message)


if __name__ == "__main__":
    raise SystemExit(main())
