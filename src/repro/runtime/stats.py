"""Execution statistics collected by the interpreters and engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ExecutionStats:
    """Counters shared by the sequential interpreter and the speculative engines."""

    #: Total simulated cycles.
    cycles: int = 0
    #: Dynamic memory reference counts keyed by static reference uid.
    reference_counts: Dict[str, int] = field(default_factory=dict)
    #: Dynamic reads / writes (totals).
    reads: int = 0
    writes: int = 0
    #: References that went to speculative storage / bypassed it.
    speculative_accesses: int = 0
    idempotent_accesses: int = 0
    private_accesses: int = 0
    #: Speculation events.
    violations: int = 0
    control_mispredictions: int = 0
    rollbacks: int = 0
    segments_started: int = 0
    segments_committed: int = 0
    overflow_stalls: int = 0
    overflow_entries: int = 0
    commit_entries: int = 0
    #: Wasted work: cycles spent in executions that were rolled back.
    wasted_cycles: int = 0

    # ------------------------------------------------------------------
    def count_reference(self, uid: str) -> None:
        self.reference_counts[uid] = self.reference_counts.get(uid, 0) + 1

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Combine two stats objects (cycles add; counters add)."""
        merged = ExecutionStats()
        for name in (
            "cycles",
            "reads",
            "writes",
            "speculative_accesses",
            "idempotent_accesses",
            "private_accesses",
            "violations",
            "control_mispredictions",
            "rollbacks",
            "segments_started",
            "segments_committed",
            "overflow_stalls",
            "overflow_entries",
            "commit_entries",
            "wasted_cycles",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.reference_counts = dict(self.reference_counts)
        for uid, count in other.reference_counts.items():
            merged.reference_counts[uid] = merged.reference_counts.get(uid, 0) + count
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Scalar counters as a plain dict (reference counts omitted)."""
        return {
            "cycles": self.cycles,
            "reads": self.reads,
            "writes": self.writes,
            "speculative_accesses": self.speculative_accesses,
            "idempotent_accesses": self.idempotent_accesses,
            "private_accesses": self.private_accesses,
            "violations": self.violations,
            "control_mispredictions": self.control_mispredictions,
            "rollbacks": self.rollbacks,
            "segments_started": self.segments_started,
            "segments_committed": self.segments_committed,
            "overflow_stalls": self.overflow_stalls,
            "overflow_entries": self.overflow_entries,
            "commit_entries": self.commit_entries,
            "wasted_cycles": self.wasted_cycles,
        }
