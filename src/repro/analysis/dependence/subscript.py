"""Affine subscript extraction.

A subscript expression is *affine for dependence testing* when it can be
written as::

    region_coeff * region_index
    + sum(inner_coeff[j] * inner_index_j)
    + sum(symbol_coeff[s] * invariant_symbol_s)
    + constant

where the invariant symbols are region-read-only scalars (their value is
fixed for the whole region execution, e.g. problem sizes like ``n``).
Anything else -- subscripted subscripts such as ``K(E)``, reads of
variables written inside the region, products of indices -- is
non-affine and forces conservative may-dependence answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.analysis.access import linear_terms
from repro.ir.expr import Expr, Index
from repro.ir.reference import MemoryReference


@dataclass(frozen=True)
class AffineSubscript:
    """Affine decomposition of one subscript expression."""

    #: Coefficient of the region loop index (0 when absent).
    region_coeff: int
    #: Coefficients of inner ``DO`` loop indices, keyed by index name.
    inner_coeffs: Tuple[Tuple[str, int], ...]
    #: Coefficients of region-invariant symbols, keyed by symbol name.
    symbol_coeffs: Tuple[Tuple[str, int], ...]
    #: Constant term.
    const: int
    #: False when the expression could not be decomposed.
    affine: bool = True

    @property
    def inner(self) -> Dict[str, int]:
        return dict(self.inner_coeffs)

    @property
    def symbols(self) -> Dict[str, int]:
        return dict(self.symbol_coeffs)

    @property
    def uses_region_index(self) -> bool:
        return self.region_coeff != 0

    @property
    def uses_inner_indices(self) -> bool:
        return bool(self.inner_coeffs)

    @staticmethod
    def non_affine() -> "AffineSubscript":
        return AffineSubscript(0, (), (), 0, affine=False)


def extract_affine(
    expr: Expr,
    region_index: Optional[str],
    inner_indices: Set[str],
    invariant_symbols: Set[str],
) -> AffineSubscript:
    """Decompose ``expr`` into an :class:`AffineSubscript`.

    ``inner_indices`` are the ``DO`` index names in scope for the
    reference; ``invariant_symbols`` are region-read-only scalars.
    """
    if any(isinstance(node, Index) for node in expr.walk()):
        return AffineSubscript.non_affine()
    lin = linear_terms(expr)
    if lin is None:
        return AffineSubscript.non_affine()
    coeffs, const = lin
    region_coeff = 0
    inner: Dict[str, int] = {}
    symbols: Dict[str, int] = {}
    for name, coeff in coeffs.items():
        if coeff == 0:
            continue
        if region_index is not None and name == region_index:
            region_coeff = coeff
        elif name in inner_indices:
            inner[name] = coeff
        elif name in invariant_symbols:
            symbols[name] = coeff
        else:
            return AffineSubscript.non_affine()
    return AffineSubscript(
        region_coeff=region_coeff,
        inner_coeffs=tuple(sorted(inner.items())),
        symbol_coeffs=tuple(sorted(symbols.items())),
        const=const,
        affine=True,
    )


def affine_subscripts_of(
    ref: MemoryReference,
    region_index: Optional[str],
    invariant_symbols: Set[str],
) -> Tuple[AffineSubscript, ...]:
    """Affine decompositions of all subscripts of ``ref``."""
    inner_indices = {do.index for do in ref.enclosing_loops}
    return tuple(
        extract_affine(sub, region_index, inner_indices, invariant_symbols)
        for sub in ref.subscripts
    )
