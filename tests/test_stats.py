"""ExecutionStats: merge/as_dict must cover every counter.

Regression for the hand-maintained field lists that silently dropped
any newly added engine counter from merges and reports; both methods
now derive the counter list from ``dataclasses.fields``.
"""

import dataclasses

from repro.runtime.stats import ExecutionStats, scalar_counter_names


def all_scalar_fields():
    return [
        f.name
        for f in dataclasses.fields(ExecutionStats)
        if f.name != "reference_counts"
    ]


class TestCounterCoverage:
    def test_scalar_counter_names_match_dataclass_fields(self):
        assert list(scalar_counter_names()) == all_scalar_fields()

    def test_as_dict_covers_every_counter(self):
        stats = ExecutionStats()
        assert set(stats.as_dict()) == set(all_scalar_fields())

    def test_merge_covers_every_counter(self):
        fields = all_scalar_fields()
        a = ExecutionStats()
        b = ExecutionStats()
        # Distinct nonzero values per field so a dropped counter is
        # impossible to miss.
        for i, name in enumerate(fields):
            setattr(a, name, 10 + i)
            setattr(b, name, 1000 + i)
        merged = a.merge(b)
        for i, name in enumerate(fields):
            assert getattr(merged, name) == 1010 + 2 * i, name

    def test_merge_is_not_in_place(self):
        a = ExecutionStats(cycles=5)
        b = ExecutionStats(cycles=7)
        merged = a.merge(b)
        assert merged.cycles == 12
        assert a.cycles == 5 and b.cycles == 7

    def test_merge_adds_reference_counts(self):
        a = ExecutionStats()
        b = ExecutionStats()
        a.count_reference("r0")
        a.count_reference("r0")
        b.count_reference("r0")
        b.count_reference("w1")
        merged = a.merge(b)
        assert merged.reference_counts == {"r0": 3, "w1": 1}
        assert "reference_counts" not in merged.as_dict()

    def test_speculation_counters_present(self):
        # The engine counters the ISSUE names must exist and survive a
        # merge round trip.
        required = {
            "violations",
            "rollbacks",
            "overflow_stalls",
            "commit_entries",
            "wasted_cycles",
        }
        assert required <= set(scalar_counter_names())
