"""Pretty printer.

Renders programs, regions and statements in the same Fortran-flavoured
surface syntax the DSL front end accepts (see :mod:`repro.ir.dsl`);
useful for debugging workload generators and for documentation.  The
printer aims for readability, not byte-exact round-tripping.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ir.program import Program
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion, Region
from repro.ir.stmt import Assign, Do, If, Statement

_INDENT = "  "


def _fmt_stmt(stmt: Statement, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Assign):
        subs = (
            "(" + ", ".join(str(s) for s in stmt.target_subscripts) + ")"
            if stmt.target_subscripts
            else ""
        )
        line = f"{pad}{stmt.target}{subs} = {stmt.rhs}"
        if stmt.guard is not None:
            line = f"{pad}if ({stmt.guard}) {stmt.target}{subs} = {stmt.rhs}"
        return [line]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({stmt.cond}) then"]
        for sub in stmt.then_body:
            lines.extend(_fmt_stmt(sub, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}else")
            for sub in stmt.else_body:
                lines.extend(_fmt_stmt(sub, depth + 1))
        lines.append(f"{pad}end if")
        return lines
    if isinstance(stmt, Do):
        step = f", {stmt.step}" if str(stmt.step) != "1" else ""
        lines = [f"{pad}do {stmt.index} = {stmt.lower}, {stmt.upper}{step}"]
        for sub in stmt.body:
            lines.extend(_fmt_stmt(sub, depth + 1))
        lines.append(f"{pad}end do")
        return lines
    raise TypeError(f"cannot print statement {stmt!r}")  # pragma: no cover


def format_statements(body: Sequence[Statement], depth: int = 0) -> str:
    """Format a statement list."""
    lines: List[str] = []
    for stmt in body:
        lines.extend(_fmt_stmt(stmt, depth))
    return "\n".join(lines)


def format_region(region: Region, depth: int = 0) -> str:
    """Format one region."""
    pad = _INDENT * depth
    lines: List[str] = []
    hint = ""
    if region.speculative_hint is True:
        hint = " speculative"
    elif region.speculative_hint is False:
        hint = " parallel"
    if isinstance(region, LoopRegion):
        step = f", {region.step}" if str(region.step) != "1" else ""
        lines.append(
            f"{pad}region {region.name}{hint} do {region.index} = "
            f"{region.lower}, {region.upper}{step}"
        )
        lines.append(format_statements(region.body, depth + 1))
        if region.live_out:
            lines.append(f"{pad}{_INDENT}liveout {', '.join(sorted(region.live_out))}")
        lines.append(f"{pad}end region")
    elif isinstance(region, ExplicitRegion):
        lines.append(f"{pad}region {region.name}{hint} explicit")
        for seg in region.segments:
            lines.append(f"{pad}{_INDENT}segment {seg.name}")
            lines.append(format_statements(seg.body, depth + 2))
            if seg.branch is not None:
                lines.append(f"{pad}{_INDENT}{_INDENT}branch ({seg.branch})")
            lines.append(f"{pad}{_INDENT}end segment")
        for src, dsts in region.edges.items():
            shown = [d for d in dsts if d != EXIT_NODE]
            if shown:
                lines.append(f"{pad}{_INDENT}edges {src} -> {', '.join(shown)}")
        if region.live_out:
            lines.append(f"{pad}{_INDENT}liveout {', '.join(sorted(region.live_out))}")
        lines.append(f"{pad}end region")
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot print region {region!r}")
    return "\n".join(line for line in lines if line)


def format_program(program: Program) -> str:
    """Format a whole program in DSL-like surface syntax."""
    lines: List[str] = [f"program {program.name}"]
    for sym in program.symbols:
        if sym.is_array:
            dims = ", ".join(str(d) for d in sym.shape)
            lines.append(f"{_INDENT}real {sym.name}({dims})")
        else:
            init = f" = {sym.initial}" if sym.initial else ""
            lines.append(f"{_INDENT}real {sym.name}{init}")
    if program.init:
        lines.append(f"{_INDENT}init")
        lines.append(format_statements(program.init, 2))
        lines.append(f"{_INDENT}end init")
    for region in program.regions:
        lines.append(format_region(region, 1))
    if program.finale:
        lines.append(f"{_INDENT}finale")
        lines.append(format_statements(program.finale, 2))
        lines.append(f"{_INDENT}end finale")
    lines.append("end program")
    return "\n".join(lines)
