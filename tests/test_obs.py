"""Observability-layer tests: tracer, metrics, export, logging, CLI.

The acceptance bar: a disabled tracer is effectively free (shared
null handle, generous absolute overhead bound), spans nest correctly
per thread and across threads, a real P=4 speedup export passes the
Chrome-trace schema check with dispatch / stall / squash / commit
present for both engines, and the metrics adapters round-trip the
existing telemetry objects without losing a counter.
"""

import io
import json
import threading
import time

import pytest

import repro.obs as obs
from repro.bench.harness import Measurement, measure_family
from repro.bench.workloads import generate
from repro.obs.export import (
    ChromeTraceBuilder,
    summarize_trace,
    validate_chrome_trace,
)
from repro.obs.log import configure_logging, get_logger, reset_logging
from repro.obs.metrics import (
    MetricsRegistry,
    ingest_execution_stats,
    ingest_recording,
    metrics_registry,
    percentile,
    stddev,
    validate_metrics,
)
from repro.obs.tracer import TRACER, span_tree, traced
from repro.obs.__main__ import main as obs_main
from repro.timing import CostModel, speculative_makespan

COST = CostModel()


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts and ends with observability disarmed."""
    obs.disable()
    TRACER.reset()
    metrics_registry().reset()
    reset_logging()
    yield
    obs.disable()
    TRACER.reset()
    metrics_registry().reset()
    reset_logging()


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_returns_shared_null_handle(self):
        first = TRACER.span("a", x=1)
        second = TRACER.span("b")
        assert first is second  # no allocation on the disabled path
        with first as handle:
            handle.set(anything=True)  # all no-ops
        TRACER.event("never-recorded")
        assert TRACER.finished_spans() == []
        assert TRACER.events() == []

    def test_disabled_overhead_is_negligible(self):
        # Generous absolute bound: 200k disabled span + event calls in
        # under a second (they are one attribute check each; even a
        # loaded CI box does this in a few hundredths).
        t0 = time.perf_counter()
        for _ in range(200_000):
            TRACER.span("hot")
            TRACER.event("hot")
        assert time.perf_counter() - t0 < 1.0

    def test_span_nesting_and_attributes(self):
        TRACER.enable()
        with TRACER.span("outer", category="test", region="r") as outer:
            with TRACER.span("inner", category="test") as inner:
                inner.set(depth=2)
            outer.set(done=True)
        spans = TRACER.finished_spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].attributes == {"depth": 2}
        assert by_name["outer"].attributes == {"region": "r", "done": True}
        assert by_name["outer"].duration_ns >= by_name["inner"].duration_ns
        tree = span_tree(spans)
        assert [s.name for s in tree[None]] == ["outer"]
        assert [s.name for s in tree[by_name["outer"].span_id]] == ["inner"]

    def test_events_attach_to_current_span(self):
        TRACER.enable()
        with TRACER.span("parent") as handle:
            TRACER.event("marker", age=3)
        (event,) = TRACER.events()
        assert event.name == "marker"
        assert event.parent_id == handle.span.span_id
        assert event.attributes == {"age": 3}

    def test_exception_recorded_and_stack_unwound(self):
        TRACER.enable()
        with pytest.raises(ValueError):
            with TRACER.span("boom"):
                raise ValueError("nope")
        (span,) = TRACER.finished_spans()
        assert span.attributes["error"] == "ValueError"
        assert TRACER.current_span() is None

    def test_thread_safety_and_per_thread_stacks(self):
        TRACER.enable()
        workers = 8
        spans_per_worker = 25
        barrier = threading.Barrier(workers)

        def work(index):
            barrier.wait()
            for i in range(spans_per_worker):
                with TRACER.span(f"w{index}", category="test", i=i):
                    with TRACER.span(f"w{index}.child", category="test"):
                        TRACER.event(f"w{index}.event")

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = TRACER.finished_spans()
        assert len(spans) == workers * spans_per_worker * 2
        assert len(TRACER.events()) == workers * spans_per_worker
        # Every child's parent lives on the same thread: no cross-thread
        # stack contamination.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].thread_id == span.thread_id
                assert by_id[span.parent_id].name == span.name.split(".")[0]
        # Span ids are unique across threads.
        assert len(by_id) == len(spans)

    def test_traced_decorator(self):
        calls = []

        @traced("decorated.call", category="test")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(2) == 4  # disabled: wrapper short-circuits
        assert TRACER.finished_spans() == []
        TRACER.enable()
        assert fn(3) == 6
        (span,) = TRACER.finished_spans()
        assert span.name == "decorated.call"
        assert calls == [2, 3]

    def test_snapshot_schema(self):
        TRACER.enable()
        with TRACER.span("s"):
            TRACER.event("e")
        payload = TRACER.snapshot()
        assert payload["schema"] == "repro.obs.spans/v1"
        assert len(payload["spans"]) == 1
        assert len(payload["events"]) == 1
        json.dumps(payload)  # JSON-ready


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0
        histogram = registry.histogram("h")
        for v in (1, 2, 3, 4, 100):
            histogram.observe(v)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["sum"] == 110
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["p50"] == 3
        # create-or-get: same instrument comes back.
        assert registry.counter("c") is counter

    def test_percentile_and_stddev(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 95) == 7.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert stddev([]) == 0.0
        assert stddev([5.0]) == 0.0
        assert stddev([2.0, 4.0]) == 1.0

    def test_execution_stats_round_trip(self):
        workload = generate("stencil", size=8, statements=3)
        from repro.runtime.engines import CASEEngine

        result = CASEEngine(workload.program, window=4, capacity=None).run()
        registry = MetricsRegistry()
        ingested = ingest_execution_stats(result.stats, registry=registry)
        expected = result.stats.as_dict()
        snapshot = registry.snapshot()
        for name, value in expected.items():
            assert snapshot["counters"][f"runtime.{name}"] == int(value)
            assert ingested[f"runtime.{name}"] == int(value)
        assert validate_metrics(snapshot) == []

    def test_recording_round_trip(self):
        from repro.runtime.engines import HOSEEngine
        from repro.timing.events import TimingRecorder

        workload = generate("stencil", size=8, statements=3)
        recorder = TimingRecorder(COST)
        HOSEEngine(
            workload.program, window=4, capacity=None, recorder=recorder
        ).run()
        recording = recorder.recording()
        registry = MetricsRegistry()
        ingested = ingest_recording(recording, registry=registry)
        summary = recording.summary()
        snapshot = registry.snapshot()
        for name in (
            "regions",
            "segments",
            "attempts",
            "squashed_attempts",
            "committed_segments",
            "busy_cycles",
        ):
            assert snapshot["counters"][f"timing.{name}"] == summary[name]
            assert ingested[f"timing.{name}"] == summary[name]
        histogram = snapshot["histograms"]["timing.attempt_cycles"]
        assert histogram["count"] == summary["attempts"]
        assert histogram["sum"] == summary["busy_cycles"]

    def test_recording_as_dict_schema(self):
        from repro.runtime.engines import CASEEngine
        from repro.timing.events import TimingRecorder

        workload = generate("reduction", size=8, statements=3)
        recorder = TimingRecorder(COST)
        CASEEngine(
            workload.program, window=4, capacity=8, recorder=recorder
        ).run()
        payload = recorder.recording().as_dict()
        assert payload["schema"] == "repro.timing.recording/v1"
        assert payload["engine"] == "case"
        kinds = {section["type"] for section in payload["sections"]}
        assert "region" in kinds
        region = next(s for s in payload["sections"] if s["type"] == "region")
        segment = region["segments"][0]
        assert {"key", "age", "outcome", "attempts"} <= set(segment)
        json.dumps(payload)  # JSON-ready end to end

    def test_cache_hit_miss_counters_when_collecting(self):
        from repro.analysis.cache import AnalysisCache
        from repro.idempotency.labeling import label_region

        workload = generate("stencil", size=6, statements=2)
        region = workload.program.regions[0]
        registry = metrics_registry()
        registry.enable()
        cache = AnalysisCache()
        label_region(region, fast_path=True, cache=cache)
        label_region(region, fast_path=True, cache=cache)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["analysis.cache.hits"] == cache.hits
        assert snapshot["counters"]["analysis.cache.misses"] == cache.misses
        assert cache.hits > 0 and cache.misses > 0

    def test_validate_metrics_catches_breakage(self):
        assert validate_metrics([]) != []
        assert validate_metrics({"schema": "nope"}) != []
        bad = {
            "schema": "repro.obs.metrics/v1",
            "counters": {"c": -1},
            "gauges": {"g": "high"},
            "histograms": {"h": {"count": 1}},
        }
        errors = validate_metrics(bad)
        assert any("counter" in e for e in errors)
        assert any("gauge" in e for e in errors)
        assert any("histogram" in e for e in errors)


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def _speedup_trace(tmp_path):
    """A real P=4 export of both engines at tight capacity."""
    builder = ChromeTraceBuilder()
    for family in ("stencil", "reduction"):
        workload = generate(family, size=8, statements=3)
        for engine in ("hose", "case"):
            _, makespan = speculative_makespan(
                workload.program,
                engine=engine,
                processors=4,
                window=8,
                capacity=8,
                cost=COST,
            )
            builder.add_schedule(
                makespan, label=f"{engine} {family} P=4 w=8 c=8"
            )
    path = tmp_path / "trace.json"
    builder.write(str(path), meta={"source": "test"})
    return path


class TestChromeTraceExport:
    def test_speedup_export_is_schema_valid(self, tmp_path):
        path = _speedup_trace(tmp_path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"] == {"source": "test"}

    def test_speedup_export_shows_lifecycle_for_both_engines(self, tmp_path):
        payload = json.loads(_speedup_trace(tmp_path).read_text())
        events = payload["traceEvents"]
        # One process per engine run, four lanes each (P0..P3).
        processes = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for engine in ("hose", "case"):
            assert any(name.startswith(engine) for name in processes)
        lanes = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert lanes.count("P0") == len(processes)
        assert lanes.count("P3") == len(processes)
        names = {e["name"] for e in events if e["ph"] != "M"}
        assert "dispatch" in names
        assert "squash" in names  # stencil violates at window 8
        assert "commit" in names
        assert any(n.startswith("stall (") for n in names)  # capacity 8
        # Squashed attempts carry the outcome color; commits the good one.
        colors = {
            e.get("cname")
            for e in events
            if e["ph"] == "X" and e.get("cat") == "attempt"
        }
        assert {"good", "terrible"} <= colors

    def test_span_export_with_cross_thread_flow(self):
        TRACER.enable()
        with TRACER.span("root", category="test"):
            TRACER.event("mark")
        spans = TRACER.finished_spans()
        # Graft a child that "ran" on another thread so the exporter's
        # flow-arrow path (cross-thread parent/child edge) is exercised.
        from repro.obs.tracer import Span

        root = spans[0]
        spans.append(
            Span(
                name="remote-leaf",
                category="test",
                span_id=root.span_id + 1000,
                parent_id=root.span_id,
                thread_id=root.thread_id + 1,
                thread_name="worker",
                start_ns=root.start_ns + 10,
                end_ns=root.end_ns,
            )
        )
        builder = ChromeTraceBuilder()
        builder.add_spans(spans, TRACER.events())
        payload = builder.build()
        assert validate_chrome_trace(payload) == []
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert "X" in phases and "i" in phases
        assert {"s", "f"} <= phases  # the flow arrow made it out
        info = summarize_trace(payload)
        assert info["slices"] == len(spans)
        assert info["instant_events"] == 1

    def test_empty_trace_fails_validation(self):
        assert validate_chrome_trace({"traceEvents": []}) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1, "name": "x"}]}
        ) != []


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructuredLogging:
    def test_human_mode_prefixes(self, capsys):
        log = get_logger("unit")
        log.info("hello", key="value")
        log.warning("careful")
        captured = capsys.readouterr()
        assert "[unit] hello key=value" in captured.out
        assert "[unit] WARNING: careful" in captured.err

    def test_quiet_suppresses_info_keeps_warnings(self, capsys):
        configure_logging(quiet=True)
        log = get_logger("unit")
        log.info("chatter")
        log.warning("kept")
        captured = capsys.readouterr()
        assert "chatter" not in captured.out
        assert "kept" in captured.err

    def test_json_lines_mode(self):
        stream = io.StringIO()
        configure_logging(json_lines=True, stream=stream)
        log = get_logger("unit")
        log.info("event", family="stencil", count=3)
        log.error("bad")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0]["logger"] == "unit"
        assert lines[0]["level"] == "info"
        assert lines[0]["msg"] == "event"
        assert lines[0]["family"] == "stencil"
        assert lines[0]["count"] == 3
        assert lines[1]["level"] == "error"


# ----------------------------------------------------------------------
# python -m repro.obs CLI
# ----------------------------------------------------------------------
class TestObsCli:
    def test_validate_ok_and_summary(self, tmp_path, capsys):
        trace_path = _speedup_trace(tmp_path)
        registry = MetricsRegistry()
        registry.counter("demo.count").inc(3)
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(registry.snapshot()))
        assert obs_main(["validate", str(trace_path), str(metrics_path)]) == 0
        assert obs_main(["summary", str(trace_path), str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "OK (trace)" in out and "OK (metrics)" in out
        assert "demo.count = 3" in out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"neither": True}))
        assert obs_main(["validate", str(bad)]) == 1
        missing = tmp_path / "missing.json"
        assert obs_main(["validate", str(missing)]) == 1

    def test_validate_rejects_broken_trace(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text(
            json.dumps({"traceEvents": [{"ph": "X", "name": "n"}]})
        )
        assert obs_main(["validate", str(broken)]) == 1


# ----------------------------------------------------------------------
# bench harness dispersion (satellite: p50/p95/stddev in the report)
# ----------------------------------------------------------------------
class TestBenchDispersion:
    def test_measurement_rate_stats(self):
        m = Measurement(
            seconds=0.5, work_units=100, repeats=4,
            samples=[0.5, 1.0, 2.0, 4.0],
        )
        stats = m.rate_stats()
        assert set(stats) == {"p50", "p95", "stddev"}
        # Rates are 200/100/50/25 units/s; interpolated median is 75.
        assert stats["p50"] == 75.0

    def test_family_result_carries_dispersion(self):
        workload = generate("reduction", size=6, statements=2)
        result = measure_family(workload, fast_path=True, min_seconds=0.01)
        payload = result.as_dict()
        for key in ("analyze_stats", "analyze_warm_stats", "simulate_stats"):
            assert set(payload[key]) == {"p50", "p95", "stddev"}
            assert payload[key]["p50"] > 0
        assert len(result.analyze.samples) == result.analyze.repeats
        assert min(result.analyze.samples) == result.analyze.seconds


# ----------------------------------------------------------------------
# engine instrumentation end to end
# ----------------------------------------------------------------------
class TestEngineInstrumentation:
    def test_engine_run_emits_lifecycle_spans_and_events(self):
        from repro.runtime.engines import HOSEEngine

        workload = generate("stencil", size=8, statements=3)
        obs.enable()
        result = HOSEEngine(workload.program, window=4, capacity=8).run()
        names = {s.name for s in TRACER.finished_spans()}
        assert {"engine.run", "engine.region"} <= names
        event_names = {e.name for e in TRACER.events()}
        assert "engine.dispatch" in event_names
        assert "engine.commit" in event_names
        assert "engine.squash" in event_names  # stencil violates
        assert not result.degraded

    def test_instrumentation_does_not_perturb_results(self):
        from repro.runtime.engines import CASEEngine
        from repro.runtime.interpreter import run_program

        workload = generate("sparse", size=8, statements=3)
        baseline = CASEEngine(workload.program, window=4, capacity=8).run()
        obs.enable()
        traced_run = CASEEngine(workload.program, window=4, capacity=8).run()
        diffs = baseline.memory.differences(traced_run.memory, tolerance=0.0)
        assert diffs == {}
        sequential = run_program(workload.program, model_latency=False)
        assert sequential.memory.differences(traced_run.memory, tolerance=0.0) == {}

    def test_labeling_spans_cover_phases(self):
        from repro.idempotency.labeling import label_region

        workload = generate("guarded", size=6, statements=2)
        obs.enable()
        label_region(workload.program.regions[0], fast_path=True)
        names = [s.name for s in TRACER.finished_spans()]
        assert "analysis.label_region" in names
        for phase in ("access", "liveness", "dependence", "rfw", "labeling"):
            assert f"analysis.{phase}" in names
