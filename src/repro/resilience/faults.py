"""Deterministic, seeded fault injection for the speculative runtime.

Hardware speculative systems are defined as much by their
misspeculation *recovery* paths as by their happy paths; this module
injects the corresponding failure modes into the software substrate so
the recovery machinery of :class:`~repro.runtime.engines
.SpeculativeEngine` (squash-restart, poison scrub, watchdog, graceful
degradation) can be exercised and benchmarked.

The fault model (one :class:`FaultSpec` per kind, bundled in a
:class:`FaultPlan`):

``corrupt_forward``
    A value forwarded from an older in-flight buffer is perturbed (a
    bit flip on the forwarding path).  The consuming buffer is marked
    ``poisoned`` -- the parity/ECC detection model -- and the engine's
    per-round scrub squashes it together with everything younger.
``drop_commit``
    A commit silently loses its drain: no value reaches memory and the
    buffer stays registered.  Detected by the invariant auditor as
    committed-entry leakage (a buffer at or below the commit
    watermark); recovery is degradation to sequential execution.
``dup_commit``
    A commit drains its values twice.  Value-idempotent (the second
    store writes the same value), so the run absorbs it -- injected to
    prove that, and counted.
``spurious_violation``
    Violation detection reports an extra, innocent in-flight buffer
    (at or younger than the writer, possibly the writer itself).  The
    normal rollback machinery squashes it; re-execution produces the
    same values, so the fault is absorbed.  At rate 1.0 a self-violating
    writer livelocks, which is what the watchdog is for.
``capacity_shrink``
    An allocation is refused as if the buffer capacity had transiently
    shrunk.  Drives the overflow-stall / drain / write-through path.
``segment_exception``
    :class:`~repro.runtime.errors.FaultInjected` is raised at an
    operation boundary inside a speculative segment (a transient
    fault).  The engine rolls the segment back and re-executes it.
``bad_subscript``
    A memory operation's subscripts are replaced with an out-of-range
    value, driving the engine's ``SymbolError`` -> ``AddressError``
    conversion; the engine treats it like a transient fault.
``mispredict``
    The predicted successor of an explicit-region segment is flipped to
    a different successor (or a predicted exit).  Resolution against
    committed state discards the wrong path, as for any misprediction.

All randomness comes from one ``random.Random(seed)`` owned by the
:class:`FaultInjector`, so a given (plan, seed, program, engine
configuration) replays the identical fault sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.runtime.errors import FaultInjected
from repro.runtime.executor import ReadOp, WriteOp
from repro.runtime.memory import Address, MemoryImage
from repro.runtime.specstore import SegmentBuffer, SpeculativeStore

#: All injectable fault kinds (the ``chaos`` bench sweeps these).
FAULT_KINDS: Tuple[str, ...] = (
    "corrupt_forward",
    "drop_commit",
    "dup_commit",
    "spurious_violation",
    "capacity_shrink",
    "segment_exception",
    "bad_subscript",
    "mispredict",
)

#: Subscript used by ``bad_subscript`` -- far outside any declared
#: extent, so address translation must fail.
BAD_SUBSCRIPT = 10**9


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed at a given rate.

    ``rate`` is the injection probability per *opportunity* (one
    forward, one commit, one executed operation, ...); ``magnitude`` is
    the value perturbation used by ``corrupt_forward``.
    """

    kind: str
    rate: float
    magnitude: float = 7.5

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; have {sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


class FaultPlan:
    """A set of armed fault kinds (at most one spec per kind)."""

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.kind in self._specs:
                raise ValueError(f"duplicate fault kind {spec.kind!r}")
            self._specs[spec.kind] = spec

    @classmethod
    def single(cls, kind: str, rate: float, **kwargs) -> "FaultPlan":
        """Plan with one armed fault kind."""
        return cls([FaultSpec(kind=kind, rate=rate, **kwargs)])

    @classmethod
    def uniform(cls, rate: float, kinds: Iterable[str] = FAULT_KINDS) -> "FaultPlan":
        """Plan arming every kind in ``kinds`` at the same rate."""
        return cls([FaultSpec(kind=kind, rate=rate) for kind in kinds])

    def get(self, kind: str) -> Optional[FaultSpec]:
        return self._specs.get(kind)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __bool__(self) -> bool:
        return any(spec.rate > 0 for spec in self._specs.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{s.kind}@{s.rate}" for s in self._specs.values()
        )
        return f"FaultPlan({inner})"


class FaultInjector:
    """Seeded fault source shared by the store wrapper and engine hooks.

    Counts every opportunity and every injection per kind
    (:attr:`opportunities` / :attr:`counts`), which is what the chaos
    scenario reports and what tests assert against.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self._rng = random.Random(seed)
        self.counts: Dict[str, int] = {}
        self.opportunities: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def fire(self, kind: str) -> Optional[FaultSpec]:
        """Roll the dice for one opportunity; the spec when it fires."""
        spec = self.plan.get(kind)
        if spec is None or spec.rate <= 0.0:
            return None
        self.opportunities[kind] = self.opportunities.get(kind, 0) + 1
        if self._rng.random() >= spec.rate:
            return None
        self.counts[kind] = self.counts.get(kind, 0) + 1
        return spec

    def total_injected(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def perturb_op(
        self, op: Union[ReadOp, WriteOp, object]
    ) -> Union[ReadOp, WriteOp, object]:
        """Op-level faults: mid-segment exceptions and bad subscripts.

        Called by the engine once per speculative operation step; the
        returned op is used for this attempt only (a retry after an
        overflow stall re-rolls from the original op).
        """
        if self.fire("segment_exception"):
            raise FaultInjected("injected mid-segment exception")
        cls = type(op)
        if cls is ReadOp or cls is WriteOp:
            if op.subscripts and self.fire("bad_subscript"):
                return replace(op, subscripts=(BAD_SUBSCRIPT,))
        return op

    def perturb_prediction(
        self, successors: List[str], predicted: Optional[str]
    ) -> Optional[str]:
        """Control-prediction fault: steer the window down a wrong path."""
        if not self.fire("mispredict"):
            return predicted
        alternatives = [s for s in successors if s != predicted]
        if not alternatives:
            # Sole successor: mispredict as a premature exit.
            return None
        return self._rng.choice(alternatives)


class FaultySpeculativeStore(SpeculativeStore):
    """A :class:`SpeculativeStore` whose substrate misbehaves on demand.

    Every override calls the real implementation and then perturbs its
    effect according to the injector's plan, so a plan with no armed
    faults behaves bit-identically to the plain store.
    """

    def __init__(self, capacity: Optional[int], injector: FaultInjector):
        super().__init__(capacity=capacity)
        self.injector = injector

    # -- forwarding path ------------------------------------------------
    def forward(self, buffer: SegmentBuffer, address: Address) -> Optional[float]:
        value = super().forward(buffer, address)
        if value is not None:
            spec = self.injector.fire("corrupt_forward")
            if spec is not None:
                # Parity model: the corruption is detectable, so the
                # consuming buffer is marked for the engine's scrub.
                buffer.poisoned = True
                return value + spec.magnitude
        return value

    # -- commit path -----------------------------------------------------
    def commit(self, buffer: SegmentBuffer, memory: MemoryImage) -> int:
        if self.injector.fire("drop_commit"):
            # The drain is lost and the buffer stays registered: the
            # invariant auditor flags it as committed-entry leakage.
            return 0
        entries = super().commit(buffer, memory)
        if self.injector.fire("dup_commit"):
            # Second drain of the same values: idempotent for memory.
            store = memory.store
            for address, value in buffer.values.items():
                store(address, value)
        return entries

    # -- capacity --------------------------------------------------------
    def _allocate(self, buffer: SegmentBuffer, address: Address) -> bool:
        if (
            address not in buffer.tracked
            and self.injector.fire("capacity_shrink")
        ):
            return False
        return super()._allocate(buffer, address)

    # -- violation detection ---------------------------------------------
    def violators(self, writer_age: int, address: Address) -> List[SegmentBuffer]:
        found = super().violators(writer_age, address)
        if self.injector.fire("spurious_violation"):
            # A spurious hit is a false positive in the exposed-read
            # tracking structure, so only buffers with tracked reads are
            # candidates -- exactly the segments the engine's restart
            # contract covers.  (A segment whose references all bypass
            # the store, e.g. a fully-idempotent CASE segment, performs
            # direct writes that are not replay-safe; genuine violation
            # detection can never select it, and neither may we.)
            eligible = [
                b
                for b in self._buffers
                if b.age >= writer_age and b.read_set
            ]
            if eligible:
                extra = self.injector._rng.choice(eligible)
                if extra not in found:
                    found = found + [extra]
        return found
