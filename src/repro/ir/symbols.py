"""Symbols and symbol tables.

A :class:`Symbol` describes one program variable: either a scalar or a
(possibly multi-dimensional) array with static shape.  Arrays use
Fortran-style 1-based indexing in column-major order, matching the
source language the paper's prototype targeted; the flattened offset of
an element is computed by :meth:`Symbol.flatten_index`.

A :class:`SymbolTable` owns the symbols of one :class:`~repro.ir.program.
Program` and provides lookup, declaration and size accounting (used by
the speculative-storage occupancy model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.ir.types import VarKind


class SymbolError(Exception):
    """Raised on invalid declarations or out-of-bounds accesses."""


@dataclass(frozen=True)
class Symbol:
    """A program variable.

    Parameters
    ----------
    name:
        Identifier, case-sensitive, unique within a program.
    kind:
        :class:`VarKind.SCALAR` or :class:`VarKind.ARRAY`.
    shape:
        Dimension extents for arrays (empty tuple for scalars).  Array
        indices are 1-based, i.e. a dimension of extent ``n`` accepts
        subscripts ``1..n``.
    initial:
        Initial value for scalars (default ``0.0``) or fill value for
        arrays.
    element_bytes:
        Nominal size of one element, used only by the speculative-storage
        occupancy accounting (default 8, a double word).
    """

    name: str
    kind: VarKind = VarKind.SCALAR
    shape: Tuple[int, ...] = ()
    initial: float = 0.0
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise SymbolError(f"invalid symbol name {self.name!r}")
        if self.kind is VarKind.SCALAR and self.shape:
            raise SymbolError(f"scalar {self.name!r} must not have a shape")
        if self.kind is VarKind.ARRAY:
            if not self.shape:
                raise SymbolError(f"array {self.name!r} needs a shape")
            if any(int(d) <= 0 for d in self.shape):
                raise SymbolError(
                    f"array {self.name!r} has non-positive extent {self.shape}"
                )

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def is_array(self) -> bool:
        """True when the symbol is an array."""
        return self.kind is VarKind.ARRAY

    @property
    def rank(self) -> int:
        """Number of dimensions (0 for scalars)."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Number of addressable elements (1 for scalars)."""
        if not self.is_array:
            return 1
        n = 1
        for extent in self.shape:
            n *= int(extent)
        return n

    @property
    def footprint_bytes(self) -> int:
        """Nominal total size in bytes."""
        return self.size * self.element_bytes

    def flatten_index(self, subscripts: Sequence[int]) -> int:
        """Column-major flattening of 1-based ``subscripts`` to ``0..size-1``.

        Raises :class:`SymbolError` when the number of subscripts does not
        match the rank or any subscript is out of bounds.
        """
        if not self.is_array:
            if subscripts:
                raise SymbolError(
                    f"scalar {self.name!r} subscripted with {tuple(subscripts)}"
                )
            return 0
        if len(subscripts) != self.rank:
            raise SymbolError(
                f"array {self.name!r} has rank {self.rank}, got "
                f"{len(subscripts)} subscripts"
            )
        offset = 0
        stride = 1
        for sub, extent in zip(subscripts, self.shape):
            s = int(sub)
            if s < 1 or s > extent:
                raise SymbolError(
                    f"subscript {tuple(subscripts)} out of bounds for "
                    f"{self.name!r} with shape {self.shape}"
                )
            offset += (s - 1) * stride
            stride *= int(extent)
        return offset

    def unflatten_index(self, offset: int) -> Tuple[int, ...]:
        """Inverse of :meth:`flatten_index` (mainly for diagnostics)."""
        if not self.is_array:
            if offset != 0:
                raise SymbolError(f"scalar {self.name!r} offset {offset} != 0")
            return ()
        if offset < 0 or offset >= self.size:
            raise SymbolError(
                f"offset {offset} out of range for {self.name!r} (size {self.size})"
            )
        subs = []
        rem = int(offset)
        for extent in self.shape:
            subs.append(rem % int(extent) + 1)
            rem //= int(extent)
        return tuple(subs)


@dataclass
class SymbolTable:
    """Mapping of names to :class:`Symbol` objects for one program."""

    _symbols: Dict[str, Symbol] = field(default_factory=dict)
    #: Flattened-address cache shared by every MemoryImage built over
    #: this table (symbol geometry is immutable, so entries never go
    #: stale and survive across program runs).
    _address_cache: Dict[tuple, tuple] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # address translation (hot path)
    # ------------------------------------------------------------------
    def address_of(self, variable: str, subscripts: Tuple[int, ...]) -> tuple:
        """``(variable, flattened offset)`` with memoized flattening.

        Raises :class:`SymbolError` for undeclared variables or
        out-of-bounds subscripts (validation happens on first use of
        each address; cached entries were already validated).
        """
        key = (variable, subscripts)
        address = self._address_cache.get(key)
        if address is None:
            symbol = self._symbols.get(variable)
            if symbol is None:
                raise SymbolError(f"undeclared variable {variable!r}")
            offset = symbol.flatten_index(tuple(int(s) for s in subscripts))
            address = (variable, offset)
            self._address_cache[key] = address
        return address

    # ------------------------------------------------------------------
    # declaration / lookup
    # ------------------------------------------------------------------
    def declare(self, symbol: Symbol) -> Symbol:
        """Register ``symbol``; redeclaration with a different signature fails."""
        existing = self._symbols.get(symbol.name)
        if existing is not None:
            if existing != symbol:
                raise SymbolError(
                    f"conflicting redeclaration of {symbol.name!r}: "
                    f"{existing} vs {symbol}"
                )
            return existing
        self._symbols[symbol.name] = symbol
        return symbol

    def scalar(self, name: str, initial: float = 0.0) -> Symbol:
        """Declare (or return) a scalar symbol."""
        return self.declare(Symbol(name=name, kind=VarKind.SCALAR, initial=initial))

    def array(
        self,
        name: str,
        shape: Sequence[int],
        initial: float = 0.0,
        element_bytes: int = 8,
    ) -> Symbol:
        """Declare (or return) an array symbol."""
        return self.declare(
            Symbol(
                name=name,
                kind=VarKind.ARRAY,
                shape=tuple(int(d) for d in shape),
                initial=initial,
                element_bytes=element_bytes,
            )
        )

    def lookup(self, name: str) -> Symbol:
        """Return the symbol named ``name`` or raise :class:`SymbolError`."""
        try:
            return self._symbols[name]
        except KeyError:
            raise SymbolError(f"undeclared variable {name!r}") from None

    def get(self, name: str) -> Optional[Symbol]:
        """Return the symbol named ``name`` or ``None``."""
        return self._symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def names(self) -> Iterable[str]:
        """All declared names in declaration order."""
        return self._symbols.keys()

    def arrays(self) -> Iterable[Symbol]:
        """All array symbols in declaration order."""
        return (s for s in self._symbols.values() if s.is_array)

    def scalars(self) -> Iterable[Symbol]:
        """All scalar symbols in declaration order."""
        return (s for s in self._symbols.values() if not s.is_array)

    def copy(self) -> "SymbolTable":
        """Shallow copy (symbols are immutable)."""
        return SymbolTable(dict(self._symbols))

    def total_footprint_bytes(self) -> int:
        """Sum of all symbol footprints (diagnostics only)."""
        return sum(s.footprint_bytes for s in self._symbols.values())
