"""Speculative execution engines: HOSE and CASE (Definitions 2 and 4).

Both engines execute a whole :class:`~repro.ir.program.Program` with a
window of in-flight segments per region, driving the *same* operation
streams the sequential interpreter drives (the coroutines of
:mod:`repro.runtime.executor`).  The init section, region entry code
(loop bounds) and finale run non-speculatively, exactly as in
:class:`~repro.runtime.interpreter.SequentialInterpreter`; inside a
region up to ``window`` segments execute concurrently (simulated by
age-ordered round-robin, one operation per segment per round) on top of
the :mod:`~repro.runtime.specstore` substrate:

* a speculative read is served by the segment's own buffer, then by the
  nearest older in-flight buffer (forwarding), then by conventional
  memory -- and is *tracked* so a later write by an older segment can
  detect the violation;
* a speculative write is buffered; every write (buffered or direct)
  rolls back all segments younger than the oldest violating reader;
* a buffer that would exceed its capacity stalls the segment; once the
  stalled segment is the oldest it drains its buffer to memory and
  finishes in write-through mode (it is non-speculative from then on);
* segments commit strictly in age order, which is what makes the final
  memory state bit-identical to the sequential interpreter's: the
  oldest segment always reads committed (sequential) state, and any
  younger segment that consumed a stale value is squashed and
  re-executed before it can commit.

The two engines differ only in *routing*:

:class:`HOSEEngine` (Definition 2)
    The hardware-only engine.  Every memory reference of a speculative
    segment goes through speculative storage.

:class:`CASEEngine` (Definition 4)
    The compiler-assisted engine.  References labeled ``IDEMPOTENT`` by
    Algorithm 2 (:func:`repro.idempotency.labeling.label_region`) bypass
    speculative storage: read-only, shared-dependent and
    fully-independent references access conventional memory directly
    (leaving no access information behind, per Theorems 1 and 2), and
    references to privatizable variables are served from a per-segment
    private frame that is flushed at commit.  Only the references that
    stay ``SPECULATIVE`` occupy buffer entries, which is the paper's
    headline effect: less speculative-storage pressure than HOSE for
    the same program.

Explicit regions additionally speculate on control flow (HOSE Property
5): the in-flight window follows the *predicted* path (first successor
of each segment); the actual successor is resolved when a segment
commits, and a mispredicted path squashes every younger in-flight
segment (``control_mispredictions``).

Stats semantics: ``reads`` / ``writes`` / ``cycles`` /
``reference_counts`` count **all executed work including rolled-back
attempts** (``wasted_cycles`` isolates the rolled-back share);
``speculative_accesses`` / ``idempotent_accesses`` /
``private_accesses`` split the references by route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.program import Program
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion, Region
from repro.ir.symbols import SymbolError
from repro.ir.types import IdempotencyCategory, RefLabel
from repro.runtime.errors import AddressError, SimulationError
from repro.runtime.executor import (
    ComputeOp,
    ReadOp,
    SegmentCoroutine,
    WriteOp,
    evaluate_expression,
    segment_coroutine,
)
from repro.runtime.interpreter import MAX_EXPLICIT_STEPS
from repro.runtime.memory import (
    Address,
    MemoryHierarchy,
    MemoryImage,
    MemoryLatencies,
)
from repro.runtime.specstore import SegmentBuffer, SpeculativeStore
from repro.runtime.stats import ExecutionStats

#: Reference routes (how an engine serves one static reference).  The
#: canonical definition -- the timing cost model imports these (timing
#: consumes runtime, never the reverse).
ROUTE_SPECULATIVE = "speculative"
ROUTE_DIRECT = "direct"
ROUTE_PRIVATE = "private"


@dataclass
class SpeculativeResult:
    """Outcome of one speculative execution."""

    program: str
    engine: str
    memory: MemoryImage
    stats: ExecutionStats
    window: int
    capacity: Optional[int]
    #: Speculative-storage occupancy high-water marks (all buffers /
    #: one buffer) -- the HOSE vs CASE comparison quantities.
    spec_peak_entries: int = 0
    spec_peak_segment_entries: int = 0
    #: Region name -> labeling used for routing (CASE only).
    labeling: Dict[str, object] = field(default_factory=dict)

    def value_of(self, variable: str, subscripts=()) -> float:
        """Convenience read of the final memory state."""
        return self.memory.read(variable, subscripts)


class _SegmentTask:
    """One in-flight segment occurrence: coroutine + speculative state."""

    __slots__ = (
        "key",
        "segment_name",
        "age",
        "spawn",
        "coroutine",
        "current_op",
        "pending_value",
        "done",
        "stalled",
        "write_through",
        "buffer",
        "private",
        "cycles",
    )

    def __init__(
        self,
        key: Tuple,
        segment_name: Optional[str],
        age: int,
        spawn: Callable[[], SegmentCoroutine],
        buffer: SegmentBuffer,
    ):
        self.key = key
        self.segment_name = segment_name
        self.age = age
        self.spawn = spawn
        self.coroutine = spawn()
        #: Operation yielded but not yet completed (overflow retry point).
        self.current_op = None
        #: Value to send into the coroutine for the next operation.
        self.pending_value: Optional[float] = None
        self.done = False
        self.stalled = False
        #: True once an overflowed segment, as the oldest, drained its
        #: buffer and continues non-speculatively.
        self.write_through = False
        self.buffer: Optional[SegmentBuffer] = buffer
        #: Private frame for references routed ROUTE_PRIVATE (CASE).
        self.private: Dict[Address, float] = {}
        #: Cycles of the current attempt (moved to wasted_cycles on squash).
        self.cycles = 0


class SpeculativeEngine:
    """Common scheduler of the speculative engines.

    Subclasses choose the reference routing via :meth:`_routes_for`;
    this base class routes everything through speculative storage
    (i.e. behaves as HOSE).
    """

    engine_name = "speculative"

    def __init__(
        self,
        program: Program,
        window: int = 4,
        capacity: Optional[int] = 64,
        op_budget: Optional[int] = None,
        model_latency: bool = False,
        latencies: Optional[MemoryLatencies] = None,
        recorder=None,
    ):
        self.program = program
        self.window = max(1, int(window))
        self.capacity = capacity
        self.op_budget = op_budget
        self.store = SpeculativeStore(capacity=capacity)
        self.hierarchy: Optional[MemoryHierarchy] = (
            MemoryHierarchy(latencies=latencies, processors=self.window)
            if model_latency
            else None
        )
        #: Optional :class:`repro.timing.events.TimingRecorder`; when
        #: attached, every lifecycle event and operation is emitted as a
        #: timing event (and compute costs use the recorder's cost
        #: model), without perturbing execution or final memory state.
        self._recorder = recorder
        self._compute_cost = (
            recorder.cost.compute_cost_fn() if recorder is not None else None
        )
        if recorder is not None:
            recorder.run_begin(program.name, self.engine_name, self.window)
        self._age = 0
        #: uid -> route for the region currently executing.
        self._routes: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # routing (the only thing HOSE and CASE disagree on)
    # ------------------------------------------------------------------
    def _routes_for(
        self, region: Region, result: SpeculativeResult
    ) -> Dict[str, str]:
        """Per-reference routes for ``region``; absent uid = speculative."""
        return {}

    # ------------------------------------------------------------------
    def run(self) -> SpeculativeResult:
        """Execute the whole program speculatively; final state + stats."""
        memory = MemoryImage(self.program.symbols)
        stats = ExecutionStats()
        result = SpeculativeResult(
            program=self.program.name,
            engine=self.engine_name,
            memory=memory,
            stats=stats,
            window=self.window,
            capacity=self.capacity,
        )
        recorder = self._recorder
        self._drive_direct(
            segment_coroutine(
                self.program.init,
                op_budget=self.op_budget,
                compute_cost=self._compute_cost,
            ),
            memory,
            stats,
        )
        for region in self.program.regions:
            self._routes = self._routes_for(region, result)
            if recorder is not None:
                recorder.region_begin(
                    region.name,
                    "loop" if isinstance(region, LoopRegion) else "explicit",
                )
            if isinstance(region, LoopRegion):
                self._run_loop_region(region, memory, stats)
            elif isinstance(region, ExplicitRegion):
                self._run_explicit_region(region, memory, stats)
            else:  # pragma: no cover - defensive
                raise SimulationError(
                    f"unknown region type {type(region).__name__}"
                )
            if recorder is not None:
                recorder.region_end()
        self._drive_direct(
            segment_coroutine(
                self.program.finale,
                op_budget=self.op_budget,
                compute_cost=self._compute_cost,
            ),
            memory,
            stats,
        )
        result.spec_peak_entries = self.store.peak_entries
        result.spec_peak_segment_entries = self.store.peak_segment_entries
        return result

    # ------------------------------------------------------------------
    # non-speculative sections (init / finale)
    # ------------------------------------------------------------------
    def _drive_direct(
        self,
        coroutine: SegmentCoroutine,
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        """Run a coroutine straight against conventional memory."""
        access_latency = (
            self.hierarchy.access_latency if self.hierarchy is not None else None
        )
        recorder = self._recorder
        try:
            op = coroutine.send(None)
            while True:
                cls = type(op)
                if cls is ReadOp:
                    address = memory.address_of(op.variable, op.subscripts)
                    value = memory.load(address)
                    stats.reads += 1
                    if op.ref is not None:
                        stats.count_reference(op.ref.uid)
                    if access_latency is not None:
                        latency = access_latency(address)
                        stats.cycles += latency
                        stats.memory_latency_cycles += latency
                    if recorder is not None:
                        recorder.direct_op("read", 0)
                    op = coroutine.send(value)
                elif cls is WriteOp:
                    address = memory.address_of(op.variable, op.subscripts)
                    memory.store(address, op.value)
                    stats.writes += 1
                    if op.ref is not None:
                        stats.count_reference(op.ref.uid)
                    if access_latency is not None:
                        latency = access_latency(address)
                        stats.cycles += latency
                        stats.memory_latency_cycles += latency
                    if recorder is not None:
                        recorder.direct_op("write", 0)
                    op = coroutine.send(None)
                else:  # ComputeOp
                    stats.cycles += op.cycles
                    if recorder is not None:
                        recorder.direct_op("compute", op.cycles)
                    op = coroutine.send(None)
        except StopIteration:
            return
        except SymbolError as exc:
            raise AddressError(str(exc)) from exc

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def _start_task(
        self,
        key: Tuple,
        segment_name: Optional[str],
        spawn: Callable[[], SegmentCoroutine],
        stats: ExecutionStats,
    ) -> _SegmentTask:
        self._age += 1
        buffer = self.store.open_segment(key, self._age)
        task = _SegmentTask(key, segment_name, self._age, spawn, buffer)
        stats.segments_started += 1
        if self._recorder is not None:
            self._recorder.segment_started(key, self._age)
        return task

    def _restart(
        self,
        task: _SegmentTask,
        stats: ExecutionStats,
        by_age: Optional[int] = None,
    ) -> None:
        """Roll a violated segment back and re-execute it from scratch."""
        stats.rollbacks += 1
        stats.wasted_cycles += task.cycles
        task.cycles = 0
        if task.buffer is not None:
            self.store.squash(task.buffer)
        task.private.clear()
        task.coroutine.close()
        task.coroutine = task.spawn()
        task.current_op = None
        task.pending_value = None
        task.done = False
        task.stalled = False
        stats.segments_started += 1
        if self._recorder is not None:
            self._recorder.squashed(task.age, by_age)

    def _discard(self, task: _SegmentTask, stats: ExecutionStats) -> None:
        """Throw a wrong-path segment away (control misprediction)."""
        stats.rollbacks += 1
        stats.wasted_cycles += task.cycles
        if task.buffer is not None:
            self.store.abandon(task.buffer)
            task.buffer = None
        task.coroutine.close()
        if self._recorder is not None:
            self._recorder.discarded(task.age)

    def _stall(self, task: _SegmentTask, stats: ExecutionStats) -> None:
        if not task.stalled:
            task.stalled = True
            stats.overflow_stalls += 1
            if self._recorder is not None:
                self._recorder.stalled(task.age)

    def _unstall_oldest(
        self, task: _SegmentTask, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        """Drain the overflowed oldest segment; it finishes write-through.

        As the oldest in-flight segment it is no longer speculative, so
        its buffered values can safely become architecturally visible
        early and the rest of the segment writes through.
        """
        # Every tracked entry (write values and read access info) is
        # flushed early; only the write values reach memory.
        stats.overflow_entries += task.buffer.entries
        drained = self.store.commit(task.buffer, memory)
        stats.commit_entries += drained
        task.buffer = None
        task.write_through = True
        task.stalled = False
        if self._recorder is not None:
            self._recorder.drained(task.age, drained)

    def _commit_task(
        self, task: _SegmentTask, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        """Commit the finished oldest segment in age order."""
        entries = 0
        if task.buffer is not None:
            entries = self.store.commit(task.buffer, memory)
            stats.commit_entries += entries
            task.buffer = None
        for address, value in task.private.items():
            memory.store(address, value)
        stats.segments_committed += 1
        if self._recorder is not None:
            self._recorder.committed(task.age, entries + len(task.private))

    # ------------------------------------------------------------------
    # violation detection
    # ------------------------------------------------------------------
    def _check_violations(
        self,
        writer: _SegmentTask,
        address: Address,
        active: List[_SegmentTask],
        stats: ExecutionStats,
    ) -> None:
        """Roll back younger segments that consumed a now-stale value."""
        violators = self.store.violators(writer.age, address)
        if not violators:
            return
        stats.violations += len(violators)
        oldest_violator = min(buffer.age for buffer in violators)
        for task in active:
            # Everything younger than the oldest violator restarts: the
            # violator itself consumed the stale value, and segments
            # younger still may have consumed the violator's results
            # through forwarding.
            if task.age >= oldest_violator:
                self._restart(task, stats, by_age=writer.age)

    # ------------------------------------------------------------------
    # one simulated operation of one segment
    # ------------------------------------------------------------------
    def _charge(
        self,
        task: _SegmentTask,
        stats: ExecutionStats,
        cycles: int,
        kind: str = "compute",
        route: Optional[str] = None,
    ) -> None:
        """Charge one operation's cycles to the attempt and the totals.

        The single choke point for per-op cycle accounting -- and, when
        a timing recorder is attached, for timing event emission (the
        recorder prices the op with its own cost model; ``cycles`` here
        are engine cycles: compute costs, plus hierarchy latency when
        ``model_latency`` is on).
        """
        task.cycles += cycles
        stats.cycles += cycles
        if kind != "compute":
            stats.memory_latency_cycles += cycles
        if self._recorder is not None:
            self._recorder.op(task.age, kind, cycles, route)

    def _access_latency(self, task: _SegmentTask, address: Address) -> int:
        """Hierarchy latency of one access (0 without a latency model)."""
        if self.hierarchy is None:
            return 0
        return self.hierarchy.access_latency(
            address, processor=task.age % self.window
        )

    def _step(
        self,
        task: _SegmentTask,
        memory: MemoryImage,
        stats: ExecutionStats,
        active: List[_SegmentTask],
    ) -> None:
        if task.current_op is None:
            try:
                task.current_op = task.coroutine.send(task.pending_value)
            except StopIteration:
                task.done = True
                return
            task.pending_value = None
        op = task.current_op
        cls = type(op)
        if cls is ComputeOp:
            self._charge(task, stats, op.cycles)
            task.current_op = None
            return
        try:
            address = memory.address_of(op.variable, op.subscripts)
        except SymbolError as exc:  # pragma: no cover - defensive
            raise AddressError(str(exc)) from exc
        ref = op.ref
        route = (
            self._routes.get(ref.uid, ROUTE_SPECULATIVE)
            if ref is not None
            else ROUTE_SPECULATIVE
        )
        if cls is ReadOp:
            #: Storage that actually served the value (``None`` =
            #: conventional memory), which is what the cost model prices.
            served = route
            if route is ROUTE_PRIVATE:
                value = task.private.get(address)
                if value is None:
                    value = memory.load(address)
                    served = None
                stats.private_accesses += 1
            elif route is ROUTE_DIRECT:
                value = memory.load(address)
                stats.idempotent_accesses += 1
            elif task.write_through:
                value = memory.load(address)
                stats.speculative_accesses += 1
                served = None
            else:
                buffer = task.buffer
                if buffer.holds(address):
                    value = buffer.values[address]
                else:
                    if not self.store.record_read(buffer, address):
                        self._stall(task, stats)
                        return
                    value = self.store.forward(buffer, address)
                    if value is None:
                        value = memory.load(address)
                        served = None
                stats.speculative_accesses += 1
            stats.reads += 1
            if ref is not None:
                stats.count_reference(ref.uid)
            self._charge(
                task,
                stats,
                self._access_latency(task, address),
                "read",
                route=served,
            )
            task.pending_value = value
            task.current_op = None
            return
        # WriteOp
        served = route
        if route is ROUTE_PRIVATE:
            task.private[address] = float(op.value)
            stats.private_accesses += 1
        elif route is ROUTE_DIRECT or task.write_through:
            memory.store(address, op.value)
            if route is ROUTE_DIRECT:
                stats.idempotent_accesses += 1
            else:
                stats.speculative_accesses += 1
                served = None
            self._check_violations(task, address, active, stats)
        else:
            buffer = task.buffer
            if not self.store.record_write(buffer, address, op.value):
                self._stall(task, stats)
                return
            stats.speculative_accesses += 1
            self._check_violations(task, address, active, stats)
        stats.writes += 1
        if ref is not None:
            stats.count_reference(ref.uid)
        self._charge(
            task,
            stats,
            self._access_latency(task, address),
            "write",
            route=served,
        )
        task.pending_value = None
        task.current_op = None

    def _round(
        self,
        active: List[_SegmentTask],
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        """One scheduling round: each runnable segment executes one op."""
        for task in list(active):
            if task.done:
                continue
            if task.stalled:
                if active and task is active[0]:
                    self._unstall_oldest(task, memory, stats)
                else:
                    stats.stall_rounds += 1
                    continue
            self._step(task, memory, stats, active)

    # ------------------------------------------------------------------
    # loop regions
    # ------------------------------------------------------------------
    def _run_loop_region(
        self, region: LoopRegion, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        reader = memory.read
        lower = int(round(evaluate_expression(region.lower, reader)))
        upper = int(round(evaluate_expression(region.upper, reader)))
        step = int(round(evaluate_expression(region.step, reader)))
        if step == 0:
            raise SimulationError(f"region {region.name!r} has zero step")

        def iteration_values():
            value = lower
            while (step > 0 and value <= upper) or (step < 0 and value >= upper):
                yield value
                value += step

        values = iteration_values()
        body = region.body
        index = region.index
        op_budget = self.op_budget

        compute_cost = self._compute_cost

        def spawn_for(value: int) -> Callable[[], SegmentCoroutine]:
            return lambda: segment_coroutine(
                body,
                locals_in_scope={index: value},
                op_budget=op_budget,
                compute_cost=compute_cost,
            )

        active: List[_SegmentTask] = []

        def refill() -> None:
            while len(active) < self.window:
                value = next(values, None)
                if value is None:
                    return
                active.append(
                    self._start_task(
                        (region.name, value), None, spawn_for(value), stats
                    )
                )

        refill()
        while active:
            self._round(active, memory, stats)
            while active and active[0].done:
                self._commit_task(active.pop(0), memory, stats)
                refill()

    # ------------------------------------------------------------------
    # explicit regions (control speculation)
    # ------------------------------------------------------------------
    def _run_explicit_region(
        self, region: ExplicitRegion, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        edges = region.segment_edges()
        op_budget = self.op_budget

        compute_cost = self._compute_cost

        def spawn_for(segment_name: str) -> Callable[[], SegmentCoroutine]:
            body = region.segment(segment_name).body
            return lambda: segment_coroutine(
                body, op_budget=op_budget, compute_cost=compute_cost
            )

        def predicted_successor(segment_name: str) -> Optional[str]:
            """First-successor prediction; None when the path exits."""
            successors = edges.get(segment_name, [])
            if not successors or successors[0] == EXIT_NODE:
                return None
            return successors[0]

        active: List[_SegmentTask] = []
        occurrence = 0
        #: Next segment on the predicted path (None = predicted exit).
        fill_from: Optional[str] = region.entry
        committed = 0

        def refill() -> None:
            nonlocal fill_from, occurrence
            while len(active) < self.window and fill_from is not None:
                name = fill_from
                occurrence += 1
                active.append(
                    self._start_task(
                        (region.name, name, occurrence),
                        name,
                        spawn_for(name),
                        stats,
                    )
                )
                fill_from = predicted_successor(name)

        refill()
        while active:
            self._round(active, memory, stats)
            while active and active[0].done:
                task = active.pop(0)
                self._commit_task(task, memory, stats)
                committed += 1
                if committed > MAX_EXPLICIT_STEPS:
                    raise SimulationError(
                        f"explicit region {region.name!r} exceeded "
                        f"{MAX_EXPLICIT_STEPS} segment executions"
                    )
                # Resolve the actual successor against committed state,
                # exactly as the sequential interpreter does.
                successors = edges.get(task.segment_name, [])
                if not successors:
                    actual: Optional[str] = None
                else:
                    segment = region.segment(task.segment_name)
                    if len(successors) > 1 and segment.branch is not None:
                        taken = evaluate_expression(segment.branch, memory.read)
                        actual = successors[0] if taken else successors[1]
                    else:
                        actual = successors[0]
                    if actual == EXIT_NODE:
                        actual = None
                # The predicted next segment is the head of the remaining
                # in-flight window, or -- when the window drained -- the
                # segment the prediction would spawn next.
                predicted = active[0].segment_name if active else fill_from
                if actual == predicted:
                    refill()
                    continue
                # Control misprediction: the speculated path is wrong.
                # (An empty window means nothing was executed down the
                # wrong path, so nothing counts as mispredicted.)
                if active:
                    stats.control_mispredictions += 1
                    for wrong in active:
                        self._discard(wrong, stats)
                    active.clear()
                fill_from = actual
                refill()


def _has_cycle(region: ExplicitRegion) -> bool:
    """True when the region's segment graph contains a cycle."""
    from repro.analysis.cfg import SegmentGraph

    graph = SegmentGraph.from_region(region)
    return any(
        node in graph.reachable_from(node) for node in graph.real_nodes()
    )


class HOSEEngine(SpeculativeEngine):
    """Hardware-only speculative engine (Definition 2).

    Every memory reference of a speculative segment is tracked in
    speculative storage -- the baseline the paper's CASE is measured
    against.
    """

    engine_name = "hose"


class CASEEngine(SpeculativeEngine):
    """Compiler-assisted speculative engine (Definition 4).

    Consumes the labels of Algorithm 2: ``IDEMPOTENT`` references
    bypass speculative storage (conventional memory for read-only /
    shared-dependent / fully-independent references, a per-segment
    private frame for privatizable variables); only ``SPECULATIVE``
    references occupy buffer entries.
    """

    engine_name = "case"

    def __init__(
        self,
        program: Program,
        labeling: Optional[Dict[str, object]] = None,
        cache=None,
        **kwargs,
    ):
        super().__init__(program, **kwargs)
        #: Region name -> LabelingResult; computed on demand when absent.
        self._labeling_in = labeling
        if cache is None:
            from repro.analysis.cache import AnalysisCache

            cache = AnalysisCache()
        self._cache = cache

    def _routes_for(
        self, region: Region, result: SpeculativeResult
    ) -> Dict[str, str]:
        if isinstance(region, ExplicitRegion) and _has_cycle(region):
            # Algorithm 2 models each explicit segment as executing at
            # most once (the paper's Figure 2/3 graphs are acyclic); a
            # cyclic graph re-executes segments and carries dependences
            # between occurrences the labeling cannot see.  Fall back to
            # fully speculative routing (HOSE behaviour) for safety.
            return {}
        labeling = None
        if self._labeling_in is not None:
            labeling = self._labeling_in.get(region.name)
        if labeling is None:
            from repro.idempotency.labeling import label_region

            labeling = label_region(
                region, program=self.program, cache=self._cache
            )
        result.labeling[region.name] = labeling
        routes: Dict[str, str] = {}
        for ref in region.references:
            if labeling.label_of(ref) is not RefLabel.IDEMPOTENT:
                continue
            if labeling.category_of(ref) is IdempotencyCategory.PRIVATE:
                routes[ref.uid] = ROUTE_PRIVATE
            else:
                routes[ref.uid] = ROUTE_DIRECT
        return routes


def run_speculative(
    program: Program,
    engine: str = "case",
    window: int = 4,
    capacity: Optional[int] = 64,
    **kwargs,
) -> SpeculativeResult:
    """One-shot speculative execution of ``program``.

    ``engine`` is ``"hose"`` or ``"case"``.
    """
    classes = {"hose": HOSEEngine, "case": CASEEngine}
    try:
        cls = classes[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; have {sorted(classes)}"
        ) from None
    return cls(program, window=window, capacity=capacity, **kwargs).run()
