"""Cross-pass analysis cache.

The labeling pipeline (Algorithm 2) needs the same facts several times:
the read-only variable set feeds the access summaries, the dependence
analyser *and* the RFW analysis; reports re-run the labeling per region;
and the speculative engines re-ask for dependence graphs when choosing
an execution mode.  Without a cache each pass recomputes everything from
the region text.

:class:`AnalysisCache` memoizes per-region artifacts.  Entries are keyed
by the region *object* (regions hash by identity and are immutable after
construction) together with a caller-supplied discriminator key, so the
same region analysed under different knobs (granularity, direction,
private sets...) gets distinct entries.  Holding the region object as
the key keeps it alive while its entries are cached, which makes the
cache immune to the id()-reuse hazard of address-keyed caches.

Typical use::

    cache = AnalysisCache()
    result1 = label_region(region, cache=cache)   # cold: runs analyses
    result2 = label_region(region, cache=cache)   # warm: dictionary hits

**Aliasing contract:** cached values are returned *shared*, not
copied — every warm hit hands back the same object (dependence graph,
summary, RFW result).  Treat them as immutable; a caller that needs a
private mutable copy must copy explicitly (e.g. rebuild a
``DependenceGraph`` from its ``dependences`` list), or use
:meth:`AnalysisCache.invalidate` to force recomputation.

**Concurrency contract:** one cache may be shared by concurrent
sessions (the ``repro.serve`` daemon shares a single instance across
every request).  All dictionary and counter access is serialized by an
internal lock; ``compute()`` itself deliberately runs *outside* the
lock so a slow cold analysis never blocks warm hits on other threads.
The consequence is a *duplicate-compute-on-concurrent-miss* policy:
two threads missing the same ``(region, key)`` simultaneously both run
``compute()``, the first to finish installs its value, and the loser
discards its own result and returns the winner's object — so the
aliasing contract above ("every warm hit hands back the same object")
holds even across racing misses.  Analysis results are deterministic
pure functions of the region, so the duplicated work is a bounded
throughput cost, never a correctness hazard.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable

from repro.ir.region import Region
from repro.obs.metrics import metrics_registry

#: The process-wide registry is a stable singleton (``reset`` mutates it
#: in place), so one module-level binding keeps the per-lookup cost at a
#: single attribute check while disabled.
_METRICS = metrics_registry()


class AnalysisCache:
    """Memoizes per-region analysis results across passes."""

    def __init__(self) -> None:
        self._entries: Dict[Region, Dict[Hashable, Any]] = {}
        #: Serializes dict mutation and counter updates; ``compute()``
        #: runs outside it (see the module docstring's concurrency
        #: contract).
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get_or_compute(
        self, region: Region, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``(region, key)``; compute on miss.

        Thread-safe: the lock covers only the lookup, the counter bump
        and the insert, never ``compute()`` — so warm hits stay cheap
        and concurrent misses of the same key duplicate the compute,
        with the first inserted value winning (losers return the
        winner's object, preserving the aliasing contract).

        With metrics collection armed (``repro.obs enable``) every
        lookup also bumps the process-wide ``analysis.cache.hits`` /
        ``analysis.cache.misses`` counters; disabled, the cost is one
        attribute check.
        """
        with self._lock:
            per_region = self._entries.setdefault(region, {})
            if key in per_region:
                self.hits += 1
                hit = True
                value = per_region[key]
            else:
                self.misses += 1
                hit = False
        if _METRICS.collecting:
            if hit:
                _METRICS.counter("analysis.cache.hits").inc()
            else:
                _METRICS.counter("analysis.cache.misses").inc()
        if hit:
            return value
        value = compute()
        with self._lock:
            # Re-fetch: the region entry may have been invalidated (or
            # another thread may have finished the same compute) while
            # we ran unlocked.  setdefault keeps the first value.
            per_region = self._entries.setdefault(region, {})
            return per_region.setdefault(key, value)

    def peek(self, region: Region, key: Hashable) -> Any:
        """Cached value for ``(region, key)`` or ``None`` — never inserts."""
        with self._lock:
            per_region = self._entries.get(region)
            if per_region is None:
                return None
            return per_region.get(key)

    def invalidate(self, region: Region) -> None:
        """Drop all entries of one region.

        A compute already in flight for the region may still install
        its value after this returns (it re-creates the region entry);
        invalidation guarantees fresh computes for lookups that *start*
        after it.
        """
        with self._lock:
            self._entries.pop(region, None)

    def clear(self) -> None:
        """Drop everything (counters kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._entries.values())

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus entry counts (one consistent snapshot)."""
        with self._lock:
            return {
                "regions": len(self._entries),
                "entries": sum(
                    len(entries) for entries in self._entries.values()
                ),
                "hits": self.hits,
                "misses": self.misses,
            }
