"""One-shot resilient execution: engine + faults + auditor + fallback.

:func:`run_resilient` wires the whole robustness stack together: it
builds a :class:`~repro.resilience.faults.FaultInjector` from a
:class:`~repro.resilience.faults.FaultPlan` (when one is armed), backs
the engine with a :class:`~repro.resilience.faults
.FaultySpeculativeStore`, attaches the
:class:`~repro.resilience.auditor.InvariantAuditor`, and runs the
chosen speculative engine with graceful degradation enabled.  Whatever
the plan throws at the substrate, the returned final memory state is
bit-identical to :class:`~repro.runtime.interpreter
.SequentialInterpreter` -- either because the engine recovered, or
because it degraded and re-executed sequentially (flagged on the
result).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.program import Program
from repro.obs.tracer import TRACER
from repro.resilience.auditor import InvariantAuditor
from repro.resilience.faults import FaultInjector, FaultPlan, FaultySpeculativeStore
from repro.runtime.engines import (
    CASEEngine,
    DEFAULT_MAX_RESTARTS,
    DEFAULT_WATCHDOG_ROUNDS,
    HOSEEngine,
    SpeculativeResult,
)

ENGINES = {"hose": HOSEEngine, "case": CASEEngine}


def run_resilient(
    program: Program,
    engine: str = "case",
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    window: int = 4,
    capacity: Optional[int] = 64,
    audit: bool = True,
    fallback: bool = True,
    max_restarts: Optional[int] = DEFAULT_MAX_RESTARTS,
    watchdog_rounds: Optional[int] = DEFAULT_WATCHDOG_ROUNDS,
    **engine_kwargs,
) -> SpeculativeResult:
    """Run ``program`` speculatively under a fault plan.

    ``plan=None`` (or a plan with every rate at zero) runs the plain
    engine -- with the auditor attached when ``audit`` is on, so
    fault-free runs double as invariant checks.  ``fallback=False``
    turns graceful degradation off: substrate failures raise their
    typed errors instead (useful in tests asserting the failure mode).
    """
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; have {sorted(ENGINES)}"
        ) from None
    injector = None
    store = None
    if plan is not None and plan:
        injector = FaultInjector(plan, seed=seed)
        store = FaultySpeculativeStore(capacity, injector)
    auditor = InvariantAuditor() if audit else None
    with TRACER.span(
        "resilience.run",
        category="resilience",
        program=program.name,
        engine=engine,
        faulted=bool(injector),
    ):
        runner = cls(
            program,
            window=window,
            capacity=capacity,
            store=store,
            injector=injector,
            auditor=auditor,
            max_restarts=max_restarts,
            watchdog_rounds=watchdog_rounds,
            fallback=fallback,
            **engine_kwargs,
        )
        return runner.run()
