"""Benchmark entry point: ``python -m repro.bench``.

Six scenarios, all selected by default (``--scenarios`` narrows the
run, ``--list-scenarios`` enumerates them):

``families``
    Analyze-throughput (references classified per second) and
    simulate-throughput (memory operations per second) for every
    workload family, fast path vs baseline path.

``engines``
    HOSE vs CASE speculative-storage pressure across buffer capacities,
    every run checked bit-for-bit against the sequential interpreter
    (the ``engines`` key of the report).

``speedup``
    The multiprocessor timing model: HOSE/CASE makespans and
    speedup-vs-sequential across processors x window x capacity (the
    ``speedup`` key; see ``docs/PERFORMANCE.md`` section 5).

``chaos``
    The robustness sweep: every fault kind of ``repro.resilience``
    injected at each swept rate into every workload family (plus a
    branchy explicit-region program) on both engines, asserting that
    each run recovers -- in place or by graceful degradation -- to a
    final state bit-identical to the sequential interpreter (the
    ``chaos`` key; exit 1 on any unrecovered run; see
    ``docs/ROBUSTNESS.md``).

``precision``
    The differential label-soundness checker over the workload families
    plus a seeded fuzz batch: idempotent labels vs provably-conservative
    gaps vs the dynamic upper bound from the trace oracle (the
    ``precision`` key; exit 1 on any unsound or suspect label; see
    ``docs/ANALYSIS.md``).

``serve``
    The analysis daemon under concurrent load: N client sessions over
    real TCP sockets against one shared ``AnalysisCache``, reporting
    requests/sec and p50/p95 latency per method (the ``serve`` key;
    exit 1 on any error envelope, zero cross-request warm hits, or a
    simulate that is not bit-identical to sequential; see
    ``docs/SERVING.md``).

Common invocations::

    python -m repro.bench                 # full run, all scenarios
    python -m repro.bench --smoke         # tiny sizes, CI-friendly
    python -m repro.bench --scenarios speedup   # one scenario only
    python -m repro.bench --list-scenarios
    python -m repro.bench --no-fast-path  # baseline path only (e.g. to
                                          # benchmark a tree without the
                                          # fast path, same harness)
    python -m repro.bench --fast-only     # skip the baseline re-measure
    python -m repro.bench --no-engines    # skip the HOSE/CASE scenario
    python -m repro.bench --verify-engines  # equivalence check only:
                                          # HOSE/CASE final state vs
                                          # sequential, exit 1 on drift
    python -m repro.bench --scenarios speedup --check-speedup
                                          # also assert HOSE on P=4 beats
                                          # sequential on the parallel
                                          # families (CI smoke)
    python -m repro.bench --scenarios engines --check-batch
                                          # also assert the batched replay
                                          # protocol beats op-interleaving
                                          # in engine-sim throughput on
                                          # reduction (CI smoke)
    python -m repro.bench --no-batch      # run the engines with the
                                          # op-interleaved replay only
    python -m repro.bench --scenarios speedup \
        --trace BENCH_trace.json --metrics BENCH_metrics.json
                                          # arm the observability layer:
                                          # Perfetto-loadable timeline +
                                          # metrics snapshot (validate
                                          # with python -m repro.obs)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, Optional

from repro._version import __version__
from repro.obs.export import ChromeTraceBuilder
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    ingest_execution_stats,
    ingest_recording,
    metrics_registry,
)
from repro.obs.tracer import TRACER
from repro.bench.chaos import (
    CHAOS_RATES,
    CHAOS_SIZE,
    CHAOS_SMOKE_RATES,
    CHAOS_SMOKE_SIZE,
    CHAOS_STATEMENTS,
    measure_chaos,
)
from repro.bench.engines import (
    BATCH_SMOKE_FAMILIES,
    BATCH_SMOKE_SIZE,
    ENGINE_CAPACITIES,
    ENGINE_SIZE,
    ENGINE_SMOKE_SIZE,
    ENGINE_STATEMENTS,
    ENGINE_WINDOW,
    check_batch_throughput,
    measure_engine_throughput,
    measure_engines,
    verify_engines,
)
from repro.bench.harness import FamilyResult, geometric_mean, measure_family
from repro.bench.precision import (
    PRECISION_FUZZ,
    PRECISION_SEED,
    PRECISION_SIZE,
    PRECISION_SMOKE_FUZZ,
    PRECISION_SMOKE_SIZE,
    PRECISION_SMOKE_STATEMENTS,
    PRECISION_STATEMENTS,
    measure_precision,
)
from repro.bench.serve import (
    SERVE_MAX_INFLIGHT,
    SERVE_REQUESTS,
    SERVE_SESSIONS,
    SERVE_SIZE,
    SERVE_SMOKE_REQUESTS,
    SERVE_SMOKE_SIZE,
    SERVE_STATEMENTS,
    SERVE_WORKERS,
    check_serve,
    measure_serve,
)
from repro.bench.speedup import (
    SPEEDUP_CAPACITIES,
    SPEEDUP_PROCESSORS,
    SPEEDUP_SIZE,
    SPEEDUP_SMOKE_SIZE,
    SPEEDUP_STATEMENTS,
    SPEEDUP_WINDOWS,
    check_embarrassing_speedup,
    measure_speedups,
)
from repro.bench.workloads import (
    DEFAULT_STATEMENTS,
    FAMILIES,
    SMOKE_SIZE,
    SMOKE_STATEMENTS,
    generate_suite,
)
from repro.timing.cost import DEFAULT_COST_MODEL

LOG = get_logger("bench")

#: Scenario registry: name -> one-line description (--list-scenarios).
SCENARIOS: Dict[str, str] = {
    "families": "analyze/simulate throughput per workload family, "
    "fast path vs baseline",
    "engines": "HOSE vs CASE speculative-storage pressure across "
    "buffer capacities",
    "speedup": "multiprocessor timing model: HOSE/CASE makespans and "
    "speedup vs sequential",
    "chaos": "fault injection sweep: every fault kind x rate x family "
    "x engine must recover bit-identically to sequential",
    "precision": "labeling precision vs the differential checker: "
    "idempotent labels, provable gaps, dynamic upper bound",
    "serve": "analysis daemon under concurrent sessions: requests/sec "
    "and latency percentiles against one shared cache",
}


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Analysis & simulation throughput benchmark.",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=0,
        help="dynamic size for every family (0 = per-family default)",
    )
    parser.add_argument(
        "--statements",
        type=int,
        default=DEFAULT_STATEMENTS,
        help="unrolled statements per region body",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        choices=list(FAMILIES),
        default=list(FAMILIES),
        help="workload families to run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes and minimal repetitions (CI smoke test)",
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=sorted(SCENARIOS),
        default=None,
        help="scenarios to run (default: all)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the available scenarios and exit",
    )
    parser.add_argument(
        "--no-fast-path",
        action="store_true",
        help="measure only the baseline (seed) code path",
    )
    parser.add_argument(
        "--fast-only",
        action="store_true",
        help="measure only the fast path (skip the baseline re-measure)",
    )
    parser.add_argument(
        "--no-engines",
        action="store_true",
        help="skip the HOSE/CASE speculative-storage scenario",
    )
    parser.add_argument(
        "--engine-capacities",
        type=int,
        nargs="+",
        default=list(ENGINE_CAPACITIES),
        help="speculative-buffer capacities swept by the engine scenario",
    )
    parser.add_argument(
        "--engine-window",
        type=int,
        default=ENGINE_WINDOW,
        help="in-flight segments per region in the engine scenario",
    )
    parser.add_argument(
        "--processors",
        type=int,
        nargs="+",
        default=list(SPEEDUP_PROCESSORS),
        help="processor counts swept by the speedup scenario",
    )
    parser.add_argument(
        "--speedup-windows",
        type=int,
        nargs="+",
        default=list(SPEEDUP_WINDOWS),
        help="in-flight windows swept by the speedup scenario",
    )
    parser.add_argument(
        "--speedup-capacities",
        type=int,
        nargs="+",
        default=[c for c in SPEEDUP_CAPACITIES if c is not None],
        help="speculative capacities swept by the speedup scenario "
        "(0 = unbounded)",
    )
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help="exit 1 unless HOSE on 4 processors beats the sequential "
        "cycle total on the embarrassingly-parallel families",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="run the speculative engines with op-interleaved replay "
        "only (disable the batched segment-replay protocol everywhere)",
    )
    parser.add_argument(
        "--check-batch",
        action="store_true",
        help="exit 1 unless batched replay beats op-interleaved replay "
        "in engine-sim throughput on reduction (both bit-identical to "
        "sequential); requires the engines scenario",
    )
    parser.add_argument(
        "--verify-engines",
        action="store_true",
        help="only check HOSE/CASE final-state equivalence vs the "
        "sequential interpreter (exit 1 on any divergence)",
    )
    parser.add_argument(
        "--chaos-rates",
        type=float,
        nargs="+",
        default=list(CHAOS_RATES),
        help="fault-injection rates swept by the chaos scenario",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="fault-injection seed for the chaos scenario "
        "(default: the scenario's fixed seed)",
    )
    parser.add_argument(
        "--precision-fuzz",
        type=int,
        default=PRECISION_FUZZ,
        help="fuzzed programs appended to the precision scenario's "
        "family sweep",
    )
    parser.add_argument(
        "--precision-seed",
        type=int,
        default=PRECISION_SEED,
        help="generator seed for the precision scenario's fuzz batch",
    )
    parser.add_argument(
        "--serve-sessions",
        type=int,
        default=SERVE_SESSIONS,
        help="concurrent client sessions driven by the serve scenario",
    )
    parser.add_argument(
        "--serve-requests",
        type=int,
        default=0,
        help="requests per session in the serve scenario "
        "(0 = per-mode default)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.4,
        help="minimum accumulated wall-clock per measurement",
    )
    parser.add_argument(
        "--out",
        default="BENCH_results.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="arm the span tracer and write a Chrome-trace (Perfetto) "
        "JSON timeline here (speedup runs additionally export their "
        "P-processor schedules as per-lane timelines)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="arm the metrics registry and write a "
        "repro.obs.metrics/v1 snapshot here",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational log output (warnings still shown)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log output as JSON lines instead of human text",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    configure_logging(quiet=args.quiet, json_lines=args.log_json)
    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            print(f"{name:<10} {SCENARIOS[name]}")
        return 0
    if args.no_fast_path and args.fast_only:
        LOG.error("--no-fast-path and --fast-only are mutually exclusive")
        return 2
    selected = set(args.scenarios) if args.scenarios else set(SCENARIOS)
    if args.no_engines:
        selected.discard("engines")
    if not selected:
        LOG.error(
            "nothing to run: the scenario selection is empty "
            "(--no-engines removed the only selected scenario)"
        )
        return 2
    if args.check_speedup and "speedup" not in selected:
        LOG.error("--check-speedup requires the speedup scenario")
        return 2
    if args.check_speedup and 4 not in args.processors:
        LOG.error("--check-speedup requires 4 in --processors")
        return 2
    if args.check_speedup and args.verify_engines:
        LOG.error(
            "--verify-engines runs the equivalence check only and never "
            "reaches the speedup scenario; drop one of the two flags"
        )
        return 2
    if args.check_batch and args.no_batch:
        LOG.error("--check-batch and --no-batch are mutually exclusive")
        return 2
    if args.check_batch and "engines" not in selected:
        LOG.error("--check-batch requires the engines scenario")
        return 2
    if args.check_batch and "reduction" not in args.families:
        LOG.error("--check-batch requires reduction in --families")
        return 2
    if args.check_batch and args.verify_engines:
        LOG.error(
            "--verify-engines runs the equivalence check only and never "
            "reaches the engine throughput sweep; drop one of the two "
            "flags"
        )
        return 2
    batch = not args.no_batch

    # Observability is armed only when an artifact was asked for, so
    # the default bench run measures the disabled fast path (this is
    # the run the <= 2% overhead gate compares against the seed).
    registry = metrics_registry()
    if args.trace:
        TRACER.reset()
        TRACER.enable()
    if args.metrics:
        registry.reset()
        registry.enable()
    trace_builder = ChromeTraceBuilder() if args.trace else None

    if args.verify_engines:
        verify_size = args.size if args.size else ENGINE_SMOKE_SIZE
        verify_statements = (
            SMOKE_STATEMENTS if args.smoke else min(args.statements, 4)
        )
        windows = tuple(sorted({1, args.engine_window}))
        LOG.info(
            f"engine equivalence: HOSE/CASE vs sequential "
            f"(size={verify_size}, statements={verify_statements}, "
            f"windows={list(windows)}, "
            f"capacities={args.engine_capacities}) ..."
        )
        failures = verify_engines(
            size=verify_size,
            statements=verify_statements,
            families=tuple(args.families),
            windows=windows,
            capacities=tuple(args.engine_capacities),
            batch_modes=(False,) if args.no_batch else (False, True),
        )
        for failure in failures:
            LOG.error(f"FAIL {failure}")
        if failures:
            return 1
        LOG.info("engine equivalence OK (all final states bit-identical)")
        return 0

    # An explicit --size uniformly overrides every scenario's default
    # (smoke or full); 0 keeps the per-scenario defaults.
    size = args.size if args.size else (SMOKE_SIZE if args.smoke else 0)
    statements = SMOKE_STATEMENTS if args.smoke else args.statements
    min_seconds = 0.02 if args.smoke else args.min_seconds

    modes = []
    if not args.no_fast_path:
        modes.append(("fast", True))
    if not args.fast_only:
        modes.append(("baseline", False))

    families: Dict[str, Dict] = {}
    t_start = time.perf_counter()
    if "families" in selected:
        suite = generate_suite(
            size=size, statements=statements, families=tuple(args.families)
        )
        with TRACER.span("bench.scenario", category="bench", scenario="families"):
            for workload in suite:
                entry: Dict = {}
                measured: Dict[str, FamilyResult] = {}
                for mode_name, fast in modes:
                    LOG.info(
                        f"{workload.family:<10} {mode_name:<8} "
                        f"(size={workload.size}, "
                        f"statements={workload.statements}) ..."
                    )
                    result = measure_family(
                        workload, fast_path=fast, min_seconds=min_seconds
                    )
                    measured[mode_name] = result
                    entry[mode_name] = result.as_dict()
                if "fast" in measured and "baseline" in measured:
                    fast_r, base_r = measured["fast"], measured["baseline"]
                    entry["speedup"] = {
                        "analyze": round(
                            fast_r.analyze.per_second
                            / max(base_r.analyze.per_second, 1e-9),
                            2,
                        ),
                        "analyze_warm": round(
                            fast_r.analyze_warm.per_second
                            / max(base_r.analyze_warm.per_second, 1e-9),
                            2,
                        ),
                        "simulate": round(
                            fast_r.simulate.per_second
                            / max(base_r.simulate.per_second, 1e-9),
                            2,
                        ),
                    }
                families[workload.family] = entry

    engines_section = None
    if "engines" in selected:
        engine_size = args.size if args.size else (
            ENGINE_SMOKE_SIZE if args.smoke else ENGINE_SIZE
        )
        engine_statements = (
            SMOKE_STATEMENTS if args.smoke else ENGINE_STATEMENTS
        )
        LOG.info(
            f"engines: HOSE vs CASE "
            f"(size={engine_size}, statements={engine_statements}, "
            f"window={args.engine_window}, "
            f"capacities={args.engine_capacities}, "
            f"batch={batch}) ..."
        )
        with TRACER.span("bench.scenario", category="bench", scenario="engines"):
            engines_section = {
                "size": engine_size,
                "statements": engine_statements,
                "window": args.engine_window,
                "capacities": list(args.engine_capacities),
                "batch": batch,
                "families": measure_engines(
                    size=engine_size,
                    statements=engine_statements,
                    families=tuple(args.families),
                    capacities=tuple(args.engine_capacities),
                    window=args.engine_window,
                    batch=batch,
                ),
            }
        if batch:
            # Batched vs op-interleaved replay throughput.  The smoke
            # sweep sticks to the family/size the --check-batch gate
            # needs (tiny sizes make the comparison timing-noisy); the
            # full sweep runs every selected family at the per-family
            # DEFAULT_SIZES (size=0 sentinel) unless --size overrides.
            if args.smoke:
                throughput_families = tuple(
                    f for f in args.families if f in BATCH_SMOKE_FAMILIES
                )
                throughput_size = args.size if args.size else BATCH_SMOKE_SIZE
            else:
                throughput_families = tuple(args.families)
                throughput_size = args.size
            if throughput_families:
                LOG.info(
                    f"engines: batched vs interleaved replay throughput "
                    f"(families={list(throughput_families)}, "
                    f"size={throughput_size or 'default'}, "
                    f"window={args.engine_window}) ..."
                )
                with TRACER.span(
                    "bench.scenario",
                    category="bench",
                    scenario="engine-throughput",
                ):
                    engines_section["throughput"] = measure_engine_throughput(
                        families=throughput_families,
                        size=throughput_size,
                        window=args.engine_window,
                    )

    speedup_section = None
    if "speedup" in selected:
        speedup_size = args.size if args.size else (
            SPEEDUP_SMOKE_SIZE if args.smoke else SPEEDUP_SIZE
        )
        speedup_statements = (
            SMOKE_STATEMENTS if args.smoke else SPEEDUP_STATEMENTS
        )
        capacities = [c if c else None for c in args.speedup_capacities]
        windows = list(args.speedup_windows)
        LOG.info(
            f"speedup: HOSE/CASE makespans "
            f"(size={speedup_size}, statements={speedup_statements}, "
            f"processors={args.processors}, windows={windows}, "
            f"capacities={capacities}) ..."
        )

        # The speedup scenario is where the Perfetto timeline comes
        # from: every engine run hands its recording + makespans to
        # this observer, which lays the P-processor schedule out as
        # per-lane slices and folds the telemetry into the registry.
        schedule_p = 4 if 4 in args.processors else max(args.processors)
        export_window = max(windows)
        observing = trace_builder is not None or registry.collecting

        def speedup_observer(
            *, workload, engine, window, capacity, recording, stats, makespans
        ):
            if registry.collecting:
                ingest_recording(recording, registry=registry)
                ingest_execution_stats(stats, registry=registry)
            if trace_builder is not None and window == export_window:
                makespan = makespans.get(schedule_p)
                if makespan is not None:
                    cap = "inf" if capacity is None else capacity
                    trace_builder.add_schedule(
                        makespan,
                        label=(
                            f"{engine} {workload.family} "
                            f"P={schedule_p} w={window} c={cap}"
                        ),
                    )

        with TRACER.span("bench.scenario", category="bench", scenario="speedup"):
            speedup_section = {
                "size": speedup_size,
                "statements": speedup_statements,
                "processors": list(args.processors),
                "windows": windows,
                "capacities": capacities,
                "cost_model": DEFAULT_COST_MODEL.as_dict(),
                "batch": batch,
                "families": measure_speedups(
                    size=speedup_size,
                    statements=speedup_statements,
                    families=tuple(args.families),
                    processors=tuple(args.processors),
                    windows=tuple(windows),
                    capacities=tuple(capacities),
                    cost=DEFAULT_COST_MODEL,
                    observer=speedup_observer if observing else None,
                    batch=batch,
                ),
            }

    chaos_section = None
    if "chaos" in selected:
        chaos_size = args.size if args.size else (
            CHAOS_SMOKE_SIZE if args.smoke else CHAOS_SIZE
        )
        chaos_rates = (
            list(CHAOS_SMOKE_RATES) if args.smoke else list(args.chaos_rates)
        )
        LOG.info(
            f"chaos: fault injection sweep "
            f"(size={chaos_size}, statements={CHAOS_STATEMENTS}, "
            f"rates={chaos_rates}) ..."
        )
        chaos_kwargs = {}
        if args.chaos_seed is not None:
            chaos_kwargs["seed"] = args.chaos_seed
        with TRACER.span("bench.scenario", category="bench", scenario="chaos"):
            chaos_section = measure_chaos(
                size=chaos_size,
                statements=CHAOS_STATEMENTS,
                families=tuple(args.families),
                rates=tuple(chaos_rates),
                batch=batch,
                **chaos_kwargs,
            )

    precision_section = None
    if "precision" in selected:
        precision_size = args.size if args.size else (
            PRECISION_SMOKE_SIZE if args.smoke else PRECISION_SIZE
        )
        precision_statements = (
            PRECISION_SMOKE_STATEMENTS if args.smoke else PRECISION_STATEMENTS
        )
        precision_fuzz = (
            PRECISION_SMOKE_FUZZ if args.smoke else args.precision_fuzz
        )
        LOG.info(
            f"precision: labels vs differential checker "
            f"(size={precision_size}, statements={precision_statements}, "
            f"fuzz={precision_fuzz}, seed={args.precision_seed}) ..."
        )
        with TRACER.span(
            "bench.scenario", category="bench", scenario="precision"
        ):
            precision_section = measure_precision(
                size=precision_size,
                statements=precision_statements,
                families=tuple(args.families),
                fuzz=precision_fuzz,
                seed=args.precision_seed,
            )

    serve_section = None
    if "serve" in selected:
        serve_size = args.size if args.size else (
            SERVE_SMOKE_SIZE if args.smoke else SERVE_SIZE
        )
        serve_requests = args.serve_requests if args.serve_requests else (
            SERVE_SMOKE_REQUESTS if args.smoke else SERVE_REQUESTS
        )
        LOG.info(
            f"serve: daemon under concurrent load "
            f"(sessions={args.serve_sessions}, "
            f"requests/session={serve_requests}, size={serve_size}, "
            f"workers={SERVE_WORKERS}, "
            f"max_inflight={SERVE_MAX_INFLIGHT}) ..."
        )
        with TRACER.span("bench.scenario", category="bench", scenario="serve"):
            serve_section = measure_serve(
                sessions=args.serve_sessions,
                requests_per_session=serve_requests,
                size=serve_size,
                statements=SERVE_STATEMENTS,
            )

    report = {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "size": size,
            "statements": statements,
            "smoke": args.smoke,
            "scenarios": sorted(selected),
            "modes": [name for name, _ in modes],
            "wall_seconds": round(time.perf_counter() - t_start, 2),
        },
        "families": families,
    }
    if engines_section is not None:
        report["engines"] = engines_section
    if speedup_section is not None:
        report["speedup"] = speedup_section
    if chaos_section is not None:
        report["chaos"] = chaos_section
    if precision_section is not None:
        report["precision"] = precision_section
    if serve_section is not None:
        report["serve"] = serve_section
    if all("speedup" in entry for entry in families.values()) and families:
        report["summary"] = {
            "analyze_speedup_geomean": round(
                geometric_mean(
                    [e["speedup"]["analyze"] for e in families.values()]
                ),
                2,
            ),
            "simulate_speedup_geomean": round(
                geometric_mean(
                    [e["speedup"]["simulate"] for e in families.values()]
                ),
                2,
            ),
        }

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    LOG.info(f"wrote {args.out}")

    artifact_meta = {
        "version": __version__,
        "scenarios": sorted(selected),
        "smoke": args.smoke,
        "source": "python -m repro.bench",
    }
    if trace_builder is not None:
        trace_builder.add_spans(TRACER.finished_spans(), TRACER.events())
        trace_builder.write(args.trace, meta=artifact_meta)
        LOG.info(
            f"wrote {args.trace} "
            f"(open at https://ui.perfetto.dev or chrome://tracing)"
        )
    if args.metrics:
        snapshot = registry.snapshot(meta=artifact_meta)
        with open(args.metrics, "w") as handle:
            json.dump(snapshot, handle, indent=1, sort_keys=True)
            handle.write("\n")
        LOG.info(f"wrote {args.metrics}")

    for family, entry in families.items():
        line = f"{family:<10}"
        for mode_name, _ in modes:
            r = entry[mode_name]
            line += (
                f"  {mode_name}: analyze={r['analyze_refs_per_s']:,.0f} refs/s"
                f" simulate={r['simulate_ops_per_s']:,.0f} ops/s"
            )
        if "speedup" in entry:
            line += (
                f"  speedup: analyze={entry['speedup']['analyze']}x"
                f" simulate={entry['speedup']['simulate']}x"
            )
        LOG.info(line)
    if "summary" in report:
        LOG.info(
            f"geomean speedup: "
            f"analyze={report['summary']['analyze_speedup_geomean']}x "
            f"simulate={report['summary']['simulate_speedup_geomean']}x"
        )
    if engines_section is not None:
        mismatches = 0
        for family, entry in engines_section["families"].items():
            for capacity, row in entry["capacities"].items():
                hose, case = row["hose"], row["case"]
                for side in (hose, case):
                    if not side["matches_sequential"]:
                        mismatches += 1
                LOG.info(
                    f"{family:<10} cap={capacity:>4}  "
                    f"commit: hose={hose['commit_entries']:>6} "
                    f"case={case['commit_entries']:>6}  "
                    f"peak: hose={hose['spec_peak_entries']:>5} "
                    f"case={case['spec_peak_entries']:>5}  "
                    f"stalls: hose={hose['overflow_stalls']:>4} "
                    f"case={case['overflow_stalls']:>4}"
                )
        throughput = engines_section.get("throughput")
        if throughput is not None:
            for family, row in throughput["families"].items():
                for side in ("interleaved", "batched"):
                    if not row[side]["matches_sequential"]:
                        mismatches += 1
                LOG.info(
                    f"{family:<10} size={row['size']:>5}  throughput: "
                    f"interleaved="
                    f"{row['interleaved']['ops_per_s']:>10,.0f} ops/s  "
                    f"batched={row['batched']['ops_per_s']:>10,.0f} ops/s  "
                    f"speedup={row['speedup']}x"
                )
            LOG.info(
                f"batched replay speedup geomean: "
                f"{throughput['speedup_geomean']}x"
            )
        if mismatches:
            LOG.warning(
                f"{mismatches} engine runs diverged from "
                f"the sequential interpreter"
            )
            return 1
        if args.check_batch:
            failures = check_batch_throughput(throughput)
            for failure in failures:
                LOG.error(f"FAIL {failure}")
            if failures:
                return 1
            LOG.info(
                "batch check OK (batched replay beats op-interleaved "
                "replay on reduction, both bit-identical to sequential)"
            )
    if speedup_section is not None:
        mismatches = 0
        top = str(max(args.processors))
        for family, entry in speedup_section["families"].items():
            for side in ("hose", "case"):
                for row in entry["configs"].values():
                    if not row[side]["matches_sequential"]:
                        mismatches += 1
            LOG.info(
                f"{family:<10} sequential={entry['sequential_cycles']:>8} "
                f"best speedup @P={top}: "
                f"hose={entry['best_hose_speedup']}x "
                f"case={entry['best_case_speedup']}x"
            )
        if mismatches:
            LOG.warning(
                f"{mismatches} speedup-scenario runs "
                f"diverged from the sequential interpreter"
            )
            return 1
        if args.check_speedup:
            failures = check_embarrassing_speedup(speedup_section, processors=4)
            for failure in failures:
                LOG.error(f"FAIL {failure}")
            if failures:
                return 1
            LOG.info(
                "speedup check OK (HOSE on 4 processors beats "
                "sequential on the embarrassingly-parallel families)"
            )
    if chaos_section is not None:
        for name, entry in chaos_section["programs"].items():
            injected = 0
            degraded = 0
            runs = 0
            for per_kind in entry["faults"].values():
                for per_rate in per_kind.values():
                    for row in per_rate.values():
                        runs += 1
                        injected += row["total_injected"]
                        degraded += 1 if row["degraded"] else 0
            audits = sum(
                side["audits"] for side in entry["baseline"].values()
            )
            LOG.info(
                f"{name:<10} chaos: {runs} runs, "
                f"{injected} faults injected, {degraded} degraded, "
                f"{audits} fault-free audits"
            )
        if chaos_section["unrecovered"]:
            for failure in chaos_section["unrecovered"]:
                LOG.error(f"FAIL {failure}")
            LOG.warning(
                f"{len(chaos_section['unrecovered'])} "
                f"chaos runs did not recover to the sequential state"
            )
            return 1
        LOG.info(
            "chaos check OK (every faulted run recovered "
            "bit-identically to sequential)"
        )
    if precision_section is not None:
        rows = dict(precision_section["families"])
        rows["fuzzed"] = precision_section["fuzzed"]
        for name, entry in rows.items():
            pct = entry["precision_percent"]
            LOG.info(
                f"{name:<10} precision: "
                f"{entry['idempotent_labels']:>5} idempotent, "
                f"{entry['production_conservative']:>3} provably "
                f"conservative, "
                f"{entry['dynamically_clean_speculative']:>4} dynamically "
                f"clean  "
                f"({pct if pct is not None else '-'}%)"
            )
        totals = precision_section["totals"]
        if totals["unsound"] or totals["suspect"]:
            LOG.warning(
                f"checker found {totals['unsound']} "
                f"unsound and {totals['suspect']} suspect labels"
            )
            return 1
        LOG.info(
            f"precision check OK (0 unsound labels; overall "
            f"{totals['precision_percent']}% of provably-idempotent "
            f"references labeled)"
        )
    if serve_section is not None:
        latency = serve_section["latency_ms"]
        LOG.info(
            f"serve: {serve_section['sessions']} sessions x "
            f"{serve_section['requests_per_session']} requests  "
            f"{serve_section['requests_per_second']:,.1f} req/s  "
            f"p50={latency['p50']}ms p95={latency['p95']}ms  "
            f"warm hits={serve_section['warm_hits']}  "
            f"errors={serve_section['errors']}"
        )
        failures = check_serve(serve_section)
        for failure in failures:
            LOG.error(f"FAIL {failure}")
        if failures:
            return 1
        LOG.info(
            "serve check OK (all sessions served, shared cache warm, "
            "every simulate bit-identical to sequential)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
