"""Shared structured logger for the CLI drivers.

The bench and check entry points used to ``print()`` ad-hoc progress
lines; every driver now routes through one :class:`StructuredLogger`
so output is uniform and machine-consumable:

* **human mode** (default) keeps the familiar ``[bench] message``
  shape -- info to stdout, warnings/errors to stderr;
* **JSON-lines mode** (``--log-json``) emits one JSON object per line
  (``ts`` / ``logger`` / ``level`` / ``msg`` plus any structured
  fields), ready for ``jq`` or ingestion;
* **quiet mode** (``--quiet``) suppresses info/debug chatter while
  warnings and errors still get through.

Configuration is process-wide (:func:`configure_logging`), loggers are
cheap named handles (:func:`get_logger`).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}

_lock = threading.Lock()
_config: Dict[str, Any] = {
    "quiet": False,
    "json_lines": False,
    "stream": None,  # None = stdout for info, stderr for warning+
    "level": INFO,
}


def configure_logging(
    quiet: Optional[bool] = None,
    json_lines: Optional[bool] = None,
    stream: Optional[IO[str]] = None,
    level: Optional[int] = None,
) -> None:
    """Set process-wide logging behaviour (None = leave unchanged)."""
    with _lock:
        if quiet is not None:
            _config["quiet"] = quiet
        if json_lines is not None:
            _config["json_lines"] = json_lines
        if stream is not None:
            _config["stream"] = stream
        if level is not None:
            _config["level"] = level


def reset_logging() -> None:
    """Back to defaults (used by tests)."""
    with _lock:
        _config.update(quiet=False, json_lines=False, stream=None, level=INFO)


class StructuredLogger:
    """A named logging handle; all state lives in the module config."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    # ------------------------------------------------------------------
    def log(self, level: int, msg: str, **fields: Any) -> None:
        with _lock:
            quiet = _config["quiet"]
            json_lines = _config["json_lines"]
            stream = _config["stream"]
            threshold = _config["level"]
        if level < threshold:
            return
        if quiet and level < WARNING:
            return
        if json_lines:
            payload: Dict[str, Any] = {
                "ts": round(time.time(), 3),
                "logger": self.name,
                "level": _LEVEL_NAMES.get(level, str(level)),
                "msg": msg,
            }
            if fields:
                payload.update(fields)
            out = stream or sys.stdout
            print(json.dumps(payload, default=str), file=out, flush=True)
            return
        out = stream or (sys.stderr if level >= WARNING else sys.stdout)
        prefix = f"[{self.name}]"
        if level >= ERROR:
            prefix += " ERROR:"
        elif level >= WARNING:
            prefix += " WARNING:"
        suffix = ""
        if fields:
            suffix = " " + " ".join(f"{k}={v}" for k, v in fields.items())
        print(f"{prefix} {msg}{suffix}", file=out, flush=True)

    # ------------------------------------------------------------------
    def debug(self, msg: str, **fields: Any) -> None:
        self.log(DEBUG, msg, **fields)

    def info(self, msg: str, **fields: Any) -> None:
        self.log(INFO, msg, **fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self.log(WARNING, msg, **fields)

    def error(self, msg: str, **fields: Any) -> None:
        self.log(ERROR, msg, **fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    """The shared logger handle for ``name`` (created on first use)."""
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger
