"""Statements.

Segments (Definition 1) contain straight-line code with structured
control flow: assignments (optionally guarded), ``IF``/``ELSE`` blocks
and counted ``DO`` loops that execute *sequentially inside* a segment
(the paper's inner loops, e.g. the ``j``/``i``/``m``/``l`` loops of
APPLU ``BUTS_DO1`` in Figure 4).

Loop index variables of ``DO`` statements are *induction locals*: they
model the architected, non-speculative loop variables of Section 4.2.2
and are not memory references.  Every other variable access is a memory
reference and is materialised by :mod:`repro.ir.reference`.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.ir.expr import Expr, ExprLike, as_expr

_stmt_counter = itertools.count()


class StatementError(Exception):
    """Raised for malformed statements."""


class Statement:
    """Base class of all statements.

    Attributes
    ----------
    sid:
        Statement identifier, assigned when the statement is attached to
        a region (``None`` until then).
    reads / write / control_reads:
        Memory references extracted by
        :func:`repro.ir.reference.extract_references`; ``None`` until the
        owning region is finalised.
    """

    # __weakref__ lets caches (e.g. the executor's per-statement cost
    # cache) key on statements without keeping them alive.
    __slots__ = ("sid", "reads", "write", "control_reads", "_token", "__weakref__")

    def __init__(self) -> None:
        self.sid: Optional[str] = None
        self.reads = None
        self.write = None
        self.control_reads = None
        # Unique creation token so identical-looking statements still have
        # distinct identities (needed because references hang off them).
        self._token = next(_stmt_counter)

    # -- structure ------------------------------------------------------
    def child_bodies(self) -> Tuple[List["Statement"], ...]:
        """Nested statement lists (empty for leaf statements)."""
        return ()

    def walk(self) -> Iterator["Statement"]:
        """Pre-order traversal including nested statements."""
        yield self
        for body in self.child_bodies():
            for stmt in body:
                yield from stmt.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.sid or '?'}>"


class Assign(Statement):
    """``target (subscripts) = rhs`` optionally guarded by ``guard``.

    A guarded assignment only stores when the guard evaluates to a
    non-zero value; for static analysis it is treated as a *may*-write,
    exactly like a write nested in an ``IF``.
    """

    __slots__ = ("target", "target_subscripts", "rhs", "guard")

    def __init__(
        self,
        target: str,
        rhs: ExprLike,
        subscripts: Sequence[ExprLike] = (),
        guard: Optional[ExprLike] = None,
    ):
        super().__init__()
        if not target:
            raise StatementError("assignment needs a target variable")
        self.target = target
        self.target_subscripts: Tuple[Expr, ...] = tuple(
            as_expr(s) for s in subscripts
        )
        self.rhs: Expr = as_expr(rhs)
        self.guard: Optional[Expr] = as_expr(guard) if guard is not None else None

    @property
    def targets_array(self) -> bool:
        """True when the target is an array element."""
        return bool(self.target_subscripts)

    def __str__(self) -> str:
        subs = (
            "(" + ", ".join(str(s) for s in self.target_subscripts) + ")"
            if self.target_subscripts
            else ""
        )
        head = f"{self.target}{subs} = {self.rhs}"
        if self.guard is not None:
            return f"if ({self.guard}) {head}"
        return head


class If(Statement):
    """Structured ``IF (cond) THEN ... [ELSE ...] ENDIF``."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(
        self,
        cond: ExprLike,
        then_body: Sequence[Statement],
        else_body: Sequence[Statement] = (),
    ):
        super().__init__()
        self.cond: Expr = as_expr(cond)
        self.then_body: List[Statement] = list(then_body)
        self.else_body: List[Statement] = list(else_body)
        for stmt in self.then_body + self.else_body:
            if not isinstance(stmt, Statement):
                raise StatementError(f"IF body contains non-statement {stmt!r}")

    def child_bodies(self) -> Tuple[List[Statement], ...]:
        return (self.then_body, self.else_body)

    def __str__(self) -> str:
        return f"if ({self.cond}) then <{len(self.then_body)} stmts> else <{len(self.else_body)} stmts>"


class Do(Statement):
    """Counted loop executed sequentially inside a segment.

    ``index`` is an induction local (register), not a memory variable.
    ``step`` may be negative for count-down loops; a zero step is
    rejected.  The loop executes while ``index`` lies inclusively between
    ``lower`` and ``upper`` (in the direction of ``step``), mirroring the
    Fortran ``DO`` semantics.
    """

    __slots__ = ("index", "lower", "upper", "step", "body")

    def __init__(
        self,
        index: str,
        lower: ExprLike,
        upper: ExprLike,
        body: Sequence[Statement],
        step: Union[int, ExprLike] = 1,
    ):
        super().__init__()
        if not index:
            raise StatementError("DO loop needs an index variable")
        self.index = index
        self.lower: Expr = as_expr(lower)
        self.upper: Expr = as_expr(upper)
        self.step: Expr = as_expr(step)
        self.body: List[Statement] = list(body)
        for stmt in self.body:
            if not isinstance(stmt, Statement):
                raise StatementError(f"DO body contains non-statement {stmt!r}")

    def child_bodies(self) -> Tuple[List[Statement], ...]:
        return (self.body,)

    def constant_trip_count(self) -> Optional[int]:
        """Trip count when all bounds are integer constants, else ``None``."""
        from repro.ir.expr import const_int

        lo = const_int(self.lower)
        hi = const_int(self.upper)
        st = const_int(self.step)
        if lo is None or hi is None or st is None:
            return None
        if st == 0:
            return 0
        return max(0, (hi - lo) // st + 1)

    def __str__(self) -> str:
        return (
            f"do {self.index} = {self.lower}, {self.upper}, {self.step} "
            f"<{len(self.body)} stmts>"
        )


def iter_statements(body: Sequence[Statement]) -> Iterator[Statement]:
    """Pre-order traversal of a statement list (including nested bodies)."""
    for stmt in body:
        yield from stmt.walk()


def induction_locals(body: Sequence[Statement]) -> set:
    """Names of all ``DO`` index variables appearing anywhere in ``body``."""
    return {s.index for s in iter_statements(body) if isinstance(s, Do)}
