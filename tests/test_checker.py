"""Differential label-soundness checker tests.

Covers the checker itself: the generic dataflow solver and statement
CFG, the static re-derivation agreeing with production on clean
programs, the dynamic trace/replay oracles, the severity judgments
(known-unsound labelings flagged, known-conservative ones not), the
mutation self-test, the seeded program generator, and the IR lint pass.
"""

import pytest

from repro.analysis.checker import (
    CheckConfig,
    DataflowProblem,
    build_segment_cfg,
    check_program,
    mutation_check,
    rederive_region,
    replay_check,
    solve_dataflow,
)
from repro.analysis.checker.differential import _MutatedLabeling, check_region
from repro.analysis.checker.oracle import run_trace
from repro.analysis.checker.rederive import compare_region
from repro.analysis.checker.stmt_cfg import (
    ASSIGN,
    BRANCH,
    JOIN,
    LOOP_BACK,
    LOOP_EXIT,
    LOOP_HEAD,
)
from repro.corpus import corpus, generate_program, generate_source
from repro.idempotency.labeling import label_program
from repro.ir.dsl import parse_program
from repro.ir.validate import validate_program


def parse(src: str):
    return parse_program(src)


CLEAN_SRC = """
program clean
real a(16)
real b(16)
real s

init
  do t = 1, 16
    a(t) = t
  end do
  do t = 1, 16
    b(t) = 2 * t
  end do
  s = 0.0
end init

region R0 do i = 1, 4
  b(i) = a(i) + 1.0
end region

region R1 do i = 1, 4
  a(i + 4) = b(i)
end region

finale
  s = s + b(3) + a(6)
end finale
end program
"""

HAZARD_SRC = """
program hazard
real a(16)
real s

init
  do t = 1, 16
    a(t) = t
  end do
  s = 0.0
end init

region R0 do i = 1, 4
  a(i + 1) = a(i) + 1.0
  s = s + a(i + 1)
end region

finale
  s = s + a(5)
end finale
end program
"""


# ----------------------------------------------------------------------
# Dataflow framework
# ----------------------------------------------------------------------
class _Reaching(DataflowProblem):
    """Forward may-union toy problem over string nodes."""

    direction = "forward"

    def __init__(self, gens):
        self.gens = gens

    def boundary(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, node, value):
        return value | frozenset(self.gens.get(node, ()))


class TestDataflow:
    def test_forward_join_over_diamond(self):
        nodes = ["e", "l", "r", "x"]
        succ = {"e": ["l", "r"], "l": ["x"], "r": ["x"], "x": []}
        pred = {"e": [], "l": ["e"], "r": ["e"], "x": ["l", "r"]}
        sol = solve_dataflow(
            nodes,
            lambda n: succ[n],
            lambda n: pred[n],
            _Reaching({"l": ["L"], "r": ["R"]}),
            ["e"],
        )
        assert sol["x"][0] == frozenset({"L", "R"})

    def test_unreachable_node_gets_none(self):
        nodes = ["e", "dead"]
        sol = solve_dataflow(
            nodes,
            lambda n: [],
            lambda n: [],
            _Reaching({}),
            ["e"],
        )
        assert sol["dead"] == (None, None)


class TestStmtCFG:
    def test_if_else_is_a_diamond(self):
        program = parse(
            """
            program p
            real a(4)
            real s
            init
              s = 0.0
            end init
            region R do i = 1, 2
              if (s > 1.0) then
                a(i) = 1.0
              else
                a(i) = 2.0
              end if
            end region
            finale
              s = a(1)
            end finale
            end program
            """
        )
        cfg = build_segment_cfg(program.regions[0].body)
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count(BRANCH) == 1
        assert kinds.count(JOIN) == 1
        assert kinds.count(ASSIGN) == 2
        branch = next(n for n in cfg.nodes if n.kind == BRANCH)
        assert len(cfg.successors(branch)) == 2

    def test_do_loop_has_back_and_exit_edges(self):
        program = parse(
            """
            program p
            real a(8)
            real s
            init
              s = 0.0
            end init
            region R do i = 1, 2
              do t = 1, 3
                a(t) = s
              end do
            end region
            finale
              s = a(1)
            end finale
            end program
            """
        )
        cfg = build_segment_cfg(program.regions[0].body)
        kinds = [n.kind for n in cfg.nodes]
        assert LOOP_HEAD in kinds and LOOP_BACK in kinds and LOOP_EXIT in kinds
        head = next(n for n in cfg.nodes if n.kind == LOOP_HEAD)
        # Provable trip >= 1: no skip edge around the body.
        assert len(cfg.successors(head)) == 1


# ----------------------------------------------------------------------
# Static re-derivation
# ----------------------------------------------------------------------
class TestRederive:
    def test_clean_program_has_no_aggressive_diffs(self):
        program = parse(CLEAN_SRC)
        labelings = label_program(program)
        for region in program.regions:
            facts = rederive_region(region, program=program)
            diffs = compare_region(labelings[region.name], facts)
            aggressive = [
                d for d in diffs if d.direction == "production-aggressive"
            ]
            assert aggressive == []

    def test_exact_enumeration_on_const_bounds(self):
        program = parse(CLEAN_SRC)
        facts = rederive_region(program.regions[0], program=program)
        assert facts.exact

    def test_branch_read_after_must_kill_is_not_exposed(self):
        """A branch condition evaluates after its segment's body.

        ``rederive_live_out`` used to add branch-read variables to the
        segment's exposed set even when the body must-killed them
        first, keeping ``u`` falsely live out of R0 (false suspect on
        fuzzed program 210 of seed 20260807).
        """
        from repro.analysis.checker.rederive import rederive_live_out

        program = parse(
            """
            program branchkill
            real a(8)
            real u

            init
              do t = 1, 8
                a(t) = t
              end do
              u = 0.5
            end init

            region R0 do i = 1, 4
              u = a(i)
            end region

            region R1 explicit
              segment S0
                u = a(1) + 1.0
                branch u > 1.0
              end segment
              segment S1
                a(2) = u
              end segment
              segment S2
                a(3) = u
              end segment
              edges S0 -> S1
              edges S0 -> S2
            end region

            finale
              u = u + a(2)
            end finale
            end program
            """
        )
        live = rederive_live_out(program)
        assert "u" not in live["R0"]

    def test_symbolic_bounds_fall_back_conservatively(self):
        program = parse(
            """
            program sym
            real a(16)
            real s
            integer n

            init
              n = 4
              s = 0.0
            end init

            region R do i = 1, n
              a(i) = s
            end region

            finale
              s = a(1)
            end finale
            end program
            """
        )
        facts = rederive_region(program.regions[0], program=program)
        assert not facts.exact
        assert facts.notes  # the fallback is reported


# ----------------------------------------------------------------------
# Dynamic oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_trace_oracle_sees_cross_iteration_flow(self):
        program = parse(HAZARD_SRC)
        oracle = run_trace(program)
        facts = oracle.facts["R0"]
        # a(i) reads the a(i) written by the previous iteration.
        assert facts.cross_flow_sink_uids
        assert facts.cross_value_hazard_write_uids

    def test_trace_oracle_clean_on_independent_region(self):
        program = parse(CLEAN_SRC)
        oracle = run_trace(program)
        for facts in oracle.facts.values():
            assert not facts.cross_flow_sink_uids
            assert not facts.rfw_violation_uids

    def test_replay_matches_sequential_on_clean_program(self):
        program = parse(CLEAN_SRC)
        labelings = label_program(program)
        report = replay_check(program, labelings)
        assert report.ok, report.mismatches

    def test_replay_catches_injected_idempotent_write(self):
        program = parse(HAZARD_SRC)
        labelings = label_program(program)
        region = program.regions[0]
        labeling = labelings["R0"]
        oracle = run_trace(program)
        hazards = oracle.facts["R0"].cross_flow_sink_uids | oracle.facts[
            "R0"
        ].rfw_violation_uids | oracle.facts["R0"].cross_value_hazard_write_uids
        flipped = next(
            uid
            for uid in sorted(hazards)
            for ref in region.references
            if ref.uid == uid
            and ref.is_write
            and not labeling.is_idempotent(ref)
        )
        mutated = dict(labelings)
        mutated["R0"] = _MutatedLabeling(labeling, flipped)
        report = replay_check(program, mutated)
        assert not report.ok


# ----------------------------------------------------------------------
# Differential judgment
# ----------------------------------------------------------------------
class TestJudgment:
    def test_clean_program_checks_ok(self):
        report = check_program(parse(CLEAN_SRC))
        assert report.ok
        assert report.count("unsound") == 0
        assert report.replay_ok

    def test_production_labels_on_hazard_program_are_sound(self):
        report = check_program(parse(HAZARD_SRC))
        assert report.ok, [
            f.as_dict()
            for r in report.regions
            for f in r.findings
            if f.severity == "unsound"
        ]

    def test_known_unsound_labeling_is_flagged(self):
        program = parse(HAZARD_SRC)
        labelings = label_program(program)
        labeling = labelings["R0"]
        region = program.regions[0]
        oracle = run_trace(program)
        dyn = oracle.facts["R0"]
        hazards = sorted(dyn.cross_flow_sink_uids | dyn.rfw_violation_uids)
        flipped = next(
            uid
            for uid in hazards
            if not labeling.is_idempotent(
                next(r for r in region.references if r.uid == uid)
            )
        )
        mutated = _MutatedLabeling(labeling, flipped)
        report = check_region(mutated, program, dyn, CheckConfig())
        assert any(
            f.severity == "unsound" and f.key == flipped
            for f in report.findings
        )

    def test_known_conservative_labeling_is_not_flagged(self):
        """Degrading an idempotent label to speculative is always sound."""

        class _Conservative:
            def __init__(self, base):
                self._base = base

            def __getattr__(self, name):
                return getattr(self._base, name)

            def is_idempotent(self, ref):
                return False

            @property
            def fully_independent(self):
                return False

        program = parse(CLEAN_SRC)
        labelings = label_program(program)
        oracle = run_trace(program)
        for region in program.regions:
            report = check_region(
                _Conservative(labelings[region.name]),
                program,
                oracle.facts.get(region.name),
                CheckConfig(),
            )
            assert report.count("unsound") == 0
            # The checker still reports the lost precision.
            assert report.count("precision") > 0

    def test_lemma7_region_reports_premise_not_rfw(self):
        """Fully independent accumulator: sound via Lemma 7, reported info."""
        program = parse(
            """
            program lemma7
            real a(8)
            real s

            init
              do t = 1, 8
                a(t) = t
              end do
              s = 0.0
            end init

            region R do i = 1, 3
              a(i) = 6.0 + a(i)
            end region

            finale
              s = s + a(2)
            end finale
            end program
            """
        )
        report = check_program(program)
        assert report.ok
        region = report.regions[0]
        assert region.count("unsound") == 0
        kinds = {f.kind for f in region.findings}
        assert "dynamic-not-reexecutable" in kinds

    def test_false_independence_claim_is_unsound(self):
        """Claiming full independence over a witnessed hazard must fail."""

        class _ClaimsIndependent:
            def __init__(self, base):
                self._base = base

            def __getattr__(self, name):
                return getattr(self._base, name)

            def is_idempotent(self, ref):
                return True

            @property
            def fully_independent(self):
                return True

        program = parse(HAZARD_SRC)
        labelings = label_program(program)
        oracle = run_trace(program)
        report = check_region(
            _ClaimsIndependent(labelings["R0"]),
            program,
            oracle.facts["R0"],
            CheckConfig(),
        )
        assert any(
            f.kind == "dynamic-independence-violation"
            and f.severity == "unsound"
            for f in report.findings
        )

    def test_mutation_check_catches_every_mutant(self):
        report = mutation_check(parse(HAZARD_SRC))
        assert report.mutants > 0
        assert report.ok, report.missed


# ----------------------------------------------------------------------
# Program generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_deterministic_per_seed_and_index(self):
        assert generate_source(7, 3) == generate_source(7, 3)
        assert generate_source(7, 3) != generate_source(7, 4)
        assert generate_source(7, 3) != generate_source(8, 3)

    def test_generated_programs_parse_and_execute(self):
        from repro.runtime.interpreter import run_program

        for _index, program in corpus(5, seed=1234):
            run_program(program, use_replay=False, model_latency=False)

    def test_generated_programs_pass_the_checker(self):
        for index in range(3):
            report = check_program(generate_program(4321, index))
            assert report.ok, report.as_dict()


# ----------------------------------------------------------------------
# IR lint
# ----------------------------------------------------------------------
class TestLint:
    def test_constant_out_of_bounds_subscript_is_an_error(self):
        program = parse(
            """
            program oob
            real a(4)
            real s
            init
              s = 0.0
            end init
            region R do i = 1, 2
              s = s + a(9)
            end region
            finale
              s = s + a(1)
            end finale
            end program
            """
        )
        issues = validate_program(program, strict=False)
        assert any(
            issue.severity == "error" and "extent" in issue.message.lower()
            for issue in issues
        )

    def test_zero_trip_loop_is_a_warning(self):
        program = parse(
            """
            program zerotrip
            real a(4)
            real s
            init
              s = 0.0
            end init
            region R do i = 1, 2
              do t = 3, 1
                a(t) = s
              end do
              s = s + 1.0
            end region
            finale
              s = s + a(1)
            end finale
            end program
            """
        )
        issues = validate_program(program, strict=False)
        assert any(
            issue.severity == "warning" and "trip" in issue.message.lower()
            for issue in issues
        )

    def test_non_affine_subscript_is_reported_info(self):
        program = parse(
            """
            program nonaffine
            real a(8)
            integer idx(8)
            real s
            init
              do t = 1, 8
                idx(t) = t
              end do
              s = 0.0
            end init
            region R do i = 1, 2
              s = s + a(idx(i))
            end region
            finale
              s = s + a(1)
            end finale
            end program
            """
        )
        issues = validate_program(program, strict=False)
        assert any(
            issue.severity == "info" and "affine" in issue.message.lower()
            for issue in issues
        )

    def test_clean_program_has_no_lint_errors(self):
        issues = validate_program(parse(CLEAN_SRC), strict=False)
        assert not [i for i in issues if i.severity == "error"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_fuzz_batch_exits_zero(self, tmp_path, capsys):
        from repro.check.__main__ import main

        out = tmp_path / "report.json"
        code = main(["--fuzz", "3", "--seed", "99", "--out", str(out)])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "OK" in captured.out

    def test_nothing_to_do_is_an_error(self):
        from repro.check.__main__ import main

        with pytest.raises(SystemExit):
            main([])
