"""Regions (Definition 1).

A region has a single entry and a single exit and is partitioned into
segments.  Regions execute sequentially with respect to each other;
segments of one region may execute speculatively in parallel.

Two region flavours are provided:

:class:`LoopRegion`
    The region is a counted loop and its segments are the loop
    iterations (the configuration used throughout the paper's
    evaluation: "regions are loops and segments are loop iterations",
    Section 4.2.1).  All iterations share one *body template*; the
    cross-segment dependences are the loop-carried dependences.

:class:`ExplicitRegion`
    The region is an explicit graph of named segments with control-flow
    edges, as in the worked examples of Figures 2 and 3.  The listing
    order of the segments defines their *age* (sequential program
    order).

On construction a region assigns statement identifiers and extracts the
memory references of every segment body (see
:mod:`repro.ir.reference`); analyses and the execution engines both work
from those references.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.ir.expr import Const, Expr, ExprLike, as_expr, const_int
from repro.ir.reference import (
    MemoryReference,
    assign_statement_ids,
    extract_references,
)
from repro.ir.segment import Segment
from repro.ir.stmt import Statement
from repro.ir.types import RegionKind

#: Name used for the exit pseudo-node of a region's segment graph.
EXIT_NODE = "<exit>"
#: Segment name used for the shared body template of a loop region.
LOOP_BODY_SEGMENT = "<iteration>"


class RegionError(Exception):
    """Raised for malformed regions."""


class Region:
    """Common interface of :class:`LoopRegion` and :class:`ExplicitRegion`."""

    kind: RegionKind

    def __init__(
        self,
        name: str,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ):
        if not name:
            raise RegionError("region needs a name")
        self.name = name
        #: Variables that are live after the region; ``None`` means
        #: "let the liveness analysis decide from program context".
        self.live_out: Optional[Set[str]] = (
            set(live_out) if live_out is not None else None
        )
        #: Front-end hint: ``True`` forces speculative execution, ``False``
        #: forces conventional parallel execution, ``None`` lets the
        #: compiler's dependence analysis decide.
        self.speculative_hint = speculative
        #: All memory references of the region (filled by subclasses).
        self.references: List[MemoryReference] = []

    # -- queries used uniformly by analyses ------------------------------
    def segment_names(self) -> List[str]:
        """Names of the region's segments in age order."""
        raise NotImplementedError

    def segment_body(self, segment: str) -> List[Statement]:
        """The statement list of ``segment``."""
        raise NotImplementedError

    def segment_references(self, segment: str) -> List[MemoryReference]:
        """The references of ``segment`` in program order."""
        raise NotImplementedError

    def segment_edges(self) -> Dict[str, List[str]]:
        """Control-flow successors per segment (``EXIT_NODE`` for the exit)."""
        raise NotImplementedError

    def variables(self) -> Set[str]:
        """All memory variables referenced in the region."""
        return {r.variable for r in self.references}

    def references_of(self, variable: str) -> List[MemoryReference]:
        """All references to ``variable`` in program order."""
        return [r for r in self.references if r.variable == variable]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class LoopRegion(Region):
    """A counted loop whose iterations are the speculative segments."""

    kind = RegionKind.LOOP

    def __init__(
        self,
        name: str,
        index: str,
        lower: ExprLike,
        upper: ExprLike,
        body: Sequence[Statement],
        step: ExprLike = 1,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ):
        super().__init__(name, live_out=live_out, speculative=speculative)
        if not index:
            raise RegionError(f"loop region {name!r} needs an index variable")
        self.index = index
        self.lower: Expr = as_expr(lower)
        self.upper: Expr = as_expr(upper)
        self.step: Expr = as_expr(step)
        if isinstance(self.step, Const) and self.step.value == 0:
            raise RegionError(f"loop region {name!r} has zero step")
        self.body: List[Statement] = list(body)
        if not self.body:
            raise RegionError(f"loop region {name!r} has an empty body")
        assign_statement_ids(self.body, prefix=f"{name}")
        self.references = extract_references(
            self.body,
            segment=LOOP_BODY_SEGMENT,
            region=name,
            uid_prefix=name,
            locals_in_scope=(index,),
        )
        #: References of the loop bound expressions themselves: they are
        #: evaluated once at region entry (non-speculatively) and are not
        #: part of any segment.
        self.bound_variables: Set[str] = (
            self.lower.variables() | self.upper.variables() | self.step.variables()
        )

    # -- uniform segment view --------------------------------------------
    def segment_names(self) -> List[str]:
        return [LOOP_BODY_SEGMENT]

    def segment_body(self, segment: str) -> List[Statement]:
        if segment != LOOP_BODY_SEGMENT:
            raise RegionError(f"loop region {self.name!r} has no segment {segment!r}")
        return self.body

    def segment_references(self, segment: str) -> List[MemoryReference]:
        if segment != LOOP_BODY_SEGMENT:
            raise RegionError(f"loop region {self.name!r} has no segment {segment!r}")
        return list(self.references)

    def segment_edges(self) -> Dict[str, List[str]]:
        # One template node: each iteration is followed either by the next
        # iteration (same template) or by the region exit.
        return {LOOP_BODY_SEGMENT: [LOOP_BODY_SEGMENT, EXIT_NODE]}

    def constant_trip_count(self) -> Optional[int]:
        """Trip count when bounds are constants, else ``None``."""
        lo = const_int(self.lower)
        hi = const_int(self.upper)
        st = const_int(self.step)
        if lo is None or hi is None or st is None:
            return None
        if st == 0:
            return 0
        return max(0, (hi - lo) // st + 1)


class ExplicitRegion(Region):
    """A region given as an explicit segment control-flow graph."""

    kind = RegionKind.EXPLICIT

    def __init__(
        self,
        name: str,
        segments: Sequence[Segment],
        edges: Optional[Dict[str, Sequence[str]]] = None,
        entry: Optional[str] = None,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ):
        super().__init__(name, live_out=live_out, speculative=speculative)
        if not segments:
            raise RegionError(f"explicit region {name!r} needs segments")
        self.segments: List[Segment] = list(segments)
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise RegionError(f"duplicate segment names in region {name!r}: {names}")
        self._by_name: Dict[str, Segment] = {s.name: s for s in self.segments}
        self.entry: str = entry if entry is not None else names[0]
        if self.entry not in self._by_name:
            raise RegionError(f"entry segment {self.entry!r} not in region {name!r}")

        # Edges: default is the linear chain in age order.
        if edges is None:
            edges = {
                names[i]: [names[i + 1]] for i in range(len(names) - 1)
            }
        self.edges: Dict[str, List[str]] = {}
        for seg in names:
            succs = list(edges.get(seg, []))
            for succ in succs:
                if succ != EXIT_NODE and succ not in self._by_name:
                    raise RegionError(
                        f"edge {seg}->{succ} references unknown segment in {name!r}"
                    )
            self.edges[seg] = succs
        # Segments without successors fall through to the region exit.
        for seg in names:
            if not self.edges[seg]:
                self.edges[seg] = [EXIT_NODE]
        for seg in self.segments:
            if len(self.edges[seg.name]) > 1 and seg.branch is None:
                # A default prediction order still exists (first successor);
                # the branch expression is optional but recommended.
                pass

        # Assign statement ids and extract references per segment.
        self.references = []
        for seg in self.segments:
            assign_statement_ids(seg.body, prefix=f"{name}.{seg.name}")
            seg.references = extract_references(
                seg.body,
                segment=seg.name,
                region=name,
                uid_prefix=f"{name}.{seg.name}",
            )
            if seg.branch is not None:
                # Branch condition reads are control reads of the segment.
                from repro.ir.reference import _ExtractionContext, _emit_expr_reads

                ctx = _ExtractionContext(
                    segment=seg.name,
                    region=name,
                    uid_prefix=f"{name}.{seg.name}.branch",
                )
                ctx.order = len(seg.references)
                branch_stmt = seg.body[-1] if seg.body else None
                if branch_stmt is not None:
                    refs = _emit_expr_reads(
                        ctx, seg.branch, branch_stmt, conditional=False, is_control=True
                    )
                    seg.references.extend(refs)
            self.references.extend(seg.references)

    # -- uniform segment view --------------------------------------------
    def segment(self, name: str) -> Segment:
        try:
            return self._by_name[name]
        except KeyError:
            raise RegionError(
                f"region {self.name!r} has no segment {name!r}"
            ) from None

    def segment_names(self) -> List[str]:
        return [s.name for s in self.segments]

    def segment_body(self, segment: str) -> List[Statement]:
        return self.segment(segment).body

    def segment_references(self, segment: str) -> List[MemoryReference]:
        return list(self.segment(segment).references or [])

    def segment_edges(self) -> Dict[str, List[str]]:
        return {k: list(v) for k, v in self.edges.items()}

    def age_of(self, segment: str) -> int:
        """Position of ``segment`` in sequential program order (0 = oldest)."""
        for i, seg in enumerate(self.segments):
            if seg.name == segment:
                return i
        raise RegionError(f"region {self.name!r} has no segment {segment!r}")

    def ancestors_of(self, segment: str) -> List[str]:
        """Names of all segments older than ``segment`` (Definition 1)."""
        age = self.age_of(segment)
        return [s.name for s in self.segments[:age]]
