"""Structural validation of programs.

The validator catches the mistakes that otherwise surface as confusing
failures deep inside analyses or the execution engines:

* references to undeclared variables,
* subscript-count mismatches against the declared array rank,
* scalars used with subscripts / arrays used without,
* malformed segment graphs (unreachable segments, missing branch
  expressions on multi-successor segments, edges to unknown segments),
* empty regions.

A lint layer catches mistakes that are structurally legal but almost
certainly unintended:

* constant subscripts outside the declared array extent (*error* --
  execution would raise an address error),
* statically unreachable statements: branches of a constant ``IF``
  condition and bodies of zero-trip loops (*warning*),
* non-affine subscript expressions, which defeat every subscript test
  and force worst-case dependence assumptions (*info*).

Validation returns a list of :class:`ValidationIssue`; callers decide
whether warnings are fatal.  :func:`validate_program` with
``strict=True`` raises on any *error*-severity issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.ir.expr import BinOp, Call, Const, Expr, Index, UnaryOp, Var
from repro.ir.program import Program
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion, Region
from repro.ir.reference import MemoryReference
from repro.ir.stmt import Assign, Do, If, Statement


class ValidationError(Exception):
    """Raised by :func:`validate_program` in strict mode."""


@dataclass(frozen=True)
class ValidationIssue:
    """One finding of the validator."""

    severity: str  # "error" | "warning" | "info"
    location: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.location}: {self.message}"


def _check_reference(
    program: Program, ref: MemoryReference, issues: List[ValidationIssue]
) -> None:
    symbol = program.symbols.get(ref.variable)
    location = ref.uid
    if symbol is None:
        issues.append(
            ValidationIssue(
                "error", location, f"undeclared variable {ref.variable!r}"
            )
        )
        return
    if symbol.is_array and not ref.subscripts:
        issues.append(
            ValidationIssue(
                "error",
                location,
                f"array {ref.variable!r} referenced without subscripts",
            )
        )
    if not symbol.is_array and ref.subscripts:
        issues.append(
            ValidationIssue(
                "error",
                location,
                f"scalar {ref.variable!r} referenced with subscripts",
            )
        )
    if symbol.is_array and ref.subscripts and len(ref.subscripts) != symbol.rank:
        issues.append(
            ValidationIssue(
                "error",
                location,
                f"{ref.variable!r} has rank {symbol.rank} but "
                f"{len(ref.subscripts)} subscripts were given",
            )
        )
        return
    if symbol.is_array and ref.subscripts:
        for dim, (sub, extent) in enumerate(
            zip(ref.subscripts, symbol.shape), start=1
        ):
            if isinstance(sub, Const):
                value = int(sub.value)
                if not 1 <= value <= extent:
                    issues.append(
                        ValidationIssue(
                            "error",
                            location,
                            f"constant subscript {value} of "
                            f"{ref.variable!r} dimension {dim} is outside "
                            f"the declared extent 1..{extent}",
                        )
                    )
            elif not _is_affine(sub):
                issues.append(
                    ValidationIssue(
                        "info",
                        location,
                        f"non-affine subscript in dimension {dim} of "
                        f"{ref.variable!r}; subscript tests degrade to "
                        "worst-case dependence assumptions",
                    )
                )


def _is_affine(expr: Expr) -> bool:
    """True when ``expr`` is a sum of constants and scaled variables."""
    if isinstance(expr, (Const, Var)):
        return True
    if isinstance(expr, UnaryOp):
        return expr.op == "-" and _is_affine(expr.operand)
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            return _is_affine(expr.left) and _is_affine(expr.right)
        if expr.op == "*":
            return (
                isinstance(expr.left, Const)
                and _is_affine(expr.right)
                or isinstance(expr.right, Const)
                and _is_affine(expr.left)
            )
        return False
    if isinstance(expr, (Index, Call)):
        return False
    return False


def _lint_body(
    location: str, body: Sequence[Statement], issues: List[ValidationIssue]
) -> None:
    """Flag statically unreachable statements inside ``body``."""
    for stmt in body:
        tag = f"{location}:{stmt.sid}" if stmt.sid else location
        if isinstance(stmt, If):
            if isinstance(stmt.cond, Const):
                taken = bool(stmt.cond.value)
                dead = "else" if taken else "then"
                if taken and not stmt.else_body:
                    pass  # no dead arm to report
                else:
                    issues.append(
                        ValidationIssue(
                            "warning",
                            tag,
                            f"IF condition is constant; the {dead} branch "
                            "is unreachable",
                        )
                    )
            _lint_body(location, stmt.then_body, issues)
            _lint_body(location, stmt.else_body, issues)
        elif isinstance(stmt, Do):
            if stmt.constant_trip_count() == 0:
                issues.append(
                    ValidationIssue(
                        "warning",
                        tag,
                        "loop has a constant zero trip count; its body "
                        "is unreachable",
                    )
                )
            _lint_body(location, stmt.body, issues)
        elif isinstance(stmt, Assign):
            if isinstance(stmt.guard, Const):
                issues.append(
                    ValidationIssue(
                        "warning",
                        tag,
                        "assignment guard is constant"
                        + (
                            ""
                            if bool(stmt.guard.value)
                            else "; the assignment is unreachable"
                        ),
                    )
                )


def _check_explicit_region(
    region: ExplicitRegion, issues: List[ValidationIssue]
) -> None:
    names = set(region.segment_names())
    # Reachability from the entry.
    reachable = set()
    stack = [region.entry]
    while stack:
        node = stack.pop()
        if node in reachable or node == EXIT_NODE:
            continue
        reachable.add(node)
        stack.extend(region.edges.get(node, []))
    unreachable = names - reachable
    for seg in sorted(unreachable):
        issues.append(
            ValidationIssue(
                "warning",
                f"{region.name}.{seg}",
                "segment is unreachable from the region entry",
            )
        )
    # Multi-successor segments should carry a branch expression.
    for seg in region.segments:
        succs = region.edges.get(seg.name, [])
        if len(succs) > 1 and seg.branch is None:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"{region.name}.{seg.name}",
                    f"{len(succs)} successors but no branch expression; "
                    "the first successor will always be taken",
                )
            )
        if len(succs) > 2 and seg.branch is not None:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"{region.name}.{seg.name}",
                    "branch expressions select between at most two successors",
                )
            )


def _check_loop_region(region: LoopRegion, issues: List[ValidationIssue]) -> None:
    trip = region.constant_trip_count()
    if trip == 0:
        issues.append(
            ValidationIssue(
                "warning", region.name, "loop region has a constant zero trip count"
            )
        )


def validate_region(program: Program, region: Region) -> List[ValidationIssue]:
    """Validate one region inside ``program``."""
    issues: List[ValidationIssue] = []
    for ref in region.references:
        _check_reference(program, ref, issues)
    if isinstance(region, ExplicitRegion):
        _check_explicit_region(region, issues)
        for name in region.segment_names():
            _lint_body(
                f"{region.name}.{name}", region.segment_body(name), issues
            )
    elif isinstance(region, LoopRegion):
        _check_loop_region(region, issues)
        _lint_body(region.name, region.body, issues)
    return issues


def validate_program(program: Program, strict: bool = False) -> List[ValidationIssue]:
    """Validate the whole program.

    With ``strict=True`` raise :class:`ValidationError` listing all
    error-severity findings (warnings never raise).
    """
    issues: List[ValidationIssue] = []
    for ref in program.init_references + program.finale_references:
        _check_reference(program, ref, issues)
    _lint_body(f"{program.name}.init", program.init, issues)
    _lint_body(f"{program.name}.finale", program.finale, issues)
    for region in program.regions:
        issues.extend(validate_region(program, region))
    if strict:
        errors = [i for i in issues if i.severity == "error"]
        if errors:
            detail = "\n".join(str(e) for e in errors)
            raise ValidationError(
                f"program {program.name!r} failed validation:\n{detail}"
            )
    return issues
