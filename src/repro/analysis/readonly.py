"""Read-only and written-variable classification.

A variable is *read-only in a region* when the region contains at least
one reference to it and no write reference.  Read-only references are
never the sink of any data dependence, which is why Algorithm 2 labels
them idempotent directly (they form the largest idempotency category in
the paper's Figure 5).
"""

from __future__ import annotations

from typing import Set

from repro.ir.region import Region
from repro.ir.types import AccessType


def written_variables(region: Region) -> Set[str]:
    """Variables written by at least one reference in ``region``."""
    return {
        ref.variable for ref in region.references if ref.access is AccessType.WRITE
    }


def read_variables(region: Region) -> Set[str]:
    """Variables read by at least one reference in ``region``."""
    return {
        ref.variable for ref in region.references if ref.access is AccessType.READ
    }


def read_only_variables(region: Region) -> Set[str]:
    """Variables referenced in ``region`` that are never written there.

    Variables read only in loop-bound expressions of the region header do
    not count (they are evaluated once, outside any segment).
    """
    return read_variables(region) - written_variables(region)
