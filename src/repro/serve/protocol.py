"""Line-delimited JSON-RPC 2.0 framing of the serve daemon.

One request or response per line, UTF-8, ``\\n``-terminated, no
embedded newlines (``json.dumps`` never emits raw newlines).  The
envelope follows JSON-RPC 2.0: requests carry ``jsonrpc``/``method``/
``params``/``id``; a request without an ``id`` is a notification and
gets no response.  Responses carry either ``result`` or ``error``
(``{"code", "message", "data"?}``), never both.

Error codes are the standard JSON-RPC set plus one extension:

========================  =======  =====================================
name                      code     meaning
========================  =======  =====================================
``PARSE_ERROR``           -32700   line is not valid JSON
``INVALID_REQUEST``       -32600   JSON but not a JSON-RPC 2.0 request
``METHOD_NOT_FOUND``      -32601   unknown method
``INVALID_PARAMS``        -32602   bad program payload / parameters
``INTERNAL_ERROR``        -32603   handler raised unexpectedly
``OVERLOADED``            -32029   worker pool saturated (429 analogue;
                                   ``data.max_inflight`` tells the
                                   client the pool bound -- back off
                                   and retry)
========================  =======  =====================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
#: Backpressure rejection -- the JSON-RPC analogue of HTTP 429.
OVERLOADED = -32029

JSONRPC_VERSION = "2.0"


class ProtocolError(Exception):
    """A request-level failure that maps to one JSON-RPC error envelope."""

    def __init__(self, code: int, message: str, data: Any = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data


@dataclass
class Request:
    """One parsed JSON-RPC request line."""

    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    id: Optional[Any] = None

    @property
    def notification(self) -> bool:
        """True for id-less requests (fire-and-forget, no response)."""
        return self.id is None


def parse_request(line: str) -> Request:
    """Parse one wire line into a :class:`Request`.

    Raises :class:`ProtocolError` with ``PARSE_ERROR`` on malformed
    JSON and ``INVALID_REQUEST`` on a well-formed line that is not a
    JSON-RPC 2.0 request object.
    """
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(PARSE_ERROR, f"parse error: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            INVALID_REQUEST, "request must be a JSON object"
        )
    if payload.get("jsonrpc") != JSONRPC_VERSION:
        raise ProtocolError(
            INVALID_REQUEST,
            'request needs "jsonrpc": "2.0"',
            data={"got": payload.get("jsonrpc")},
        )
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(INVALID_REQUEST, "request needs a string 'method'")
    params = payload.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError(
            INVALID_REQUEST, "'params' must be an object when present"
        )
    req_id = payload.get("id")
    if req_id is not None and not isinstance(req_id, (str, int, float)):
        raise ProtocolError(INVALID_REQUEST, "'id' must be a string or number")
    return Request(method=method, params=params, id=req_id)


def ok_response(request_id: Any, result: Any) -> Dict[str, Any]:
    """A success envelope."""
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "result": result}


def error_response(
    request_id: Any, code: int, message: str, data: Any = None
) -> Dict[str, Any]:
    """An error envelope (``id`` is ``None`` when the request had none)."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"jsonrpc": JSONRPC_VERSION, "id": request_id, "error": error}


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One response as a compact UTF-8 wire line (newline-terminated)."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=False) + "\n"
    ).encode("utf-8")
