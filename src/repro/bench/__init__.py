"""Benchmark subsystem.

* :mod:`repro.bench.workloads` -- parameterized synthetic loop-nest
  families (stencil, reduction, sparse-indirection, guarded-update).
* :mod:`repro.bench.harness` -- throughput measurement: analysis
  references/s and simulation memory-ops/s, fast path vs baseline.
* ``python -m repro.bench`` -- CLI entry point writing
  ``BENCH_results.json`` (see :mod:`repro.bench.__main__`).
"""

from repro.bench.harness import FamilyResult, Measurement, geometric_mean, measure_family
from repro.bench.workloads import (
    DEFAULT_SIZES,
    DEFAULT_STATEMENTS,
    FAMILIES,
    Workload,
    generate,
    generate_suite,
)

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_STATEMENTS",
    "FAMILIES",
    "FamilyResult",
    "Measurement",
    "Workload",
    "generate",
    "generate_suite",
    "geometric_mean",
    "measure_family",
]
