"""Command-line driver of the differential label-soundness checker.

Examples::

    # Gate the four benchmark workload families.
    python -m repro.check --families

    # Differentially check 500 seeded generated programs.
    python -m repro.check --fuzz 500 --seed 20260807

    # Self-test: injected mislabelings must all be caught.
    python -m repro.check --families --mutation

    # Everything CI runs, with the report artifact.
    python -m repro.check --families --fuzz 500 --seed 20260807 \
        --mutation --out CHECK_report.json

    # Trace the checker stages (lint / label / oracle / region /
    # replay spans) into a Perfetto-loadable timeline.
    python -m repro.check --families --trace

Exit status is 1 when any unsound label, replay divergence, checker
error, or missed mutation is found, 0 otherwise.  ``suspect`` /
``precision`` findings are reported but do not gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.checker import CheckConfig, check_program, mutation_check
from repro.bench.workloads import FAMILIES, generate_suite
from repro.corpus import generate_program
from repro.obs.export import ChromeTraceBuilder
from repro.obs.log import configure_logging, get_logger
from repro.obs.tracer import TRACER

SEVERITIES = ("unsound", "suspect", "precision", "info")

LOG = get_logger("check")


def _empty_totals() -> Dict[str, int]:
    totals = {s: 0 for s in SEVERITIES}
    totals.update(
        programs=0,
        failed_programs=0,
        regions=0,
        references=0,
        idempotent_labels=0,
        production_conservative=0,
        dynamically_clean_speculative=0,
        replay_failures=0,
        errors=0,
    )
    return totals


def _accumulate(totals: Dict[str, int], report) -> None:
    totals["programs"] += 1
    if not report.ok:
        totals["failed_programs"] += 1
    if not report.replay_ok:
        totals["replay_failures"] += 1
    totals["errors"] += len(report.errors)
    for severity in SEVERITIES:
        totals[severity] += report.count(severity)
    for region in report.regions:
        totals["regions"] += 1
        totals["references"] += region.references
        totals["idempotent_labels"] += region.idempotent_labels
        totals["production_conservative"] += region.production_conservative
        totals["dynamically_clean_speculative"] += (
            region.dynamically_clean_speculative
        )


def _precision_percent(totals: Dict[str, int]) -> Optional[float]:
    labelled = totals["idempotent_labels"]
    conservative = totals["production_conservative"]
    denominator = labelled + conservative
    if denominator == 0:
        return None
    return round(100.0 * labelled / denominator, 2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Differential label-soundness checker.",
    )
    parser.add_argument(
        "--families",
        action="store_true",
        help="check the benchmark workload families",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="N",
        help="check N seeded generated programs",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="corpus seed (default 1)"
    )
    parser.add_argument(
        "--mutation",
        action="store_true",
        help="also flip hazardous labels and require every mutant caught",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the squash-replay simulation (static + trace only)",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the JSON report to PATH"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every finding"
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="CHECK_trace.json",
        default=None,
        metavar="PATH",
        help="arm the span tracer and write the checker-stage timeline "
        "as Chrome-trace (Perfetto) JSON (default PATH: CHECK_trace.json)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational log output (warnings still shown)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log output as JSON lines instead of human text",
    )
    args = parser.parse_args(argv)
    configure_logging(quiet=args.quiet, json_lines=args.log_json)

    if not args.families and args.fuzz <= 0:
        parser.error("nothing to do: pass --families and/or --fuzz N")

    if args.trace:
        TRACER.reset()
        TRACER.enable()

    config = CheckConfig(replay=not args.no_replay)
    started = time.time()
    totals = _empty_totals()
    programs_out: List[Dict] = []
    failures: List[str] = []
    mutation_out: List[Dict] = []

    def run_one(label: str, program) -> None:
        report = check_program(program, config)
        _accumulate(totals, report)
        payload = report.as_dict()
        payload["source"] = label
        # The full per-program payload only for interesting programs;
        # the report stays readable at fuzz scale.
        interesting = (
            not report.ok
            or report.count("suspect") > 0
            or report.count("precision") > 0
        )
        if interesting:
            programs_out.append(payload)
        if not report.ok:
            failures.append(label)
        if args.verbose or not report.ok:
            for region in report.regions:
                for finding in region.findings:
                    emit = (
                        LOG.warning
                        if finding.severity == "unsound"
                        else LOG.info
                    )
                    emit(
                        f"[{finding.severity}] {label} {finding.region} "
                        f"{finding.kind} {finding.key}: {finding.message}"
                    )
            for mismatch in report.replay_mismatches:
                LOG.error(f"[unsound] {label} replay: {mismatch}")
            for error in report.errors:
                LOG.error(f"{label}: {error}")
        if args.mutation:
            mutation = mutation_check(program, config)
            mutation_out.append(
                {"source": label, **mutation.as_dict()}
            )
            if not mutation.ok:
                failures.append(f"{label} (mutation escaped)")
                for missed in mutation.missed:
                    LOG.error(f"[mutation-missed] {label}: {missed}")

    if args.families:
        for workload in generate_suite():
            run_one(f"family:{workload.family}", workload.program)
    for index in range(args.fuzz):
        label = f"fuzz:{args.seed}/{index}"
        try:
            program = generate_program(args.seed, index)
        except Exception as exc:  # noqa: BLE001 - generator bug = failure
            failures.append(label)
            totals["errors"] += 1
            LOG.error(f"{label}: generation failed: {exc}")
            continue
        run_one(label, program)

    mutants = sum(m["mutants"] for m in mutation_out)
    caught = sum(m["caught"] for m in mutation_out)
    summary = {
        "command": {
            "families": list(FAMILIES) if args.families else [],
            "fuzz": args.fuzz,
            "seed": args.seed,
            "mutation": args.mutation,
            "replay": not args.no_replay,
        },
        "totals": totals,
        "precision_percent": _precision_percent(totals),
        "mutation": {"mutants": mutants, "caught": caught},
        "failures": failures,
        "elapsed_seconds": round(time.time() - started, 2),
    }
    report = {
        "summary": summary,
        "programs": programs_out,
        "mutation_details": [m for m in mutation_out if not m["ok"]],
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        LOG.info(f"report written to {args.out}")

    if args.trace:
        builder = ChromeTraceBuilder()
        builder.add_spans(
            TRACER.finished_spans(), TRACER.events(), process="checker"
        )
        builder.write(
            args.trace,
            meta={"source": "python -m repro.check", "seed": args.seed},
        )
        LOG.info(
            f"wrote {args.trace} "
            f"(open at https://ui.perfetto.dev or chrome://tracing)"
        )

    ok = not failures
    LOG.info(
        f"checked {totals['programs']} programs / {totals['regions']} regions "
        f"/ {totals['references']} references: "
        f"{totals['unsound']} unsound, {totals['suspect']} suspect, "
        f"{totals['precision']} precision, "
        f"{totals['replay_failures']} replay failures"
        + (f", {caught}/{mutants} mutants caught" if args.mutation else "")
    )
    if summary["precision_percent"] is not None:
        LOG.info(
            f"label precision vs checker: {summary['precision_percent']}% "
            f"({totals['production_conservative']} provably-idempotent "
            "references left speculative)"
        )
    if ok:
        LOG.info("OK")
    else:
        LOG.error("FAILED: " + ", ".join(failures[:10]))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
