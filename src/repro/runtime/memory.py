"""Non-speculative storage: value store and cache latency model.

The paper's non-speculative storage is "the conventional memory
hierarchy".  We model it as

* a :class:`MemoryImage` -- the architectural values, addressed by
  ``(variable name, flattened element offset)``;
* a :class:`CacheLevel` / :class:`MemoryHierarchy` latency model -- a
  small per-processor L1, a shared L2, and main memory, with LRU
  replacement at cache-block granularity.  Only latencies are modelled;
  the values always come from the single shared :class:`MemoryImage`
  (the engines take care of *when* a value becomes architecturally
  visible).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.ir.symbols import Symbol, SymbolError, SymbolTable
from repro.runtime.errors import AddressError

#: A memory address: (variable name, flattened 0-based element offset).
Address = Tuple[str, int]


_MISSING = object()


class MemoryImage:
    """Architectural values of all program variables."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols
        self._values: Dict[Address, float] = {}
        #: Hot-path caches: resolved symbols and initial values by name.
        #: Symbols are immutable so entries never go stale.  Address
        #: flattening is memoized on the symbol table itself so the
        #: cache survives across memory images of the same program.
        self._symbol_cache: Dict[str, Symbol] = {}
        self._initial_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def _symbol(self, variable: str) -> Symbol:
        symbol = self._symbol_cache.get(variable)
        if symbol is None:
            symbol = self.symbols.get(variable)
            if symbol is None:
                raise AddressError(f"undeclared variable {variable!r}")
            self._symbol_cache[variable] = symbol
        return symbol

    def address_of(self, variable: str, subscripts: Sequence[int] = ()) -> Address:
        """Translate a variable + subscripts into an :data:`Address`."""
        try:
            return self.symbols.address_of(variable, tuple(subscripts))
        except SymbolError as exc:
            raise AddressError(str(exc)) from exc

    def initial_value(self, variable: str) -> float:
        value = self._initial_cache.get(variable)
        if value is None:
            value = float(self._symbol(variable).initial)
            self._initial_cache[variable] = value
        return value

    # ------------------------------------------------------------------
    def load(self, address: Address) -> float:
        """Read a value (defaults to the symbol's initial value)."""
        value = self._values.get(address, _MISSING)
        if value is not _MISSING:
            return value
        return self.initial_value(address[0])

    def store(self, address: Address, value: float) -> None:
        """Write a value."""
        self._values[address] = float(value)

    def read(self, variable: str, subscripts: Sequence[int] = ()) -> float:
        """Read by name and subscripts."""
        return self.load(self.address_of(variable, subscripts))

    def write(self, variable: str, value: float, subscripts: Sequence[int] = ()) -> None:
        """Write by name and subscripts."""
        self.store(self.address_of(variable, subscripts), value)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[Address, float]:
        """Copy of all explicitly stored values."""
        return dict(self._values)

    def copy(self) -> "MemoryImage":
        """Deep copy (symbols shared; they are immutable)."""
        clone = MemoryImage(self.symbols)
        clone._values = dict(self._values)
        return clone

    def live_values(
        self, variables: Optional[Iterable[str]] = None
    ) -> Dict[Address, float]:
        """Stored values restricted to ``variables`` (all when ``None``)."""
        if variables is None:
            return self.snapshot()
        wanted = set(variables)
        return {
            addr: value for addr, value in self._values.items() if addr[0] in wanted
        }

    def differences(
        self,
        other: "MemoryImage",
        variables: Optional[Iterable[str]] = None,
        tolerance: float = 1e-9,
    ) -> Dict[Address, Tuple[float, float]]:
        """Addresses whose values differ between ``self`` and ``other``.

        ``tolerance`` is relative; pass ``0.0`` for exact (bit-level)
        comparison -- the right setting when both executions perform
        the identical float operations, as the speculative-engine
        equivalence checks do.
        """
        wanted = set(variables) if variables is not None else None
        addresses = set(self._values) | set(other._values)
        diffs: Dict[Address, Tuple[float, float]] = {}
        for addr in addresses:
            if wanted is not None and addr[0] not in wanted:
                continue
            a, b = self.load(addr), other.load(addr)
            if a != b and not (_both_nan(a, b)) and (
                tolerance == 0.0
                or abs(a - b) > tolerance * max(1.0, abs(a), abs(b))
            ):
                diffs[addr] = (a, b)
        return diffs

    def __len__(self) -> int:
        return len(self._values)


def _both_nan(a: float, b: float) -> bool:
    return a != a and b != b


# ----------------------------------------------------------------------
# Latency model
# ----------------------------------------------------------------------
@dataclass
class CacheLevel:
    """One cache level with LRU replacement at block granularity."""

    name: str
    capacity_blocks: int
    hit_latency: int
    _blocks: "OrderedDict[Tuple[str, int], None]" = field(default_factory=OrderedDict)

    def lookup(self, block: Tuple[str, int]) -> bool:
        """True on hit; updates recency and inserts on miss."""
        hit = block in self._blocks
        if hit:
            self._blocks.move_to_end(block)
        else:
            self._blocks[block] = None
            while len(self._blocks) > self.capacity_blocks:
                self._blocks.popitem(last=False)
        return hit

    def reset(self) -> None:
        self._blocks.clear()


@dataclass
class MemoryLatencies:
    """Latency parameters of the non-speculative hierarchy (in cycles)."""

    l1_hit: int = 2
    l2_hit: int = 10
    memory: int = 40
    block_elements: int = 8
    l1_blocks: int = 256
    l2_blocks: int = 2048


class MemoryHierarchy:
    """Latency model: per-processor L1 caches over a shared L2 over memory."""

    def __init__(self, latencies: Optional[MemoryLatencies] = None, processors: int = 1):
        self.latencies = latencies or MemoryLatencies()
        self.processors = max(1, int(processors))
        self._l1 = [
            CacheLevel(
                name=f"L1[{p}]",
                capacity_blocks=self.latencies.l1_blocks,
                hit_latency=self.latencies.l1_hit,
            )
            for p in range(self.processors)
        ]
        self._l2 = CacheLevel(
            name="L2",
            capacity_blocks=self.latencies.l2_blocks,
            hit_latency=self.latencies.l2_hit,
        )
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0

    # ------------------------------------------------------------------
    def _block_of(self, address: Address) -> Tuple[str, int]:
        variable, offset = address
        return (variable, offset // max(1, self.latencies.block_elements))

    def access_latency(self, address: Address, processor: int = 0) -> int:
        """Latency of one access by ``processor`` (updates cache state)."""
        self.accesses += 1
        block = self._block_of(address)
        l1 = self._l1[processor % self.processors]
        if l1.lookup(block):
            self.l1_hits += 1
            return self.latencies.l1_hit
        if self._l2.lookup(block):
            self.l2_hits += 1
            return self.latencies.l2_hit
        return self.latencies.memory

    def reset(self) -> None:
        """Clear all cache state and counters."""
        for level in self._l1:
            level.reset()
        self._l2.reset()
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0

    def hit_rates(self) -> Dict[str, float]:
        """L1/L2 hit rates (diagnostics)."""
        if self.accesses == 0:
            return {"l1": 0.0, "l2": 0.0}
        return {
            "l1": self.l1_hits / self.accesses,
            "l2": self.l2_hits / self.accesses,
        }
