"""Timing-subsystem tests: cost model, recorder, scheduler, makespans.

The acceptance bar: attaching a recorder never perturbs engine results
(final memory stays bit-identical to the sequential interpreter), the
makespan is always finite and at least the longest single-segment
critical path (including on the overflow-stall and cyclic-explicit
fallback paths), one processor never beats the sequential baseline, and
the embarrassingly-parallel family actually speeds up -- with CASE's
labels keeping it fast at capacities that serialize HOSE.
"""

import pytest

from repro.bench.speedup import (
    check_embarrassing_speedup,
    measure_speedup_family,
)
from repro.bench.workloads import FAMILIES, generate
from repro.ir.dsl import parse_program
from repro.runtime.engines import HOSEEngine
from repro.runtime.interpreter import run_program
from repro.timing import (
    CostModel,
    TimingRecorder,
    compute_makespan,
    sequential_cycles,
    speculative_makespan,
)

COST = CostModel()


def run_with_timing(program, engine, processors, **kwargs):
    """speculative_makespan + bit-identity assertion."""
    result, makespan = speculative_makespan(
        program, engine=engine, processors=processors, cost=COST, **kwargs
    )
    sequential = run_program(program, model_latency=False)
    diffs = sequential.memory.differences(result.memory, tolerance=0.0)
    assert diffs == {}, f"{engine} with recorder diverged: {sorted(diffs)[:5]}"
    return result, makespan


def assert_consistent(makespan):
    """Breakdown invariants every schedule must satisfy."""
    assert makespan.makespan >= 0
    assert makespan.makespan >= makespan.longest_segment_cycles
    total = (
        makespan.busy_cycles
        + makespan.wasted_cycles
        + makespan.stall_cycles
        + makespan.idle_cycles
    )
    assert total == makespan.processors * makespan.makespan
    for lane in makespan.per_processor:
        assert lane["busy"] >= 0
        assert lane["wasted"] >= 0
        assert lane["stall"] >= 0
        assert lane["idle"] >= 0
        assert (
            lane["busy"] + lane["wasted"] + lane["stall"] + lane["idle"]
            == makespan.makespan
        )


# ----------------------------------------------------------------------
# Cost model.
# ----------------------------------------------------------------------
class TestCostModel:
    def test_op_cost_routes(self):
        assert COST.op_cost("compute", 5) == 5 * COST.compute_scale
        assert COST.op_cost("read", 0) == COST.memory_latency
        assert COST.op_cost("read", 0, route="speculative") == COST.specstore_latency
        assert COST.op_cost("write", 0, route="private") == COST.private_latency
        assert COST.op_cost("write", 0, route="direct") == COST.memory_latency

    def test_commit_cost_scales_with_entries(self):
        assert COST.commit_cost(0) == COST.commit_base
        assert COST.commit_cost(3) == COST.commit_base + 3 * COST.commit_per_entry

    def test_compute_cost_fn_weights_operators(self):
        from repro.ir.dsl import parse_program as parse

        program = parse(
            """
program w
  real a, b
  region R do k = 1, 2
    a = b * b
    liveout a
  end region
end program
"""
        )
        stmt = program.regions[0].body[0]
        fn = COST.compute_cost_fn()
        cost = fn(stmt, stmt.rhs)
        assert cost == 1 + COST.mul_weight
        assert fn(stmt, stmt.rhs) == cost  # memoized

    def test_compute_cost_fn_keys_per_expression(self):
        # Regression: the memo used to key by statement alone, so a
        # second, different expression priced under the same statement
        # silently got the first expression's cost.
        from repro.ir.builder import assign, var

        stmt = assign("a", var("b") * var("c"))          # cost 1 + mul
        cheap = stmt.rhs
        costly = var("b") / var("c") + var("b")          # cost 1 + div + add
        stmt.rhs = costly  # the statement owns both exprs' lifetimes
        fn = COST.compute_cost_fn()
        assert fn(stmt, cheap) == COST.expression_cost(cheap)
        assert fn(stmt, costly) == COST.expression_cost(costly)
        assert fn(stmt, cheap) != fn(stmt, costly)
        # Memoized per expression, not recomputed.
        assert fn(stmt, cheap) == COST.expression_cost(cheap)


# ----------------------------------------------------------------------
# Sequential baseline.
# ----------------------------------------------------------------------
class TestSequentialBaseline:
    def test_positive_and_deterministic(self):
        workload = generate("reduction", 10, 2)
        a = sequential_cycles(workload.program, COST)
        b = sequential_cycles(workload.program, COST)
        assert a == b > 0

    def test_memory_latency_dominates_under_expensive_memory(self):
        workload = generate("reduction", 10, 2)
        cheap = sequential_cycles(workload.program, CostModel(memory_latency=1))
        dear = sequential_cycles(workload.program, CostModel(memory_latency=50))
        assert dear > cheap


# ----------------------------------------------------------------------
# Makespans: sanity bounds.
# ----------------------------------------------------------------------
class TestMakespanBounds:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("engine", ["hose", "case"])
    def test_one_processor_window_one_never_beats_sequential(
        self, family, engine
    ):
        workload = generate(family, 12, 2)
        _, makespan = run_with_timing(
            workload.program, engine, processors=1, window=1, capacity=None
        )
        assert makespan.sequential_cycles is not None
        assert makespan.makespan >= makespan.sequential_cycles
        assert_consistent(makespan)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_breakdowns_consistent_across_processors(self, family):
        workload = generate(family, 12, 2)
        previous = None
        for processors in (1, 2, 4, 8):
            _, makespan = run_with_timing(
                workload.program,
                "hose",
                processors=processors,
                window=4,
                capacity=None,
            )
            assert_consistent(makespan)
            if previous is not None:
                # More processors never lengthen the schedule.
                assert makespan.makespan <= previous
            previous = makespan.makespan

    def test_reduction_speeds_up_on_four_processors(self):
        workload = generate("reduction", 12, 3)
        _, makespan = run_with_timing(
            workload.program, "hose", processors=4, window=4, capacity=None
        )
        assert makespan.speedup is not None
        assert makespan.speedup > 1.5
        assert makespan.makespan < makespan.sequential_cycles

    def test_recorder_does_not_change_stats_or_storage(self):
        workload = generate("stencil", 12, 2)
        plain = HOSEEngine(workload.program, window=3, capacity=4).run()
        recorder = TimingRecorder(COST)
        recorded = HOSEEngine(
            workload.program, window=3, capacity=4, recorder=recorder
        ).run()
        assert recorded.stats.violations == plain.stats.violations
        assert recorded.stats.rollbacks == plain.stats.rollbacks
        assert recorded.stats.commit_entries == plain.stats.commit_entries
        assert recorded.spec_peak_entries == plain.spec_peak_entries


# ----------------------------------------------------------------------
# Overflow-stall path under the timing model (satellite coverage).
# ----------------------------------------------------------------------
class TestOverflowStallTiming:
    def test_tiny_capacity_stalls_still_bounded_and_identical(self):
        workload = generate("stencil", 12, 3)
        result, makespan = run_with_timing(
            workload.program, "hose", processors=4, window=3, capacity=2
        )
        assert result.stats.overflow_stalls > 0
        assert result.stats.stall_rounds > 0
        assert makespan.makespan >= makespan.longest_segment_cycles
        assert_consistent(makespan)

    def test_capacity_squeeze_serializes_hose_but_not_case(self):
        # Reduction at capacity 8: every HOSE segment overflows (the
        # read access info alone exceeds the buffer) and drains only as
        # the oldest -- the run serializes.  CASE's labels route the
        # same references around speculative storage and keep scaling.
        workload = generate("reduction", 12, 3)
        hose_res, hose = run_with_timing(
            workload.program, "hose", processors=4, window=4, capacity=8
        )
        case_res, case = run_with_timing(
            workload.program, "case", processors=4, window=4, capacity=8
        )
        assert hose_res.stats.overflow_stalls > 0
        assert case_res.stats.overflow_stalls == 0
        assert hose.stall_cycles > 0
        assert case.makespan < hose.makespan
        assert case.speedup > 2.0 > hose.speedup

    def test_memory_latency_cycles_consistent_across_executors(self):
        # Both the interpreter and the engines split modelled memory
        # latency out of total cycles; without a latency model both
        # report zero.
        workload = generate("reduction", 10, 2)
        seq = run_program(workload.program)  # model_latency=True default
        assert 0 < seq.stats.memory_latency_cycles <= seq.stats.cycles
        plain = run_program(workload.program, model_latency=False)
        assert plain.stats.memory_latency_cycles == 0
        engine = HOSEEngine(
            workload.program, window=2, model_latency=True
        ).run()
        assert 0 < engine.stats.memory_latency_cycles <= engine.stats.cycles

    def test_stall_rounds_counter_only_on_overflow(self):
        workload = generate("reduction", 12, 2)
        free = HOSEEngine(workload.program, window=3, capacity=None).run()
        tight = HOSEEngine(workload.program, window=3, capacity=4).run()
        assert free.stats.stall_rounds == 0
        assert tight.stats.stall_rounds > 0


# ----------------------------------------------------------------------
# Cyclic explicit regions: the CASE fallback path, timed (satellite).
# ----------------------------------------------------------------------
CYCLIC_SRC = """
program cyc
  real s, i
  region LOOP explicit
    segment BODY
      s = s + 1.0
      i = i + 1.0
      branch (i < 6)
    end segment
    edges BODY -> BODY, <exit>
    liveout s, i
  end region
end program
"""


class TestCyclicExplicitTiming:
    @pytest.mark.parametrize("engine", ["hose", "case"])
    def test_finite_makespan_and_identity(self, engine):
        program = parse_program(CYCLIC_SRC)
        result, makespan = run_with_timing(
            program, engine, processors=2, window=3, capacity=8
        )
        assert result.stats.segments_committed == 6
        assert makespan.makespan > 0
        assert makespan.makespan >= makespan.longest_segment_cycles
        assert_consistent(makespan)

    def test_mispredicted_exit_counts_wasted_work(self):
        # First-successor prediction follows the back edge past the
        # exit, so the last in-flight segments are wrong-path discards;
        # their cycles must land in the wasted bucket.
        program = parse_program(CYCLIC_SRC)
        result, makespan = run_with_timing(
            program, "hose", processors=2, window=3, capacity=8
        )
        assert result.stats.control_mispredictions > 0
        assert makespan.wasted_cycles > 0


# ----------------------------------------------------------------------
# Recorder event-stream shape.
# ----------------------------------------------------------------------
class TestRecorderShape:
    def test_regions_and_segments_recorded_in_age_order(self):
        workload = generate("reduction", 10, 2)
        recorder = TimingRecorder(COST)
        HOSEEngine(workload.program, window=2, recorder=recorder).run()
        recording = recorder.recording()
        assert recording.engine == "hose"
        regions = recording.regions()
        assert len(regions) == 1
        ages = [seg.age for seg in regions[0].segments]
        assert ages == sorted(ages)
        trip = workload.region.constant_trip_count()
        assert len(regions[0].segments) == trip
        assert all(seg.outcome == "committed" for seg in regions[0].segments)

    def test_squashed_attempts_recorded(self):
        workload = generate("stencil", 12, 2)
        recorder = TimingRecorder(COST)
        result = HOSEEngine(
            workload.program, window=3, capacity=None, recorder=recorder
        ).run()
        assert result.stats.rollbacks > 0
        segments = recorder.recording().regions()[0].segments
        squashed = sum(
            1
            for seg in segments
            for attempt in seg.attempts
            if attempt.outcome == "squashed"
        )
        assert squashed == result.stats.rollbacks

    def test_direct_sections_capture_init_and_finale(self):
        src = """
program wrap
  real a(4), total
  init
    a(1) = 2
  end init
  region R do k = 1, 4
    a(k) = a(k) * 2
    liveout a
  end region
  finale
    total = a(1)
  end finale
end program
"""
        program = parse_program(src)
        recorder = TimingRecorder(COST)
        HOSEEngine(program, window=2, recorder=recorder).run()
        recording = recorder.recording()
        assert recording.direct_cycles() > 0
        # init section, region, finale section.
        assert len(recording.sections) == 3


# ----------------------------------------------------------------------
# The bench speedup scenario.
# ----------------------------------------------------------------------
class TestSpeedupScenario:
    def test_family_entry_shape(self):
        workload = generate("reduction", 10, 2)
        entry = measure_speedup_family(
            workload,
            processors=(1, 4),
            windows=(4,),
            capacities=(8, None),
            cost=COST,
        )
        assert entry["sequential_cycles"] > 0
        assert set(entry["configs"]) == {"w4_c8", "w4_cinf"}
        for row in entry["configs"].values():
            for side in ("hose", "case"):
                assert row[side]["matches_sequential"] is True
                assert set(row[side]["processors"]) == {"1", "4"}
                for cell in row[side]["processors"].values():
                    assert cell["makespan"] > 0
                    assert cell["speedup"] > 0
        assert entry["best_case_speedup"] > 1

    def test_check_embarrassing_speedup(self):
        workload = generate("reduction", 10, 2)
        section = {
            "families": {
                "reduction": measure_speedup_family(
                    workload,
                    processors=(4,),
                    windows=(4,),
                    capacities=(None,),
                    cost=COST,
                )
            }
        }
        assert check_embarrassing_speedup(section, processors=4) == []
        # Tamper: claim sequential was instant; the check must fail.
        section["families"]["reduction"]["sequential_cycles"] = 1
        assert check_embarrassing_speedup(section, processors=4) != []

    def test_check_refuses_to_pass_vacuously(self):
        # A run that never measured an embarrassingly-parallel family
        # must fail the check, not green-light it.
        assert check_embarrassing_speedup({"families": {}}) != []
        assert check_embarrassing_speedup({"families": {"stencil": {}}}) != []


# ----------------------------------------------------------------------
# Squash causality: restarts are gated at the violating write's time.
# ----------------------------------------------------------------------
class TestSquashCausalityGate:
    def test_restart_waits_for_the_violating_write(self):
        from repro.timing.events import (
            AttemptRecord,
            Recording,
            RegionRecording,
            SegmentRecord,
        )

        # Writer A (age 1): one attempt, 100 cycles, commits.
        # Victim B (age 2): runs 10 cycles, is squashed by A's write at
        # elapsed 80, then re-runs 200 cycles.  On two processors the
        # restart may not begin before t=80, so B finishes at 280 --
        # an ungated schedule would impossibly finish it at 220.
        zero = CostModel(
            dispatch_overhead=0,
            commit_base=0,
            commit_per_entry=0,
            squash_penalty=0,
        )
        a = SegmentRecord(key=("R", 1), age=1)
        a1 = AttemptRecord(outcome="committed")
        a1.add_run(100)
        a.attempts.append(a1)
        b = SegmentRecord(key=("R", 2), age=2)
        b1 = AttemptRecord(
            outcome="squashed",
            squashed_by=1,
            squashed_by_attempt=0,
            squashed_at_elapsed=80,
        )
        b1.add_run(10)
        b2 = AttemptRecord(outcome="committed")
        b2.add_run(200)
        b.attempts.extend([b1, b2])
        recording = Recording(
            cost=zero,
            window=4,
            engine="hose",
            sections=[RegionRecording(name="R", kind="loop", segments=[a, b])],
        )
        makespan = compute_makespan(recording, 2)
        assert makespan.makespan == 280
        victim = makespan.regions[0].segments[1]
        assert victim.stall_cycles == 70  # waited from t=10 to t=80
        assert victim.wasted_cycles == 10
        assert_consistent(makespan)

    def test_recorder_snapshots_writer_position(self):
        workload = generate("stencil", 12, 2)
        recorder = TimingRecorder(COST)
        result = HOSEEngine(
            workload.program, window=3, capacity=None, recorder=recorder
        ).run()
        assert result.stats.violations > 0
        squashed = [
            attempt
            for seg in recorder.recording().regions()[0].segments
            for attempt in seg.attempts
            if attempt.outcome == "squashed"
        ]
        assert squashed
        for attempt in squashed:
            assert attempt.squashed_by is not None
            assert attempt.squashed_by_attempt is not None


# ----------------------------------------------------------------------
# Route pricing: the storage that served the value is what is charged.
# ----------------------------------------------------------------------
class TestRoutePricing:
    def test_speculative_misses_pay_memory_latency(self):
        # Under an expensive conventional memory, a speculative read
        # that misses the buffers (cold address) must cost
        # memory_latency, not specstore_latency.
        workload = generate("reduction", 10, 2)
        cheap = CostModel(memory_latency=4, specstore_latency=4)
        dear = CostModel(memory_latency=100, specstore_latency=4)
        _, ms_cheap = speculative_makespan(
            workload.program, "hose", processors=1, window=2,
            capacity=None, cost=cheap,
        )
        _, ms_dear = speculative_makespan(
            workload.program, "hose", processors=1, window=2,
            capacity=None, cost=dear,
        )
        # Nearly every reduction read is a cold miss; if misses were
        # priced at the speculative-store latency the two makespans
        # would be almost equal.
        assert ms_dear.makespan > 3 * ms_cheap.makespan
