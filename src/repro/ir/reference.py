"""Memory references.

A :class:`MemoryReference` is one *textual* read or write of a memory
variable inside a segment: the unit the paper's analysis labels as
either ``SPECULATIVE`` or ``IDEMPOTENT`` (Definition 4) and the unit the
evaluation of Section 5 counts.

References are extracted from a segment body by
:func:`extract_references`, which

* skips reads of *induction locals* (``DO`` index variables) because the
  paper's architecture keeps loop variables non-speculative and they are
  registers, not memory;
* records the *program order* of each reference inside the segment
  (subscripts before the element they index, right-hand side before the
  left-hand-side store, textual order across statements), which fixes
  the direction of intra-segment dependences;
* records whether the reference executes *conditionally* (under an
  ``IF``, a guard, or a loop whose trip count is not provably positive),
  which the must-define / exposed-read analysis needs;
* records whether the reference sits inside an inner sequential loop,
  which the dynamic-count weighting uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import Expr
from repro.ir.stmt import Assign, Do, If, Statement, StatementError
from repro.ir.types import AccessType


@dataclass(eq=False)
class MemoryReference:
    """One textual memory reference.

    Identity is by object (and by :attr:`uid` once assigned); two
    references with identical fields are still distinct program points.
    """

    uid: str
    variable: str
    access: AccessType
    subscripts: Tuple[Expr, ...]
    stmt: Statement
    segment: str
    region: str
    order: int
    conditional: bool = False
    in_inner_loop: bool = False
    is_control: bool = False
    #: The ``Do`` statements enclosing the reference, outermost first.
    #: The affine subscript, coverage and dependence analyses read both
    #: the index names and the (constant) bounds off these statements.
    enclosing_loops: Tuple[Do, ...] = ()

    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        return self.access is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE

    @property
    def is_array(self) -> bool:
        return bool(self.subscripts)

    def subscript_text(self) -> str:
        if not self.subscripts:
            return ""
        return "(" + ", ".join(str(s) for s in self.subscripts) + ")"

    def describe(self) -> str:
        """Human-readable one-liner used by reports and error messages."""
        kind = "write" if self.is_write else "read"
        flags = []
        if self.conditional:
            flags.append("cond")
        if self.in_inner_loop:
            flags.append("inner-loop")
        if self.is_control:
            flags.append("control")
        suffix = f" [{' '.join(flags)}]" if flags else ""
        return (
            f"{self.uid}: {kind} {self.variable}{self.subscript_text()} "
            f"in {self.segment}{suffix}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Ref {self.uid} {self.access.value} {self.variable}{self.subscript_text()}>"

    def __hash__(self) -> int:
        return hash(self.uid)


@dataclass
class _ExtractionContext:
    """Book-keeping for one segment-body walk."""

    segment: str
    region: str
    uid_prefix: str
    locals_in_scope: Set[str] = field(default_factory=set)
    conditional: bool = False
    in_inner_loop: bool = False
    enclosing_loops: Tuple[Do, ...] = ()
    order: int = 0
    counter: int = 0
    out: List[MemoryReference] = field(default_factory=list)

    def next_uid(self, access: AccessType) -> str:
        tag = "w" if access is AccessType.WRITE else "r"
        uid = f"{self.uid_prefix}.{tag}{self.counter}"
        self.counter += 1
        return uid

    def next_order(self) -> int:
        order = self.order
        self.order += 1
        return order


def _emit(
    ctx: _ExtractionContext,
    variable: str,
    access: AccessType,
    subscripts: Tuple[Expr, ...],
    stmt: Statement,
    conditional: bool,
    is_control: bool = False,
) -> Optional[MemoryReference]:
    """Create one reference unless the variable is an induction local."""
    if variable in ctx.locals_in_scope:
        return None
    ref = MemoryReference(
        uid=ctx.next_uid(access),
        variable=variable,
        access=access,
        subscripts=subscripts,
        stmt=stmt,
        segment=ctx.segment,
        region=ctx.region,
        order=ctx.next_order(),
        conditional=conditional,
        in_inner_loop=ctx.in_inner_loop,
        is_control=is_control,
        enclosing_loops=ctx.enclosing_loops,
    )
    ctx.out.append(ref)
    return ref


def _emit_expr_reads(
    ctx: _ExtractionContext,
    expr: Expr,
    stmt: Statement,
    conditional: bool,
    is_control: bool = False,
) -> List[MemoryReference]:
    refs: List[MemoryReference] = []
    for occ in expr.reads():
        ref = _emit(
            ctx,
            occ.name,
            AccessType.READ,
            occ.subscripts,
            stmt,
            conditional,
            is_control=is_control,
        )
        if ref is not None:
            refs.append(ref)
    return refs


def _walk_body(ctx: _ExtractionContext, body: Sequence[Statement]) -> None:
    for stmt in body:
        if isinstance(stmt, Assign):
            _walk_assign(ctx, stmt)
        elif isinstance(stmt, If):
            _walk_if(ctx, stmt)
        elif isinstance(stmt, Do):
            _walk_do(ctx, stmt)
        else:  # pragma: no cover - defensive
            raise StatementError(f"unknown statement type {type(stmt).__name__}")


def _walk_assign(ctx: _ExtractionContext, stmt: Assign) -> None:
    stmt.control_reads = []
    stmt.reads = []
    guarded = ctx.conditional or stmt.guard is not None
    if stmt.guard is not None:
        stmt.control_reads.extend(
            _emit_expr_reads(ctx, stmt.guard, stmt, ctx.conditional, is_control=True)
        )
    stmt.reads.extend(_emit_expr_reads(ctx, stmt.rhs, stmt, guarded))
    for sub in stmt.target_subscripts:
        stmt.reads.extend(_emit_expr_reads(ctx, sub, stmt, guarded))
    if stmt.target in ctx.locals_in_scope:
        raise StatementError(
            f"assignment to induction local {stmt.target!r} is not allowed"
        )
    stmt.write = _emit(
        ctx,
        stmt.target,
        AccessType.WRITE,
        stmt.target_subscripts,
        stmt,
        guarded,
    )


def _walk_if(ctx: _ExtractionContext, stmt: If) -> None:
    stmt.control_reads = _emit_expr_reads(
        ctx, stmt.cond, stmt, ctx.conditional, is_control=True
    )
    stmt.reads = []
    stmt.write = None
    saved = ctx.conditional
    ctx.conditional = True
    _walk_body(ctx, stmt.then_body)
    _walk_body(ctx, stmt.else_body)
    ctx.conditional = saved


def _walk_do(ctx: _ExtractionContext, stmt: Do) -> None:
    stmt.control_reads = []
    stmt.reads = []
    stmt.write = None
    for bound in (stmt.lower, stmt.upper, stmt.step):
        stmt.control_reads.extend(
            _emit_expr_reads(ctx, bound, stmt, ctx.conditional, is_control=True)
        )
    trip = stmt.constant_trip_count()
    guaranteed = trip is not None and trip >= 1
    saved_cond = ctx.conditional
    saved_inner = ctx.in_inner_loop
    saved_locals = set(ctx.locals_in_scope)
    saved_loops = ctx.enclosing_loops
    ctx.conditional = ctx.conditional or not guaranteed
    ctx.in_inner_loop = True
    ctx.locals_in_scope = saved_locals | {stmt.index}
    ctx.enclosing_loops = saved_loops + (stmt,)
    _walk_body(ctx, stmt.body)
    ctx.conditional = saved_cond
    ctx.in_inner_loop = saved_inner
    ctx.locals_in_scope = saved_locals
    ctx.enclosing_loops = saved_loops


def extract_references(
    body: Sequence[Statement],
    segment: str,
    region: str,
    uid_prefix: str,
    locals_in_scope: Iterable[str] = (),
) -> List[MemoryReference]:
    """Extract all memory references of one segment body in program order.

    ``locals_in_scope`` are names treated as registers (the enclosing
    region's loop index for loop regions); reads of them produce no
    references and writes to them are rejected.

    The extracted references are also attached to their statements
    (``stmt.reads``, ``stmt.write``, ``stmt.control_reads``).
    """
    ctx = _ExtractionContext(
        segment=segment,
        region=region,
        uid_prefix=uid_prefix,
        locals_in_scope=set(locals_in_scope),
    )
    _walk_body(ctx, body)
    return ctx.out


def assign_statement_ids(
    body: Sequence[Statement], prefix: str
) -> List[Statement]:
    """Assign hierarchical statement ids (``prefix.s0``, ``prefix.s1``...)."""
    out: List[Statement] = []
    counter = 0
    for stmt in body:
        for sub in stmt.walk():
            sub.sid = f"{prefix}.s{counter}"
            counter += 1
            out.append(sub)
    return out
