"""Request dispatch: method table, program interning, per-request metrics.

One :class:`Dispatcher` is shared by every session of a daemon.  It
owns the two cross-request resources:

* the **analysis cache** -- a single thread-safe
  :class:`~repro.analysis.cache.AnalysisCache` reused by every
  ``analyze``/``label``/``simulate`` request, and
* the **program interner** -- submitted programs are keyed by their
  exact source (DSL text or canonicalized JSON IR), so re-submitting
  the same program resolves to the *same* :class:`Program` object.
  This is what makes the shared cache effective across requests: the
  cache keys by region object identity, and interning guarantees two
  requests for the same source share region objects.  The interner is
  a bounded LRU; eviction invalidates the program's cache entries so
  neither side grows without bound.

Every response result carries a ``meta`` object:
``{"elapsed_ms", "cache": {"hits", "misses"}}`` -- the wall time of
the handler and the analysis-cache delta attributable to the request.
With the :mod:`repro.obs` registry collecting (the daemon arms it at
startup), the delta is scoped by snapshotting the process-wide
``analysis.cache.hits``/``misses`` counters around the handler, and
the registry additionally accumulates ``serve.requests``,
``serve.errors`` and a ``serve.request_ms`` histogram.  Deltas are
per-process counters sampled around one handler, so concurrent
requests can bleed into each other's delta -- they are a throughput
diagnostic, not an exact attribution.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro._version import __version__
from repro.analysis.cache import AnalysisCache
from repro.idempotency.labeling import label_region
from repro.ir.builder import JsonIRError, program_from_json
from repro.ir.dsl import DSLSyntaxError, parse_program
from repro.ir.program import Program
from repro.obs.metrics import metrics_registry
from repro.runtime.engines import CASEEngine, HOSEEngine
from repro.runtime.interpreter import SequentialInterpreter
from repro.serve.protocol import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    ProtocolError,
    Request,
    error_response,
    ok_response,
)
from repro.timing.cost import DEFAULT_COST_MODEL
from repro.timing.events import TimingRecorder
from repro.timing.makespan import compute_makespan, sequential_baseline

#: Engines selectable by ``simulate`` / ``speedup_sweep``.
ENGINES = {"hose": HOSEEngine, "case": CASEEngine}

#: Default interner capacity (distinct programs held live).
DEFAULT_MAX_PROGRAMS = 64

#: Upper bound on the ``sleep`` diagnostic (seconds) so a hostile
#: client cannot park a worker for long.
MAX_SLEEP_SECONDS = 2.0


class Dispatcher:
    """Maps parsed requests to handlers over shared daemon state."""

    def __init__(
        self,
        cache: Optional[AnalysisCache] = None,
        max_programs: int = DEFAULT_MAX_PROGRAMS,
    ):
        if max_programs < 1:
            raise ValueError("max_programs must be >= 1")
        self.cache = cache if cache is not None else AnalysisCache()
        self.max_programs = max_programs
        self._programs: "OrderedDict[str, Program]" = OrderedDict()
        self._programs_lock = threading.Lock()
        self._registry = metrics_registry()
        self.started = time.time()
        self._handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            "analyze": self._analyze,
            "label": self._label,
            "simulate": self._simulate,
            "speedup_sweep": self._speedup_sweep,
            "metrics": self._metrics,
            "ping": self._ping,
            "sleep": self._sleep,
        }

    @property
    def methods(self) -> Tuple[str, ...]:
        return tuple(sorted(self._handlers))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Dict[str, Any]:
        """Run one request and return its response envelope."""
        handler = self._handlers.get(request.method)
        collecting = self._registry.collecting
        if collecting:
            self._registry.counter("serve.requests").inc()
        if handler is None:
            if collecting:
                self._registry.counter("serve.errors").inc()
            return error_response(
                request.id,
                METHOD_NOT_FOUND,
                f"unknown method {request.method!r}",
                data={"methods": list(self.methods)},
            )
        hits0, misses0 = self._cache_counters(collecting)
        t0 = time.perf_counter()
        try:
            result = handler(request.params)
        except ProtocolError as exc:
            if collecting:
                self._registry.counter("serve.errors").inc()
            return error_response(request.id, exc.code, exc.message, exc.data)
        except (JsonIRError, DSLSyntaxError, ValueError, KeyError, TypeError) as exc:
            if collecting:
                self._registry.counter("serve.errors").inc()
            return error_response(
                request.id, INVALID_PARAMS, f"invalid params: {exc}"
            )
        except Exception as exc:  # noqa: BLE001 -- the envelope is the
            # daemon's error boundary; anything else is a bug report.
            if collecting:
                self._registry.counter("serve.errors").inc()
            return error_response(
                request.id,
                INTERNAL_ERROR,
                f"internal error: {type(exc).__name__}: {exc}",
            )
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        hits1, misses1 = self._cache_counters(collecting)
        if collecting:
            self._registry.histogram("serve.request_ms").observe(elapsed_ms)
        if isinstance(result, dict):
            result["meta"] = {
                "elapsed_ms": round(elapsed_ms, 3),
                "cache": {
                    "hits": hits1 - hits0,
                    "misses": misses1 - misses0,
                },
            }
        return ok_response(request.id, result)

    def _cache_counters(self, collecting: bool) -> Tuple[int, int]:
        # Scoped through the obs registry when armed (exactly the
        # counters AnalysisCache bumps); the cache's own totals are the
        # fallback so meta stays populated in bare library use.
        if collecting:
            return (
                self._registry.counter("analysis.cache.hits").value,
                self._registry.counter("analysis.cache.misses").value,
            )
        stats = self.cache.stats()
        return stats["hits"], stats["misses"]

    # ------------------------------------------------------------------
    # program interning
    # ------------------------------------------------------------------
    def resolve_program(self, params: Dict[str, Any]) -> Program:
        """The interned :class:`Program` of ``params``.

        ``params`` must carry exactly one of ``dsl`` (source text) or
        ``program`` (JSON IR).  Identical submissions return the same
        object, which is what turns the shared analysis cache into
        cross-request warm hits.
        """
        dsl = params.get("dsl")
        ir = params.get("program")
        if (dsl is None) == (ir is None):
            raise ProtocolError(
                INVALID_PARAMS,
                "params need exactly one of 'dsl' (source text) or "
                "'program' (JSON IR)",
            )
        if dsl is not None:
            if not isinstance(dsl, str):
                raise ProtocolError(INVALID_PARAMS, "'dsl' must be a string")
            key = "dsl:" + dsl
            build: Callable[[], Program] = lambda: parse_program(dsl)
        else:
            if not isinstance(ir, dict):
                raise ProtocolError(
                    INVALID_PARAMS, "'program' must be a JSON IR object"
                )
            key = "ir:" + json.dumps(ir, sort_keys=True, separators=(",", ":"))
            build = lambda: program_from_json(ir)
        with self._programs_lock:
            program = self._programs.get(key)
            if program is not None:
                self._programs.move_to_end(key)
                return program
        # Parse outside the lock (same rationale as the analysis
        # cache: a big program must not block other sessions), then
        # first insert wins.
        program = build()
        with self._programs_lock:
            existing = self._programs.get(key)
            if existing is not None:
                self._programs.move_to_end(key)
                return existing
            self._programs[key] = program
            evicted = []
            while len(self._programs) > self.max_programs:
                _, old = self._programs.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            for region in old.regions:
                self.cache.invalidate(region)
        return program

    def interned_programs(self) -> int:
        with self._programs_lock:
            return len(self._programs)

    def _region_of(self, program: Program, params: Dict[str, Any]):
        name = params.get("region")
        if not program.regions:
            raise ProtocolError(INVALID_PARAMS, "program has no regions")
        if name is None:
            return program.regions[0]
        for region in program.regions:
            if region.name == name:
                return region
        raise ProtocolError(
            INVALID_PARAMS,
            f"no region named {name!r}",
            data={"regions": [r.name for r in program.regions]},
        )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _analyze(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Algorithm-2 labeling summary for every region of the program."""
        program = self.resolve_program(params)
        fast_path = bool(params.get("fast_path", True))
        regions = []
        for region in program.regions:
            result = label_region(
                region,
                program=program,
                fast_path=fast_path,
                cache=self.cache,
            )
            counts = {
                category.value: count
                for category, count in result.counts_by_category().items()
            }
            regions.append(
                {
                    "name": region.name,
                    "kind": type(region).__name__,
                    "references": len(region.references),
                    "fully_independent": result.fully_independent,
                    "static_fraction_idempotent": round(
                        result.static_fraction_idempotent(), 4
                    ),
                    "categories": counts,
                    "read_only_vars": sorted(result.read_only_vars),
                    "private_vars": sorted(result.private_vars),
                    "live_out": sorted(result.live_out),
                }
            )
        return {"program": program.name, "regions": regions}

    def _label(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Per-reference labels and categories of one region."""
        program = self.resolve_program(params)
        region = self._region_of(program, params)
        result = label_region(
            region,
            program=program,
            fast_path=bool(params.get("fast_path", True)),
            cache=self.cache,
        )
        labels = {}
        for ref in region.references:
            labels[ref.uid] = {
                "label": result.label_of(ref).value,
                "category": result.category_of(ref).value,
            }
        return {
            "program": program.name,
            "region": region.name,
            "fully_independent": result.fully_independent,
            "labels": labels,
        }

    def _simulate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """One engine run, checked bit-for-bit against sequential."""
        program = self.resolve_program(params)
        engine_name = params.get("engine", "case")
        engine_cls = ENGINES.get(engine_name)
        if engine_cls is None:
            raise ProtocolError(
                INVALID_PARAMS,
                f"unknown engine {engine_name!r}",
                data={"engines": sorted(ENGINES)},
            )
        window = int(params.get("window", 4))
        capacity = params.get("capacity", 64)
        if capacity is not None:
            capacity = int(capacity)
        kwargs: Dict[str, Any] = {
            "window": window,
            "capacity": capacity,
            "batch": bool(params.get("batch", True)),
        }
        if engine_cls is CASEEngine:
            kwargs["cache"] = self.cache
        result = engine_cls(program, **kwargs).run()
        sequential = SequentialInterpreter(program).run()
        bit_identical = not sequential.memory.differences(
            result.memory, tolerance=0.0
        )
        stats = result.stats
        return {
            "program": program.name,
            "engine": engine_name,
            "window": window,
            "capacity": capacity,
            "bit_identical": bit_identical,
            "degraded": result.degraded,
            "stats": {
                "reads": stats.reads,
                "writes": stats.writes,
                "violations": stats.violations,
                "rollbacks": stats.rollbacks,
                "segments_committed": stats.segments_committed,
                "overflow_stalls": stats.overflow_stalls,
                "speculative_accesses": stats.speculative_accesses,
                "idempotent_accesses": stats.idempotent_accesses,
                "private_accesses": stats.private_accesses,
            },
            "spec_peak_entries": result.spec_peak_entries,
        }

    def _speedup_sweep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """HOSE/CASE makespans and speedups across processor counts."""
        program = self.resolve_program(params)
        processors = params.get("processors", [1, 2, 4])
        if (
            not isinstance(processors, list)
            or not processors
            or not all(isinstance(p, int) and p >= 1 for p in processors)
        ):
            raise ProtocolError(
                INVALID_PARAMS, "'processors' must be a list of ints >= 1"
            )
        window = int(params.get("window", 4))
        capacity = params.get("capacity", 64)
        if capacity is not None:
            capacity = int(capacity)
        engine_names = params.get("engines", ["hose", "case"])
        unknown = [e for e in engine_names if e not in ENGINES]
        if unknown:
            raise ProtocolError(
                INVALID_PARAMS,
                f"unknown engines {unknown!r}",
                data={"engines": sorted(ENGINES)},
            )
        baseline, sequential = sequential_baseline(program, DEFAULT_COST_MODEL)
        engines: Dict[str, Any] = {}
        for name in engine_names:
            engine_cls = ENGINES[name]
            recorder = TimingRecorder(DEFAULT_COST_MODEL)
            kwargs = {
                "window": window,
                "capacity": capacity,
                "recorder": recorder,
                "batch": bool(params.get("batch", True)),
            }
            if engine_cls is CASEEngine:
                kwargs["cache"] = self.cache
            result = engine_cls(program, **kwargs).run()
            bit_identical = not sequential.memory.differences(
                result.memory, tolerance=0.0
            )
            recording = recorder.recording()
            rows = {}
            for p in processors:
                makespan = compute_makespan(
                    recording, p, sequential_cycles=baseline
                )
                speedup = makespan.speedup
                rows[str(p)] = {
                    "makespan": makespan.makespan,
                    "speedup": round(speedup, 3) if speedup else 0.0,
                }
            engines[name] = {
                "bit_identical": bit_identical,
                "processors": rows,
            }
        return {
            "program": program.name,
            "window": window,
            "capacity": capacity,
            "sequential_cycles": baseline,
            "engines": engines,
        }

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def _metrics(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Daemon-level counters: cache, interner, uptime, version."""
        return {
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started, 3),
            "cache": self.cache.stats(),
            "interned_programs": self.interned_programs(),
            "methods": list(self.methods),
        }

    def _ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    def _sleep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Occupy one worker slot for a bounded time.

        A diagnostic for exercising backpressure deterministically
        (tests saturate the pool with sleeps, then probe for the
        OVERLOADED rejection).
        """
        seconds = float(params.get("seconds", 0.1))
        seconds = max(0.0, min(seconds, MAX_SLEEP_SECONDS))
        time.sleep(seconds)
        return {"slept": seconds}
