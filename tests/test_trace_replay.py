"""Record-and-replay equivalence: identical op streams and final memory.

The acceptance bar of the trace fast path is *bit-identity* with the
coroutine interpreter: same operation stream (including the reference
tags and compute costs) per iteration, same final memory image per
program, same op-budget error behaviour.
"""

import pytest

from conftest import drive_stream
from repro.bench.workloads import FAMILIES, generate
from repro.ir.dsl import parse_program
from repro.runtime.errors import SimulationError
from repro.runtime.executor import segment_coroutine
from repro.runtime.interpreter import run_program
from repro.runtime.memory import MemoryImage
from repro.runtime.trace import (
    record_trace,
    replay_segment,
    trace_eligibility,
)


def record_for(program, region):
    memory = MemoryImage(program.symbols)
    return memory, record_trace(region, resolve=lambda n: memory.read(n, ()))


class TestEquivalenceOnBenchFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_op_streams_identical(self, family):
        workload = generate(family, 16, 4)
        region = workload.region
        assert trace_eligibility(region)[0]
        _, trace = record_for(workload.program, region)
        for value in (2, 5, 9):
            m1 = MemoryImage(workload.program.symbols)
            m2 = MemoryImage(workload.program.symbols)
            interp_ops = drive_stream(
                segment_coroutine(region.body, {region.index: value}), m1
            )
            replay_ops = drive_stream(replay_segment(trace, value), m2)
            assert interp_ops == replay_ops, family
            assert m1.snapshot() == m2.snapshot(), family

    @pytest.mark.parametrize("family", FAMILIES)
    def test_final_memory_and_stats_identical(self, family):
        workload = generate(family, 20, 4)
        base = run_program(workload.program, use_replay=False)
        fast = run_program(workload.program, use_replay=True)
        assert fast.replayed_regions[workload.region.name], family
        assert base.memory.differences(fast.memory) == {}, family
        assert base.stats.as_dict() == fast.stats.as_dict(), family
        assert base.stats.reference_counts == fast.stats.reference_counts, family


class TestScatterWrite:
    def test_scatter_write_op_order_identical(self):
        # Regression: target-subscript reads (the `idx(i)` of a scatter
        # write) must be yielded AFTER the cost ComputeOp, exactly as
        # the interpreter does — not hoisted with the rhs reads.
        src = """
program t
  real y(10), x(10) = 2.0
  integer idx(10) = 3
  region R do i = 1, 10
    y(idx(i)) = x(i) + 1.0
    liveout y
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        _, trace = record_for(program, region)
        m1 = MemoryImage(program.symbols)
        m2 = MemoryImage(program.symbols)
        interp_ops = drive_stream(
            segment_coroutine(region.body, {region.index: 4}), m1
        )
        replay_ops = drive_stream(replay_segment(trace, 4), m2)
        assert interp_ops == replay_ops
        kinds = [type(op).__name__ for op in interp_ops]
        # reads of x(i), cost compute, read of idx(i), write y(...)
        assert kinds == ["ReadOp", "ComputeOp", "ReadOp", "WriteOp"]


class TestIndexShadowing:
    def test_inner_do_shadowing_region_index(self):
        # Regression: an inner DO whose index shadows the region index
        # must replay with the inner (recorded) value, not the region
        # iteration value — innermost binding wins, as in the executor.
        src = """
program t
  real a(10)
  region R do k = 2, 10
    do k = 1, 3
      a(k) = a(k) + 1.0
    end do
    liveout a
  end region
end program
"""
        program = parse_program(src)
        base = run_program(program, use_replay=False)
        fast = run_program(program, use_replay=True)
        assert fast.replayed_regions["R"]
        assert base.memory.differences(fast.memory) == {}
        assert base.stats.as_dict() == fast.stats.as_dict()
        assert fast.value_of("a", (1,)) == 9.0  # 9 region iterations
        assert fast.value_of("a", (5,)) == 0.0


class TestBudgetParity:
    def test_budget_error_at_same_point(self):
        workload = generate("stencil", 16, 4)
        region = workload.region
        _, trace = record_for(workload.program, region)
        for budget in (1, 7, 23):
            ops_interp, err_interp = self._run(
                segment_coroutine(region.body, {region.index: 3}, op_budget=budget),
                workload,
            )
            ops_replay, err_replay = self._run(
                replay_segment(trace, 3, op_budget=budget), workload
            )
            assert ops_interp == ops_replay
            assert err_interp == err_replay

    @staticmethod
    def _run(coroutine, workload):
        memory = MemoryImage(workload.program.symbols)
        try:
            return drive_stream(coroutine, memory), None
        except SimulationError as exc:
            return None, str(exc)


class TestEligibility:
    def test_memory_dependent_guard_is_ineligible(self):
        src = """
program t
  real x(10), m(10)
  region R do i = 1, 10
    if (m(i) > 0) x(i) = 1
    liveout x
  end region
end program
"""
        region = parse_program(src).regions[0]
        eligible, reason = trace_eligibility(region)
        assert not eligible
        assert "guard" in reason

    def test_region_index_bound_is_ineligible(self):
        src = """
program t
  real x(10, 10)
  region R do i = 1, 10
    do t = 1, i
      x(t, i) = 1
    end do
    liveout x
  end region
end program
"""
        region = parse_program(src).regions[0]
        assert not trace_eligibility(region)[0]

    def test_read_only_scalar_bound_is_eligible_and_validated(self):
        src = """
program t
  integer n = 6
  real x(10)
  region R do i = 1, 10
    do t = 1, n
      x(i) = x(i) + t
    end do
    liveout x
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        assert trace_eligibility(region)[0]
        base = run_program(program, use_replay=False)
        fast = run_program(program, use_replay=True)
        assert fast.replayed_regions["R"]
        assert base.memory.differences(fast.memory) == {}
        assert base.stats.as_dict() == fast.stats.as_dict()

    def test_ineligible_region_falls_back_and_matches(self):
        src = """
program t
  real x(10), m(10)
  init
    m(3) = 1
  end init
  region R do i = 1, 10
    if (m(i) > 0) x(i) = 5
    liveout x
  end region
end program
"""
        program = parse_program(src)
        base = run_program(program, use_replay=False)
        fast = run_program(program, use_replay=True)
        assert not fast.replayed_regions["R"]
        assert base.memory.differences(fast.memory) == {}
        assert base.stats.as_dict() == fast.stats.as_dict()

    def test_replay_divergence_detected(self):
        src = """
program t
  integer n = 4
  real x(10)
  region R do i = 1, 10
    do t = 1, n
      x(i) = x(i) + t
    end do
    liveout x
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        memory = MemoryImage(program.symbols)
        trace = record_trace(region, resolve=lambda name: memory.read(name, ()))
        # Violate the read-only contract behind the trace's back.
        memory.write("n", 7.0)
        with pytest.raises(SimulationError, match="divergence"):
            drive_stream(replay_segment(trace, 1), memory)
