"""Thread-safe span tracer with a no-op fast path.

One process-wide :data:`TRACER` instance collects **spans** (named,
nested, wall-clock-timed stretches of work with attributes) and
**instant events** (zero-duration markers).  Each thread keeps its own
span stack, so concurrent sessions nest correctly; finished spans and
events land in shared lists guarded by one lock.

The tracer is *disabled by default* and every public hook starts with a
single ``enabled`` check returning a shared no-op handle, so an
uninstrumented run pays one attribute lookup per call site -- cheap
enough that the instrumented analyzer and engine fast paths stay within
the bench's <= 2% disabled-overhead budget.  Hot loops that want to skip
even that can snapshot ``TRACER if TRACER.enabled else None`` once (the
pattern the engines use, mirroring their ``recorder`` guard).

Typical use::

    from repro.obs.tracer import TRACER

    with TRACER.span("analysis.dependence", region=region.name):
        graph = analyze_dependences(region)

    TRACER.event("engine.squash", age=task.age, by=writer.age)

    @traced("bench.scenario")
    def run_scenario(...): ...
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class Span:
    """One finished (or in-flight) traced stretch of work."""

    name: str
    category: str
    span_id: int
    parent_id: Optional[int]
    thread_id: int
    thread_name: str
    start_ns: int
    end_ns: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attributes": dict(self.attributes),
        }


@dataclass
class InstantEvent:
    """A zero-duration marker (squash, commit, degradation, ...)."""

    name: str
    category: str
    thread_id: int
    timestamp_ns: int
    parent_id: Optional[int]
    attributes: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "thread_id": self.thread_id,
            "timestamp_ns": self.timestamp_ns,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
        }


class _NullSpanHandle:
    """Shared no-op handle returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpanHandle":
        return self


_NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def set(self, **attributes: Any) -> "_SpanHandle":
        """Attach attributes to the span while it is open."""
        self.span.attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self.span)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is not None:
            self.span.attributes.setdefault(
                "error", getattr(exc_type, "__name__", str(exc_type))
            )
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects spans and instant events across threads."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._events: List[InstantEvent] = []
        self._local = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans/events (thread stacks survive)."""
        with self._lock:
            self._spans.clear()
            self._events.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "app", **attributes: Any):
        """A context manager tracing one stretch of work.

        No-op (shared null handle, no allocation) while disabled.
        """
        if not self.enabled:
            return _NULL_SPAN
        thread = threading.current_thread()
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        span = Span(
            name=name,
            category=category,
            span_id=span_id,
            parent_id=self._current_id(),
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start_ns=time.perf_counter_ns(),
            attributes=dict(attributes) if attributes else {},
        )
        return _SpanHandle(self, span)

    def event(self, name: str, category: str = "app", **attributes: Any) -> None:
        """Record an instant event (no-op while disabled)."""
        if not self.enabled:
            return
        thread = threading.current_thread()
        record = InstantEvent(
            name=name,
            category=category,
            thread_id=thread.ident or 0,
            timestamp_ns=time.perf_counter_ns(),
            parent_id=self._current_id(),
            attributes=dict(attributes) if attributes else {},
        )
        with self._lock:
            self._events.append(record)

    # ------------------------------------------------------------------
    # span stack plumbing (per thread)
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        # Tolerate a mismatched exit (e.g. a span closed out of order
        # after an exception) instead of corrupting the whole stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def events(self) -> List[InstantEvent]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> Dict[str, Any]:
        """All recorded data as one JSON-ready payload."""
        with self._lock:
            spans = [s.as_dict() for s in self._spans]
            events = [e.as_dict() for e in self._events]
        return {"schema": "repro.obs.spans/v1", "spans": spans, "events": events}


#: The process-wide tracer every instrumentation site talks to.
TRACER = Tracer()


def traced(
    name: Optional[str] = None, category: str = "app"
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator tracing every call of the wrapped function as a span."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or f"{fn.__module__}.{fn.__qualname__}"

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(span_name, category=category):
                return fn(*args, **kwargs)

        wrapper.__name__ = fn.__name__
        wrapper.__qualname__ = fn.__qualname__
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    return decorate


def span_tree(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """Index finished spans by parent id (None = roots)."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.start_ns)
    return children


__all__: Tuple[str, ...] = (
    "InstantEvent",
    "Span",
    "TRACER",
    "Tracer",
    "span_tree",
    "traced",
)
