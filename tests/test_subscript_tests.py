"""Unit tests for the subscript relation tests and signatures."""


from repro.analysis.dependence.signature import (
    SignatureIndex,
    signature_of,
)
from repro.analysis.dependence.subscript_tests import (
    ALL_RELATIONS,
    AliasRelation,
    NO_ALIAS,
    SAME_ONLY,
    relation_of_reference_pair,
)
from repro.analysis.readonly import read_only_variables
from repro.ir.dsl import parse_program


def region_of(body: str, *, decls: str, header: str = "do i = 1, 10"):
    src = f"""
program t
{decls}
  region R {header}
{body}
  end region
end program
"""
    return parse_program(src).regions[0]


def refs_of(region, variable, access=None):
    out = [r for r in region.references if r.variable == variable]
    if access is not None:
        out = [r for r in out if r.access.value == access]
    return out


def relation(region, ref_a, ref_b):
    return relation_of_reference_pair(
        ref_a, ref_b, region, read_only_variables(region)
    )


class TestScalarAndRank:
    def test_scalar_references_alias_everywhere(self):
        region = region_of("    s = s + 1", decls="  real s")
        read, = refs_of(region, "s", "read")
        write, = refs_of(region, "s", "write")
        assert relation(region, read, write) == ALL_RELATIONS

    def test_same_element_same_iteration(self):
        region = region_of("    a(i) = a(i) + 1", decls="  real a(10)")
        read, = refs_of(region, "a", "read")
        write, = refs_of(region, "a", "write")
        assert relation(region, read, write) == SAME_ONLY


class TestStrongSIV:
    def test_distance_one_before(self):
        # write a(i), read a(i-1): the read in iteration i+1 touches what
        # iteration i wrote -> the write runs in the older segment.
        region = region_of("    a(i) = a(i-1) + 1", decls="  real a(11)")
        read, = refs_of(region, "a", "read")
        write, = refs_of(region, "a", "write")
        assert relation(region, write, read) == {AliasRelation.BEFORE}
        # Mirrored order gives the mirrored answer.
        assert relation(region, read, write) == {AliasRelation.AFTER}

    def test_disjoint_strides(self):
        # a(2i) vs a(2i+1): even vs odd elements never meet.
        region = region_of(
            "    a(2 * i) = a(2 * i + 1) + 1", decls="  real a(24)"
        )
        read, = refs_of(region, "a", "read")
        write, = refs_of(region, "a", "write")
        assert relation(region, write, read) == NO_ALIAS

    def test_distance_beyond_trip_count(self):
        # Distance 20 exceeds the 10-iteration trip count: no alias.
        region = region_of("    a(i) = a(i + 20) + 1", decls="  real a(40)")
        read, = refs_of(region, "a", "read")
        write, = refs_of(region, "a", "write")
        assert relation(region, write, read) == NO_ALIAS


class TestConservativeCases:
    def test_subscripted_subscript_is_may(self):
        region = region_of(
            "    a(k(i)) = a(i) + 1", decls="  real a(10)\n  integer k(10) = 1"
        )
        write, = refs_of(region, "a", "write")
        read = refs_of(region, "a", "read")[-1]
        assert relation(region, write, read) == ALL_RELATIONS

    def test_symbolic_invariant_offsets_cancel(self):
        # a(i+n) vs a(i+n): same symbolic term on both sides cancels.
        region = region_of(
            "    a(i + n) = a(i + n) + 1",
            decls="  real a(30)\n  integer n = 5",
        )
        read, = refs_of(region, "a", "read")
        write, = refs_of(region, "a", "write")
        assert relation(region, read, write) == SAME_ONLY


class TestInnerLoopRanges:
    def test_inner_loop_expansion_disjoint_columns(self):
        # Writes column j of a 2-D array; different j never collide.
        body = """    do t = 1, 4
      a(t, 2 * j) = a(t, 2 * j + 1) + 1
    end do"""
        region = region_of(
            body, decls="  real a(4, 44)", header="do j = 1, 10"
        )
        write, = refs_of(region, "a", "write")
        read, = refs_of(region, "a", "read")
        assert relation(region, write, read) == NO_ALIAS

    def test_enclosing_loops_carry_do_statements(self):
        body = """    do t = 1, 4
      a(t, j) = a(t, j) + 1
    end do"""
        region = region_of(body, decls="  real a(4, 12)", header="do j = 1, 10")
        ref = refs_of(region, "a", "write")[0]
        (do_stmt,) = ref.enclosing_loops
        assert do_stmt.index == "t"
        assert do_stmt.constant_trip_count() == 4


class TestSignatures:
    def test_equal_references_share_signature(self):
        body = """    a(i) = a(i) + 1
    a(i) = a(i) + 2"""
        region = region_of(body, decls="  real a(10)")
        invariant = read_only_variables(region)
        writes = refs_of(region, "a", "write")
        sig0 = signature_of(writes[0], region.index, invariant)
        sig1 = signature_of(writes[1], region.index, invariant)
        assert sig0 == sig1

    def test_signature_pair_matches_reference_pair(self):
        body = "    a(i) = a(i - 1) + a(i + 2)"
        region = region_of(body, decls="  real a(20)")
        invariant = read_only_variables(region)
        index = SignatureIndex(region=region, invariant_symbols=frozenset(invariant))
        refs = refs_of(region, "a")
        for ra in refs:
            for rb in refs:
                assert index.relations_of(ra, rb) == relation_of_reference_pair(
                    ra, rb, region, invariant
                )

    def test_group_count_collapses_duplicates(self):
        body = "\n".join("    a(i) = a(i - 1) + 1" for _ in range(6))
        region = region_of(body, decls="  real a(11)")
        index = SignatureIndex(
            region=region, invariant_symbols=frozenset(read_only_variables(region))
        )
        for ref in refs_of(region, "a"):
            index.group_of(ref)
        # 12 references but only two distinct signatures: a(i) and a(i-1).
        assert index.group_count() == 2
