"""Convenience builders for constructing programs in Python.

The DSL front end (:mod:`repro.ir.dsl`) is the primary way to write
workloads, but tests, examples and generators frequently assemble IR
directly; this module keeps that terse::

    from repro.ir.builder import ProgramBuilder, assign, do, if_, idx, var

    b = ProgramBuilder("demo")
    b.scalar("n", initial=64.0)
    b.array("x", (64,))
    b.init(do("i", 1, 64, [assign("x", var("i"), subscripts=["i"])]))
    b.loop_region(
        "L1", "i", 2, 63,
        body=[assign("x", idx("x", "i") + 1.0, subscripts=["i"])],
        live_out={"x"},
    )
    program = b.build()
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    ExprLike,
    Index,
    UnaryOp,
    Var,
    as_expr,
)
from repro.ir.program import Program
from repro.ir.region import ExplicitRegion, LoopRegion, Region
from repro.ir.segment import Segment
from repro.ir.stmt import Assign, Do, If, Statement
from repro.ir.symbols import SymbolTable


# ----------------------------------------------------------------------
# expression helpers (thin wrappers with operator support)
# ----------------------------------------------------------------------
class E:
    """Tiny expression-building namespace with operator overloading."""

    @staticmethod
    def const(value: Union[int, float]) -> Const:
        return Const(value)

    @staticmethod
    def var(name: str) -> Var:
        return Var(name)

    @staticmethod
    def idx(name: str, *subs: ExprLike) -> Index:
        return Index(name, [as_expr(s) for s in subs])

    @staticmethod
    def call(func: str, *args: ExprLike) -> Call:
        return Call(func, [as_expr(a) for a in args])


def var(name: str) -> Var:
    """Scalar read."""
    return Var(name)


def const(value: Union[int, float]) -> Const:
    """Literal constant."""
    return Const(value)


def idx(name: str, *subs: ExprLike) -> Index:
    """Array-element read."""
    return Index(name, [as_expr(s) for s in subs])


def call(func: str, *args: ExprLike) -> Call:
    """Intrinsic call."""
    return Call(func, [as_expr(a) for a in args])


# Operator overloading on Expr (installed here to keep expr.py free of
# syntactic sugar).
def _install_operators() -> None:
    def _bin(op: str):
        def fwd(self: Expr, other: ExprLike) -> Expr:
            return BinOp(op, self, as_expr(other))

        def rev(self: Expr, other: ExprLike) -> Expr:
            return BinOp(op, as_expr(other), self)

        return fwd, rev

    for op, (dunder, rdunder) in {
        "+": ("__add__", "__radd__"),
        "-": ("__sub__", "__rsub__"),
        "*": ("__mul__", "__rmul__"),
        "/": ("__truediv__", "__rtruediv__"),
        "%": ("__mod__", "__rmod__"),
        "**": ("__pow__", "__rpow__"),
    }.items():
        fwd, rev = _bin(op)
        setattr(Expr, dunder, fwd)
        setattr(Expr, rdunder, rev)

    def _cmp(op: str):
        def fwd(self: Expr, other: ExprLike) -> Expr:
            return BinOp(op, self, as_expr(other))

        return fwd

    setattr(Expr, "__lt__", _cmp("<"))
    setattr(Expr, "__le__", _cmp("<="))
    setattr(Expr, "__gt__", _cmp(">"))
    setattr(Expr, "__ge__", _cmp(">="))
    setattr(Expr, "__neg__", lambda self: UnaryOp("-", self))


_install_operators()


# ----------------------------------------------------------------------
# statement helpers
# ----------------------------------------------------------------------
def assign(
    target: str,
    rhs: ExprLike,
    subscripts: Sequence[ExprLike] = (),
    guard: Optional[ExprLike] = None,
) -> Assign:
    """Build an assignment statement."""
    return Assign(target, rhs, subscripts=subscripts, guard=guard)


def do(
    index: str,
    lower: ExprLike,
    upper: ExprLike,
    body: Sequence[Statement],
    step: ExprLike = 1,
) -> Do:
    """Build an inner sequential ``DO`` loop."""
    return Do(index, lower, upper, body, step=step)


def if_(
    cond: ExprLike,
    then_body: Sequence[Statement],
    else_body: Sequence[Statement] = (),
) -> If:
    """Build an ``IF``/``ELSE`` statement."""
    return If(cond, then_body, else_body)


# ----------------------------------------------------------------------
# program builder
# ----------------------------------------------------------------------
class ProgramBuilder:
    """Accumulates symbols, init code and regions, then builds a program."""

    def __init__(self, name: str):
        self.name = name
        self.symbols = SymbolTable()
        self._init: List[Statement] = []
        self._finale: List[Statement] = []
        self._regions: List[Region] = []

    # -- symbols --------------------------------------------------------
    def scalar(self, name: str, initial: float = 0.0) -> "ProgramBuilder":
        """Declare a scalar variable."""
        self.symbols.scalar(name, initial=initial)
        return self

    def array(
        self, name: str, shape: Sequence[int], initial: float = 0.0
    ) -> "ProgramBuilder":
        """Declare an array variable."""
        self.symbols.array(name, shape, initial=initial)
        return self

    # -- code sections ----------------------------------------------------
    def init(self, *statements: Statement) -> "ProgramBuilder":
        """Append statements to the sequential init section."""
        self._init.extend(statements)
        return self

    def finale(self, *statements: Statement) -> "ProgramBuilder":
        """Append statements to the sequential finale section."""
        self._finale.extend(statements)
        return self

    # -- regions ----------------------------------------------------------
    def loop_region(
        self,
        name: str,
        index: str,
        lower: ExprLike,
        upper: ExprLike,
        body: Sequence[Statement],
        step: ExprLike = 1,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ) -> LoopRegion:
        """Add a loop region (segments = iterations) and return it."""
        region = LoopRegion(
            name,
            index,
            lower,
            upper,
            body,
            step=step,
            live_out=live_out,
            speculative=speculative,
        )
        self._regions.append(region)
        return region

    def explicit_region(
        self,
        name: str,
        segments: Sequence[Union[Segment, Tuple[str, Sequence[Statement]]]],
        edges: Optional[Dict[str, Sequence[str]]] = None,
        entry: Optional[str] = None,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ) -> ExplicitRegion:
        """Add an explicit-segment region and return it.

        ``segments`` may mix :class:`Segment` objects with
        ``(name, statements)`` tuples.
        """
        segs: List[Segment] = []
        for item in segments:
            if isinstance(item, Segment):
                segs.append(item)
            else:
                seg_name, body = item
                segs.append(Segment(seg_name, body))
        region = ExplicitRegion(
            name,
            segs,
            edges=edges,
            entry=entry,
            live_out=live_out,
            speculative=speculative,
        )
        self._regions.append(region)
        return region

    def add_region(self, region: Region) -> Region:
        """Add a pre-built region."""
        self._regions.append(region)
        return region

    # -- finish -----------------------------------------------------------
    def build(self, autodeclare: bool = False) -> Program:
        """Assemble the :class:`Program`.

        With ``autodeclare=True`` any referenced but undeclared variable
        is declared as a scalar (useful for small hand-written tests).
        """
        program = Program(
            self.name,
            symbols=self.symbols,
            init=self._init,
            regions=self._regions,
            finale=self._finale,
        )
        if autodeclare:
            program.ensure_declared()
        return program


# ----------------------------------------------------------------------
# JSON IR front end (the repro.serve wire format)
# ----------------------------------------------------------------------
#: Statement/region discriminator key.
_KIND = "kind"


class JsonIRError(ValueError):
    """Raised on any malformed JSON IR payload (message names the path)."""


def _json_expr(node: Any, path: str):
    """One expression: a number literal or a DSL expression string."""
    from repro.ir.dsl import DSLSyntaxError, parse_expression

    if isinstance(node, bool):
        raise JsonIRError(f"{path}: booleans are not IR expressions")
    if isinstance(node, (int, float)):
        return Const(node)
    if isinstance(node, str):
        try:
            return parse_expression(node)
        except DSLSyntaxError as exc:
            raise JsonIRError(f"{path}: {exc}") from exc
    raise JsonIRError(
        f"{path}: expected a number or DSL expression string, "
        f"got {type(node).__name__}"
    )


def _json_stmt(node: Any, path: str) -> Statement:
    if not isinstance(node, Mapping):
        raise JsonIRError(f"{path}: statement must be an object")
    kind = node.get(_KIND, "assign" if "target" in node else None)
    if kind == "assign":
        target = node.get("target")
        if not isinstance(target, str) or not target:
            raise JsonIRError(f"{path}: assign needs a 'target' name")
        if "rhs" not in node:
            raise JsonIRError(f"{path}: assign needs an 'rhs' expression")
        subs = node.get("subscripts", [])
        if not isinstance(subs, Sequence) or isinstance(subs, str):
            raise JsonIRError(f"{path}: 'subscripts' must be a list")
        guard = node.get("guard")
        return Assign(
            target,
            _json_expr(node["rhs"], f"{path}.rhs"),
            subscripts=[
                _json_expr(s, f"{path}.subscripts[{i}]")
                for i, s in enumerate(subs)
            ],
            guard=(
                _json_expr(guard, f"{path}.guard") if guard is not None else None
            ),
        )
    if kind == "do":
        for field in ("index", "lower", "upper", "body"):
            if field not in node:
                raise JsonIRError(f"{path}: do needs {field!r}")
        return Do(
            node["index"],
            _json_expr(node["lower"], f"{path}.lower"),
            _json_expr(node["upper"], f"{path}.upper"),
            _json_body(node["body"], f"{path}.body"),
            step=_json_expr(node.get("step", 1), f"{path}.step"),
        )
    if kind == "if":
        if "cond" not in node:
            raise JsonIRError(f"{path}: if needs 'cond'")
        return If(
            _json_expr(node["cond"], f"{path}.cond"),
            _json_body(node.get("then", []), f"{path}.then"),
            _json_body(node.get("else", []), f"{path}.else"),
        )
    raise JsonIRError(
        f"{path}: unknown statement kind {kind!r} "
        f"(expected assign / do / if)"
    )


def _json_body(node: Any, path: str) -> List[Statement]:
    if not isinstance(node, Sequence) or isinstance(node, str):
        raise JsonIRError(f"{path}: statement list expected")
    return [_json_stmt(item, f"{path}[{i}]") for i, item in enumerate(node)]


def _json_names(node: Any, path: str) -> Optional[List[str]]:
    if node is None:
        return None
    if not isinstance(node, Sequence) or isinstance(node, str):
        raise JsonIRError(f"{path}: list of names expected")
    for item in node:
        if not isinstance(item, str):
            raise JsonIRError(f"{path}: list of names expected")
    return list(node)


def program_from_json(payload: Mapping) -> Program:
    """Build a :class:`Program` from the serve wire format's JSON IR.

    Schema (expressions anywhere are number literals or DSL expression
    strings, parsed with :func:`repro.ir.dsl.parse_expression`)::

        {"name": "demo",
         "symbols": {"scalars": [{"name": "s", "initial": 0.0}],
                     "arrays":  [{"name": "x", "shape": [64],
                                  "initial": 0.0}]},
         "init":    [<stmt>...],
         "regions": [{"kind": "loop", "name": "L", "index": "i",
                      "lower": 1, "upper": 64, "step": 1,
                      "body": [<stmt>...], "live_out": ["x"],
                      "speculative": true},
                     {"kind": "explicit", "name": "R",
                      "segments": [{"name": "R0", "body": [<stmt>...],
                                    "branch": "a > 0"}],
                      "edges": {"R0": ["R1"]}, "live_out": ["c"]}],
         "finale":  [<stmt>...]}

    Statements: ``{"kind": "assign", "target", "subscripts", "rhs",
    "guard"}`` (``kind`` may be omitted when ``target`` is present),
    ``{"kind": "do", "index", "lower", "upper", "step", "body"}``, and
    ``{"kind": "if", "cond", "then", "else"}``.

    Raises :class:`JsonIRError` (a ``ValueError``) naming the offending
    path on any malformed payload.
    """
    if not isinstance(payload, Mapping):
        raise JsonIRError("program payload must be an object")
    builder = ProgramBuilder(str(payload.get("name", "program")))
    symbols = payload.get("symbols", {})
    if not isinstance(symbols, Mapping):
        raise JsonIRError("symbols: object expected")
    for i, decl in enumerate(symbols.get("scalars", [])):
        if not isinstance(decl, Mapping) or "name" not in decl:
            raise JsonIRError(f"symbols.scalars[{i}]: needs a 'name'")
        builder.scalar(decl["name"], initial=float(decl.get("initial", 0.0)))
    for i, decl in enumerate(symbols.get("arrays", [])):
        if not isinstance(decl, Mapping) or "name" not in decl:
            raise JsonIRError(f"symbols.arrays[{i}]: needs a 'name'")
        shape = decl.get("shape")
        if not isinstance(shape, Sequence) or isinstance(shape, str) or not all(
            isinstance(d, int) and not isinstance(d, bool) and d > 0
            for d in shape
        ):
            raise JsonIRError(
                f"symbols.arrays[{i}].shape: list of positive ints expected"
            )
        builder.array(
            decl["name"], list(shape), initial=float(decl.get("initial", 0.0))
        )
    builder.init(*_json_body(payload.get("init", []), "init"))
    builder.finale(*_json_body(payload.get("finale", []), "finale"))
    regions = payload.get("regions", [])
    if not isinstance(regions, Sequence) or isinstance(regions, str):
        raise JsonIRError("regions: list expected")
    for i, region in enumerate(regions):
        path = f"regions[{i}]"
        if not isinstance(region, Mapping):
            raise JsonIRError(f"{path}: object expected")
        name = region.get("name")
        if not isinstance(name, str) or not name:
            raise JsonIRError(f"{path}: needs a 'name'")
        kind = region.get(_KIND, "loop")
        speculative = region.get("speculative")
        if speculative is not None and not isinstance(speculative, bool):
            raise JsonIRError(f"{path}.speculative: true/false/null expected")
        live_out = _json_names(region.get("live_out"), f"{path}.live_out")
        if kind == "loop":
            for field in ("index", "lower", "upper", "body"):
                if field not in region:
                    raise JsonIRError(f"{path}: loop region needs {field!r}")
            builder.loop_region(
                name,
                region["index"],
                _json_expr(region["lower"], f"{path}.lower"),
                _json_expr(region["upper"], f"{path}.upper"),
                _json_body(region["body"], f"{path}.body"),
                step=_json_expr(region.get("step", 1), f"{path}.step"),
                live_out=live_out,
                speculative=speculative,
            )
        elif kind == "explicit":
            segments: List[Segment] = []
            for j, seg in enumerate(region.get("segments", [])):
                seg_path = f"{path}.segments[{j}]"
                if not isinstance(seg, Mapping) or "name" not in seg:
                    raise JsonIRError(f"{seg_path}: needs a 'name'")
                branch = seg.get("branch")
                segments.append(
                    Segment(
                        seg["name"],
                        _json_body(seg.get("body", []), f"{seg_path}.body"),
                        branch=(
                            _json_expr(branch, f"{seg_path}.branch")
                            if branch is not None
                            else None
                        ),
                    )
                )
            if not segments:
                raise JsonIRError(f"{path}: explicit region needs segments")
            edges = region.get("edges")
            if edges is not None:
                if not isinstance(edges, Mapping):
                    raise JsonIRError(f"{path}.edges: object expected")
                edges = {
                    src: _json_names(dsts, f"{path}.edges[{src!r}]")
                    for src, dsts in edges.items()
                }
            builder.explicit_region(
                name,
                segments,
                edges=edges,
                entry=region.get("entry"),
                live_out=live_out,
                speculative=speculative,
            )
        else:
            raise JsonIRError(
                f"{path}: unknown region kind {kind!r} "
                f"(expected loop / explicit)"
            )
    return builder.build()
