"""Statement-level control-flow graph of one segment body.

The production analyses (:mod:`repro.analysis.access`) never build a
CFG -- they reason over the flat reference list with pairwise rectangle
coverage.  The checker instead builds the real graph:

* ``IF`` becomes a branch node with then/else chains meeting at a join
  node;
* ``DO`` becomes a header node (bound evaluation), the body chain, a
  *back-edge* node (where location descriptors depending on the loop
  index are invalidated -- the next iteration writes different
  elements) and a *loop-exit* node (where, for a fully-executed
  constant-bound unit-stride loop, index-dependent descriptors are
  widened to the loop's whole iteration range);
* a guarded assignment is a single node whose store is a may-write.

Loops whose constant trip count is >= 1 have no skip edge from header
to exit: their body lies on every path, which is what lets a must
analysis keep descriptors written inside them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.stmt import Assign, Do, If, Statement

#: Node kinds.
ENTRY = "entry"
EXIT = "exit"
ASSIGN = "assign"
BRANCH = "branch"
JOIN = "join"
LOOP_HEAD = "loop-head"
LOOP_BACK = "loop-back"
LOOP_EXIT = "loop-exit"


@dataclass
class CFGNode:
    """One node of the statement CFG."""

    nid: int
    kind: str
    stmt: Optional[Statement] = None
    #: Enclosing ``Do`` statements at this node, outermost first.
    loops: Tuple[Do, ...] = ()

    def __hash__(self) -> int:
        return self.nid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = self.stmt.sid if self.stmt is not None and self.stmt.sid else ""
        return f"<CFG#{self.nid} {self.kind} {tag}>".replace(" >", ">")


@dataclass
class StmtCFG:
    """Statement-level CFG with a unique entry and exit node."""

    nodes: List[CFGNode] = field(default_factory=list)
    succs: Dict[int, List[int]] = field(default_factory=dict)
    preds: Dict[int, List[int]] = field(default_factory=dict)
    entry: Optional[CFGNode] = None
    exit: Optional[CFGNode] = None

    # ------------------------------------------------------------------
    def new_node(
        self,
        kind: str,
        stmt: Optional[Statement] = None,
        loops: Tuple[Do, ...] = (),
    ) -> CFGNode:
        node = CFGNode(nid=len(self.nodes), kind=kind, stmt=stmt, loops=loops)
        self.nodes.append(node)
        self.succs[node.nid] = []
        self.preds[node.nid] = []
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode) -> None:
        if dst.nid not in self.succs[src.nid]:
            self.succs[src.nid].append(dst.nid)
            self.preds[dst.nid].append(src.nid)

    # -- graph callables for the dataflow solver -----------------------
    def successors(self, node: CFGNode) -> List[CFGNode]:
        return [self.nodes[i] for i in self.succs[node.nid]]

    def predecessors(self, node: CFGNode) -> List[CFGNode]:
        return [self.nodes[i] for i in self.preds[node.nid]]

    def node_count(self) -> int:
        return len(self.nodes)


# ----------------------------------------------------------------------
def build_segment_cfg(body: Sequence[Statement]) -> StmtCFG:
    """Build the CFG of one segment body."""
    cfg = StmtCFG()
    cfg.entry = cfg.new_node(ENTRY)
    tail = _build_body(cfg, body, cfg.entry, loops=())
    cfg.exit = cfg.new_node(EXIT)
    cfg.add_edge(tail, cfg.exit)
    return cfg


def _build_body(
    cfg: StmtCFG,
    body: Sequence[Statement],
    pred: CFGNode,
    loops: Tuple[Do, ...],
) -> CFGNode:
    """Chain ``body`` after ``pred``; returns the last node of the chain."""
    current = pred
    for stmt in body:
        if isinstance(stmt, Assign):
            node = cfg.new_node(ASSIGN, stmt=stmt, loops=loops)
            cfg.add_edge(current, node)
            current = node
        elif isinstance(stmt, If):
            current = _build_if(cfg, stmt, current, loops)
        elif isinstance(stmt, Do):
            current = _build_do(cfg, stmt, current, loops)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement type {type(stmt).__name__}")
    return current


def _build_if(
    cfg: StmtCFG, stmt: If, pred: CFGNode, loops: Tuple[Do, ...]
) -> CFGNode:
    cond = cfg.new_node(BRANCH, stmt=stmt, loops=loops)
    cfg.add_edge(pred, cond)
    join = cfg.new_node(JOIN, stmt=stmt, loops=loops)
    then_tail = _build_body(cfg, stmt.then_body, cond, loops)
    cfg.add_edge(then_tail, join)
    if stmt.else_body:
        else_tail = _build_body(cfg, stmt.else_body, cond, loops)
        cfg.add_edge(else_tail, join)
    else:
        cfg.add_edge(cond, join)
    return join


def _build_do(
    cfg: StmtCFG, stmt: Do, pred: CFGNode, loops: Tuple[Do, ...]
) -> CFGNode:
    head = cfg.new_node(LOOP_HEAD, stmt=stmt, loops=loops)
    cfg.add_edge(pred, head)
    inner = loops + (stmt,)
    body_tail = _build_body(cfg, stmt.body, head, inner)
    back = cfg.new_node(LOOP_BACK, stmt=stmt, loops=inner)
    cfg.add_edge(body_tail, back)
    cfg.add_edge(back, head)
    loop_exit = cfg.new_node(LOOP_EXIT, stmt=stmt, loops=loops)
    cfg.add_edge(body_tail, loop_exit)
    trip = stmt.constant_trip_count()
    if trip is None or trip < 1:
        # The body may be skipped entirely.
        cfg.add_edge(head, loop_exit)
    return loop_exit
