"""Programs.

A :class:`Program` is a symbol table, an optional *init* section
(sequential, non-speculative code that sets up array contents), an
ordered list of regions, and an optional *finale* section (sequential
code that consumes region results, which makes those variables live-out
of the preceding regions).

Regions execute sequentially with respect to each other (HOSE
Property 1); only the segments inside one region run speculatively in
parallel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.ir.reference import MemoryReference, assign_statement_ids, extract_references
from repro.ir.region import Region
from repro.ir.stmt import Statement
from repro.ir.symbols import SymbolTable


class ProgramError(Exception):
    """Raised for malformed programs."""


class Program:
    """A complete analysable and executable program."""

    def __init__(
        self,
        name: str,
        symbols: Optional[SymbolTable] = None,
        init: Sequence[Statement] = (),
        regions: Sequence[Region] = (),
        finale: Sequence[Statement] = (),
    ):
        if not name:
            raise ProgramError("program needs a name")
        self.name = name
        self.symbols: SymbolTable = symbols if symbols is not None else SymbolTable()
        self.init: List[Statement] = list(init)
        self.regions: List[Region] = list(regions)
        self.finale: List[Statement] = list(finale)

        region_names = [r.name for r in self.regions]
        if len(set(region_names)) != len(region_names):
            raise ProgramError(f"duplicate region names in {name!r}: {region_names}")

        assign_statement_ids(self.init, prefix=f"{name}.<init>")
        assign_statement_ids(self.finale, prefix=f"{name}.<finale>")
        #: References of the init / finale sections (non-speculative code);
        #: used by liveness analysis, not by the labeling algorithm.
        self.init_references: List[MemoryReference] = extract_references(
            self.init, segment="<init>", region="<init>", uid_prefix=f"{name}.<init>"
        )
        self.finale_references: List[MemoryReference] = extract_references(
            self.finale,
            segment="<finale>",
            region="<finale>",
            uid_prefix=f"{name}.<finale>",
        )

    # ------------------------------------------------------------------
    def region(self, name: str) -> Region:
        """Return the region named ``name``."""
        for region in self.regions:
            if region.name == name:
                return region
        raise ProgramError(f"program {self.name!r} has no region {name!r}")

    def region_index(self, name: str) -> int:
        """Position of region ``name`` in program order."""
        for i, region in enumerate(self.regions):
            if region.name == name:
                return i
        raise ProgramError(f"program {self.name!r} has no region {name!r}")

    def regions_after(self, name: str) -> List[Region]:
        """Regions that execute after region ``name``."""
        return self.regions[self.region_index(name) + 1 :]

    def all_references(self) -> List[MemoryReference]:
        """All region references in program order (init/finale excluded)."""
        out: List[MemoryReference] = []
        for region in self.regions:
            out.extend(region.references)
        return out

    def referenced_variables(self) -> Set[str]:
        """All memory variables referenced anywhere in the program."""
        out: Set[str] = set()
        for ref in self.init_references:
            out.add(ref.variable)
        for region in self.regions:
            out |= region.variables()
        for ref in self.finale_references:
            out.add(ref.variable)
        return out

    def ensure_declared(self) -> None:
        """Declare every referenced variable that is missing as a scalar.

        Convenience for hand-built programs; the DSL front end requires
        explicit declarations and never relies on this.
        """
        for name in sorted(self.referenced_variables()):
            if name not in self.symbols:
                self.symbols.scalar(name)

    def undeclared_variables(self) -> Set[str]:
        """Referenced variables missing from the symbol table."""
        return {
            v for v in self.referenced_variables() if self.symbols.get(v) is None
        }

    def summary(self) -> Dict[str, int]:
        """Small structural summary (used by reports and tests)."""
        return {
            "regions": len(self.regions),
            "symbols": len(self.symbols),
            "init_statements": len(self.init),
            "region_references": len(self.all_references()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Program {self.name} regions={len(self.regions)}>"
