"""HOSE vs CASE speculative-storage scenario (the paper's headline).

For every workload family, run the hardware-only engine (HOSE) and the
compiler-assisted engine (CASE) over a sweep of speculative-storage
capacities and report the pressure metrics the paper's evaluation is
about: entries committed from speculative storage, occupancy high-water
marks, overflow stalls, violations and rollbacks.  CASE consumes the
idempotency labels of Algorithm 2, so idempotent references never
occupy buffer entries -- the expected shape is CASE at or below HOSE on
every storage metric, with the gap widening as the idempotent fraction
grows.

Every engine run is checked bit-for-bit against the sequential
interpreter (``matches_sequential``); a mismatch in the report is a
correctness bug, not noise.  :func:`verify_engines` packages that check
as a standalone pass for CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.bench.workloads import FAMILIES, Workload, generate
from repro.runtime.engines import CASEEngine, HOSEEngine, SpeculativeResult
from repro.runtime.interpreter import run_program

#: Per-segment buffer capacities swept by the scenario.
ENGINE_CAPACITIES: Tuple[int, ...] = (4, 16, 64)
#: Dynamic size of the engine workloads.  The engines simulate an
#: age-ordered round-robin op interleave in pure Python, so the
#: scenario uses smaller programs than the throughput measurements.
ENGINE_SIZE = 24
ENGINE_SMOKE_SIZE = 10
ENGINE_STATEMENTS = 3
ENGINE_WINDOW = 4


def _engine_row(result: SpeculativeResult, matches: bool) -> Dict:
    stats = result.stats
    return {
        "commit_entries": stats.commit_entries,
        "spec_peak_entries": result.spec_peak_entries,
        "spec_peak_segment_entries": result.spec_peak_segment_entries,
        "overflow_stalls": stats.overflow_stalls,
        "overflow_entries": stats.overflow_entries,
        "violations": stats.violations,
        "rollbacks": stats.rollbacks,
        "wasted_cycles": stats.wasted_cycles,
        "speculative_accesses": stats.speculative_accesses,
        "idempotent_accesses": stats.idempotent_accesses,
        "private_accesses": stats.private_accesses,
        "segments_committed": stats.segments_committed,
        "matches_sequential": matches,
    }


def measure_engine_family(
    workload: Workload,
    capacities: Sequence[int] = ENGINE_CAPACITIES,
    window: int = ENGINE_WINDOW,
) -> Dict:
    """HOSE vs CASE storage pressure for one workload, per capacity."""
    sequential = run_program(workload.program, model_latency=False)
    entry: Dict = {
        "family": workload.family,
        "size": workload.size,
        "statements": workload.statements,
        "window": window,
        "capacities": {},
    }
    # Labels do not depend on the buffer capacity; one shared cache
    # labels the program once and every CASE run reuses the result.
    analysis_cache = AnalysisCache()
    for capacity in capacities:
        row: Dict[str, Dict] = {}
        for name, engine_cls in (("hose", HOSEEngine), ("case", CASEEngine)):
            kwargs = {"window": window, "capacity": capacity}
            if engine_cls is CASEEngine:
                kwargs["cache"] = analysis_cache
            result = engine_cls(workload.program, **kwargs).run()
            # A degraded run re-executed sequentially, so its memory
            # trivially matches -- flag it, it means the speculative
            # engine itself failed.
            matches = not result.degraded and not sequential.memory.differences(
                result.memory, tolerance=0.0
            )
            row[name] = _engine_row(result, matches)
        row["case_vs_hose_commit_entries"] = (
            row["case"]["commit_entries"] - row["hose"]["commit_entries"]
        )
        entry["capacities"][str(capacity)] = row
    return entry


def measure_engines(
    size: int = ENGINE_SIZE,
    statements: int = ENGINE_STATEMENTS,
    families: Sequence[str] = FAMILIES,
    capacities: Sequence[int] = ENGINE_CAPACITIES,
    window: int = ENGINE_WINDOW,
) -> Dict[str, Dict]:
    """The whole scenario: every family, every capacity."""
    return {
        family: measure_engine_family(
            generate(family, size, statements),
            capacities=capacities,
            window=window,
        )
        for family in families
    }


def verify_engines(
    size: int = ENGINE_SMOKE_SIZE,
    statements: int = 2,
    families: Sequence[str] = FAMILIES,
    windows: Sequence[int] = (1, ENGINE_WINDOW),
    capacities: Sequence[Optional[int]] = (4, 64),
) -> List[str]:
    """Engine-equivalence check: HOSE/CASE final state vs sequential.

    Returns a list of human-readable failure descriptions (empty =
    everything bit-identical).  Used by ``python -m repro.bench
    --verify-engines`` and the CI smoke step.
    """
    failures: List[str] = []
    for family in families:
        workload = generate(family, size, statements)
        sequential = run_program(workload.program, model_latency=False)
        analysis_cache = AnalysisCache()
        for engine_cls in (HOSEEngine, CASEEngine):
            for window in windows:
                for capacity in capacities:
                    kwargs = {"window": window, "capacity": capacity}
                    if engine_cls is CASEEngine:
                        kwargs["cache"] = analysis_cache
                    result = engine_cls(workload.program, **kwargs).run()
                    if result.degraded:
                        report = result.degradation
                        failures.append(
                            f"{family}: {engine_cls.engine_name} "
                            f"(window={window}, capacity={capacity}) degraded "
                            f"to sequential execution "
                            f"({report.error_type}: {report.reason})"
                        )
                        continue
                    diffs = sequential.memory.differences(
                        result.memory, tolerance=0.0
                    )
                    if diffs:
                        sample = sorted(diffs.items())[:3]
                        failures.append(
                            f"{family}: {engine_cls.engine_name} "
                            f"(window={window}, capacity={capacity}) diverges "
                            f"from sequential at {len(diffs)} addresses, "
                            f"e.g. {sample}"
                        )
    return failures
