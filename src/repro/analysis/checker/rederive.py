"""Independent re-derivation of the Algorithm 1 / Algorithm 2 facts.

This is the checker's *second implementation* of the paper's static
analysis, built to share as little structure as possible with the
production pipeline so that a bug in one is unlikely to hide in the
other:

==============================  =====================================
production                      checker
==============================  =====================================
flat reference lists, pairwise  statement-level CFG + worklist
rectangle coverage              dataflow over must-written location
                                descriptors
ZIV/SIV/GCD subscript tests     concrete address enumeration over the
                                region's (small, constant) iteration
                                space
forward scan liveness           backward unit composition with
                                per-segment gen/kill from the CFG
==============================  =====================================

Descriptors abstract the locations a reference touches, one atom per
array dimension:

* ``("C", v)``       -- the constant subscript value ``v``;
* ``("S", b, o)``    -- symbolic ``b + o`` where ``b`` is fixed for the
  relevant window (region index, in-scope inner loop index, or a
  region-read-only scalar);
* ``("R", lo, hi)``  -- every value in ``[lo, hi]`` (produced by
  widening a unit-stride loop's index at the loop exit).

The *must-written* dataflow adds a descriptor at each unguarded
assignment, intersects at joins, invalidates index-dependent
descriptors on the loop back edge (the next iteration writes different
elements) and widens them to the full range at the loop exit when the
loop provably runs its complete unit-stride iteration space.  A read is
*exposed* when no descriptor in the must-set covers it.

Dependences are derived by *enumerating* the actual addresses every
reference touches in every segment instance (possible exactly when the
region and inner loop bounds are integer constants and subscripts are
affine in the loop indices) and intersecting the address sets across
instances -- stride-exact, boundary-exact, and entirely free of the
production subscript-test machinery.  When enumeration is not possible
(symbolic bounds, non-affine subscripts, budget exceeded) the affected
variables fall back to all-pairs dependences, which only ever makes the
checker *more* conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.access import linear_terms
from repro.analysis.cfg import SegmentGraph
from repro.analysis.checker.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.checker.stmt_cfg import (
    ASSIGN,
    BRANCH,
    CFGNode,
    LOOP_BACK,
    LOOP_EXIT,
    LOOP_HEAD,
    StmtCFG,
    build_segment_cfg,
)
from repro.idempotency.labeling import LabelingResult
from repro.ir.expr import Expr, Index, const_int
from repro.ir.program import Program
from repro.ir.reference import MemoryReference
from repro.ir.region import (
    EXIT_NODE,
    ExplicitRegion,
    LOOP_BODY_SEGMENT,
    LoopRegion,
    Region,
)
from repro.ir.stmt import Assign, Do, If, Statement
from repro.ir.types import (
    IdempotencyCategory,
    NodeColor,
    NodeMark,
    RefLabel,
)

#: A location descriptor: (variable, per-dimension atoms).
Descriptor = Tuple[str, Tuple[tuple, ...]]

#: Default budget for address enumeration (occurrences per region).
DEFAULT_ENUM_BUDGET = 60_000


# ----------------------------------------------------------------------
# Descriptor atoms
# ----------------------------------------------------------------------
def _subscript_atom(
    sub: Expr, allowed_bases: Set[str]
) -> Optional[tuple]:
    """Atom of one subscript expression, or ``None`` when unknown."""
    lin = linear_terms(sub)
    if lin is None:
        return None
    coeffs, const = lin
    if not coeffs:
        return ("C", const)
    if len(coeffs) == 1:
        (name, coeff), = coeffs.items()
        if coeff == 1 and name in allowed_bases:
            return ("S", name, const)
    return None


def _descriptor_of(
    ref_var: str,
    subscripts: Sequence[Expr],
    allowed_bases: Set[str],
) -> Optional[Descriptor]:
    if not subscripts:
        return (ref_var, ())
    dims: List[tuple] = []
    for sub in subscripts:
        atom = _subscript_atom(sub, allowed_bases)
        if atom is None:
            return None
        dims.append(atom)
    return (ref_var, tuple(dims))


def _dim_covers(write_dim: tuple, read_dim: tuple) -> bool:
    wk, rk = write_dim[0], read_dim[0]
    if wk == "C" and rk == "C":
        return write_dim[1] == read_dim[1]
    if wk == "S" and rk == "S":
        return write_dim[1:] == read_dim[1:]
    if wk == "R" and rk == "C":
        return write_dim[1] <= read_dim[1] <= write_dim[2]
    if wk == "R" and rk == "R":
        return write_dim[1] <= read_dim[1] and read_dim[2] <= write_dim[2]
    return False


def _covered(read_desc: Descriptor, must: FrozenSet[Descriptor]) -> bool:
    var, rdims = read_desc
    for wvar, wdims in must:
        if wvar != var or len(wdims) != len(rdims):
            continue
        if all(_dim_covers(w, r) for w, r in zip(wdims, rdims)):
            return True
    return False


# ----------------------------------------------------------------------
# Dataflow problems over the statement CFG
# ----------------------------------------------------------------------
class _MustWritten(DataflowProblem):
    """Descriptors definitely written since segment entry (intersection)."""

    direction = "forward"

    def __init__(self, allowed_bases: Set[str]):
        self.allowed_bases = allowed_bases

    def boundary(self) -> FrozenSet[Descriptor]:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a & b

    def transfer(self, node: CFGNode, value: FrozenSet) -> FrozenSet:
        if node.kind == ASSIGN:
            stmt = node.stmt
            assert isinstance(stmt, Assign)
            if stmt.guard is not None:
                return value
            bases = self._bases_at(node)
            desc = _descriptor_of(stmt.target, stmt.target_subscripts, bases)
            if desc is not None:
                return value | {desc}
            return value
        if node.kind == LOOP_BACK:
            # The next iteration writes different elements: descriptors
            # pinned to this loop's index are stale.
            return self._drop_index(value, node.stmt)
        if node.kind == LOOP_EXIT:
            return self._widen(value, node.stmt)
        return value

    def _bases_at(self, node: CFGNode) -> Set[str]:
        return self.allowed_bases | {do.index for do in node.loops}

    @staticmethod
    def _mentions_index(dims: Tuple[tuple, ...], index: str) -> bool:
        return any(d[0] == "S" and d[1] == index for d in dims)

    def _drop_index(self, value: FrozenSet, stmt: Statement) -> FrozenSet:
        assert isinstance(stmt, Do)
        return frozenset(
            d for d in value if not self._mentions_index(d[1], stmt.index)
        )

    def _widen(self, value: FrozenSet, stmt: Statement) -> FrozenSet:
        assert isinstance(stmt, Do)
        index = stmt.index
        bounds = _const_bounds(stmt.lower, stmt.upper, stmt.step)
        widenable = (
            bounds is not None
            and abs(bounds[2]) == 1
            and (stmt.constant_trip_count() or 0) >= 1
        )
        out: Set[Descriptor] = set()
        for var, dims in value:
            if not self._mentions_index(dims, index):
                out.add((var, dims))
                continue
            if not widenable:
                continue
            lo, hi, _ = bounds  # type: ignore[misc]
            new_dims = []
            for d in dims:
                if d[0] == "S" and d[1] == index:
                    new_dims.append(("R", lo + d[2], hi + d[2]))
                else:
                    new_dims.append(d)
            out.add((var, tuple(new_dims)))
        return frozenset(out)


class _MustExecuted(DataflowProblem):
    """Node ids lying on every path from the entry (intersection)."""

    direction = "forward"

    def boundary(self) -> FrozenSet[int]:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a & b

    def transfer(self, node: CFGNode, value: FrozenSet) -> FrozenSet:
        return value | {node.nid}


def _const_bounds(
    lower: Expr, upper: Expr, step: Expr
) -> Optional[Tuple[int, int, int]]:
    lo = const_int(lower)
    hi = const_int(upper)
    st = const_int(step)
    if lo is None or hi is None or st is None or st == 0:
        return None
    return lo, hi, st


def _iter_values(lo: int, hi: int, st: int) -> List[int]:
    if st > 0:
        return list(range(lo, hi + 1, st))
    return list(range(lo, hi - 1, st))


# ----------------------------------------------------------------------
# Per-segment CFG facts
# ----------------------------------------------------------------------
@dataclass
class SegmentFacts:
    """CFG-derived facts of one segment body."""

    cfg: StmtCFG
    #: uids of reads with no covering must-write before them.
    exposed_read_uids: Set[str] = field(default_factory=set)
    #: variables with at least one exposed read.
    exposed_vars: Set[str] = field(default_factory=set)
    #: variables written on every path without a preceding exposed read.
    must_written_vars: Set[str] = field(default_factory=set)
    #: all written / read variables.
    written_vars: Set[str] = field(default_factory=set)
    read_vars: Set[str] = field(default_factory=set)
    #: variables all of whose writes are scalar writes.
    scalar_only_writes: Set[str] = field(default_factory=set)
    #: variables with an unguarded write lying on every path.
    uncond_write_vars: Set[str] = field(default_factory=set)


def _reads_at(node: CFGNode) -> List[MemoryReference]:
    """Read references evaluated at ``node``, in evaluation order."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == ASSIGN:
        return list(stmt.control_reads or []) + list(stmt.reads or [])
    if node.kind in (BRANCH, LOOP_HEAD):
        return list(stmt.control_reads or [])
    return []


def analyze_segment_body(
    body: Sequence[Statement], allowed_bases: Set[str]
) -> SegmentFacts:
    """Must-written dataflow + exposure over one segment body."""
    cfg = build_segment_cfg(body)
    problem = _MustWritten(allowed_bases)
    sol = solve_dataflow(
        cfg.nodes, cfg.successors, cfg.predecessors, problem, [cfg.entry]
    )
    uncond_sol = solve_dataflow(
        cfg.nodes, cfg.successors, cfg.predecessors, _MustExecuted(), [cfg.entry]
    )
    exit_in = uncond_sol[cfg.exit][0] or frozenset()
    facts = SegmentFacts(cfg=cfg)

    for node in cfg.nodes:
        in_val = sol[node][0]
        if in_val is None:
            continue  # unreachable
        bases = allowed_bases | {do.index for do in node.loops}
        for ref in _reads_at(node):
            facts.read_vars.add(ref.variable)
            desc = _descriptor_of(ref.variable, ref.subscripts, bases)
            if desc is None or not _covered(desc, in_val):
                facts.exposed_read_uids.add(ref.uid)
                facts.exposed_vars.add(ref.variable)
        if node.kind == ASSIGN:
            stmt = node.stmt
            assert isinstance(stmt, Assign)
            facts.written_vars.add(stmt.target)

    exit_must = sol[cfg.exit][0] or frozenset()
    for var, _dims in exit_must:
        facts.must_written_vars.add(var)
    facts.must_written_vars -= facts.exposed_vars

    for var in facts.written_vars:
        writes = [
            n.stmt
            for n in cfg.nodes
            if n.kind == ASSIGN and n.stmt is not None and n.stmt.target == var
        ]
        if all(not w.target_subscripts for w in writes):
            facts.scalar_only_writes.add(var)
    # Unconditional-write variables: some unguarded assignment on every path.
    facts.uncond_write_vars = {
        n.stmt.target
        for n in cfg.nodes
        if n.kind == ASSIGN
        and n.stmt is not None
        and n.stmt.guard is None
        and n.nid in exit_in
    }
    return facts


# ----------------------------------------------------------------------
# Address enumeration
# ----------------------------------------------------------------------
@dataclass
class _Occurrence:
    ref: MemoryReference
    #: concrete flattened subscript values, or None when not computable.
    addr: Optional[Tuple[int, ...]]
    time: int


class _EnumBudget(Exception):
    pass


def _eval_affine(sub: Expr, env: Dict[str, int]) -> Optional[int]:
    lin = linear_terms(sub)
    if lin is None:
        return None
    coeffs, const = lin
    total = const
    for name, coeff in coeffs.items():
        if name not in env:
            return None
        total += coeff * env[name]
    return total


def _enumerate_body(
    body: Sequence[Statement],
    env: Dict[str, int],
    out: List[_Occurrence],
    clock: List[int],
    budget: int,
) -> None:
    """Emit occurrences of one body under ``env`` in execution order."""

    def emit(ref: Optional[MemoryReference]) -> None:
        if ref is None:
            return
        if len(out) >= budget:
            raise _EnumBudget()
        if ref.subscripts:
            vals: Optional[List[int]] = []
            for sub in ref.subscripts:
                v = _eval_affine(sub, env)
                if v is None:
                    vals = None
                    break
                vals.append(v)
            addr = tuple(vals) if vals is not None else None
        else:
            addr = ()
        out.append(_Occurrence(ref=ref, addr=addr, time=clock[0]))
        clock[0] += 1

    for stmt in body:
        if isinstance(stmt, Assign):
            for ref in stmt.control_reads or []:
                emit(ref)
            for ref in stmt.reads or []:
                emit(ref)
            emit(stmt.write)
        elif isinstance(stmt, If):
            for ref in stmt.control_reads or []:
                emit(ref)
            # Both arms may execute (data-dependent): emit both in order.
            _enumerate_body(stmt.then_body, env, out, clock, budget)
            _enumerate_body(stmt.else_body, env, out, clock, budget)
        elif isinstance(stmt, Do):
            for ref in stmt.control_reads or []:
                emit(ref)
            bounds = _const_bounds(stmt.lower, stmt.upper, stmt.step)
            if bounds is None:
                raise _EnumBudget()  # symbolic inner bounds: cannot enumerate
            lo, hi, st = bounds
            for value in _iter_values(lo, hi, st):
                env[stmt.index] = value
                _enumerate_body(stmt.body, env, out, clock, budget)
            env.pop(stmt.index, None)


@dataclass
class DependenceFacts:
    """Checker dependences: sink-centric view, by address enumeration."""

    #: enumeration covered every instance exactly.
    exact: bool = True
    #: uids that sink at least one cross-segment dependence.
    cross_sink_uids: Set[str] = field(default_factory=set)
    #: read uid -> set of intra-segment flow-source *write* uids.
    intra_flow_sources: Dict[str, Set[str]] = field(default_factory=dict)
    #: uids that sink any dependence at all (intra or cross).
    any_sink_uids: Set[str] = field(default_factory=set)
    #: any cross-segment dependence exists on analysed variables.
    has_cross: bool = False


def _derive_dependences(
    region: Region,
    skip_vars: Set[str],
    budget: int,
) -> DependenceFacts:
    """Enumerate addresses per segment instance and intersect."""
    facts = DependenceFacts()

    # (age, occurrences) per instance.
    instances: List[Tuple[int, List[_Occurrence]]] = []
    reach: Optional[Dict[str, Set[str]]] = None
    try:
        if isinstance(region, LoopRegion):
            bounds = _const_bounds(region.lower, region.upper, region.step)
            if bounds is None:
                raise _EnumBudget()
            lo, hi, st = bounds
            values = _iter_values(lo, hi, st)
            if len(values) * max(1, len(region.references)) > budget:
                raise _EnumBudget()
            for age, value in enumerate(values):
                occs: List[_Occurrence] = []
                _enumerate_body(
                    region.body, {region.index: value}, occs, [0], budget
                )
                instances.append((age, occs))
        else:
            assert isinstance(region, ExplicitRegion)
            graph = SegmentGraph.from_region(region)
            reach = {
                name: graph.descendants(name) | {name}
                for name in region.segment_names()
            }
            for age, name in enumerate(region.segment_names()):
                occs = []
                _enumerate_body(region.segment_body(name), {}, occs, [0], budget)
                # Branch-condition control reads are references too.
                seg = region.segment(name)
                for ref in seg.references or []:
                    if ref.is_control and all(o.ref is not ref for o in occs):
                        occs.append(
                            _Occurrence(
                                ref=ref,
                                addr=_addr_of(ref, {}),
                                time=len(occs),
                            )
                        )
                instances.append((age, occs))
    except _EnumBudget:
        facts.exact = False
        _conservative_dependences(region, skip_vars, facts)
        return facts

    segment_of: Dict[int, str] = {}
    if isinstance(region, ExplicitRegion):
        for age, name in enumerate(region.segment_names()):
            segment_of[age] = name

    # variable -> addr (or None) -> [(age, time, occurrence)]
    by_var: Dict[str, List[Tuple[int, _Occurrence]]] = {}
    for age, occs in instances:
        for occ in occs:
            var = occ.ref.variable
            if var in skip_vars:
                continue
            by_var.setdefault(var, []).append((age, occ))

    for var, entries in by_var.items():
        if not any(e[1].ref.is_write for e in entries):
            continue
        known: Dict[Tuple[int, ...], List[Tuple[int, _Occurrence]]] = {}
        unknown: List[Tuple[int, _Occurrence]] = []
        for age, occ in entries:
            if occ.addr is None:
                unknown.append((age, occ))
            else:
                known.setdefault(occ.addr, []).append((age, occ))
        for group in known.values():
            _emit_group_deps(group, facts, segment_of, reach)
        if unknown:
            # An unknown address may alias *anything* of the variable,
            # but two known addresses only alias when equal: pair every
            # occurrence against the unknowns, never known-vs-known.
            _emit_alias_deps(entries, facts, segment_of, reach)
    return facts


def _addr_of(
    ref: MemoryReference, env: Dict[str, int]
) -> Optional[Tuple[int, ...]]:
    if not ref.subscripts:
        return ()
    vals: List[int] = []
    for sub in ref.subscripts:
        v = _eval_affine(sub, env)
        if v is None:
            return None
        vals.append(v)
    return tuple(vals)


def _emit_pair(
    age_a: int,
    occ_a: _Occurrence,
    age_b: int,
    occ_b: _Occurrence,
    facts: DependenceFacts,
    segment_of: Dict[int, str],
    reach: Optional[Dict[str, Set[str]]],
) -> None:
    """Record the may-dependence of ordered occurrence pair (a, b)."""
    if occ_a.ref is occ_b.ref and age_a == age_b:
        return
    if not (occ_a.ref.is_write or occ_b.ref.is_write):
        return
    cross = age_a != age_b
    if cross and reach is not None:
        seg_a = segment_of[age_a]
        seg_b = segment_of[age_b]
        if seg_b not in reach[seg_a] and seg_a not in reach[seg_b]:
            return  # mutually exclusive branch arms
    sink = occ_b.ref
    facts.any_sink_uids.add(sink.uid)
    if cross:
        facts.has_cross = True
        facts.cross_sink_uids.add(sink.uid)
    elif sink.is_read and occ_a.ref.is_write:
        facts.intra_flow_sources.setdefault(sink.uid, set()).add(
            occ_a.ref.uid
        )


def _emit_group_deps(
    group: List[Tuple[int, _Occurrence]],
    facts: DependenceFacts,
    segment_of: Dict[int, str],
    reach: Optional[Dict[str, Set[str]]],
) -> None:
    """All may-dependences within one same-address occurrence group."""
    ordered = sorted(group, key=lambda e: (e[0], e[1].time))
    n = len(ordered)
    for i in range(n):
        age_a, occ_a = ordered[i]
        for j in range(i + 1, n):
            age_b, occ_b = ordered[j]
            _emit_pair(age_a, occ_a, age_b, occ_b, facts, segment_of, reach)


def _emit_alias_deps(
    entries: List[Tuple[int, _Occurrence]],
    facts: DependenceFacts,
    segment_of: Dict[int, str],
    reach: Optional[Dict[str, Set[str]]],
) -> None:
    """May-dependences of unknown-address occurrences with everything."""
    ordered = sorted(entries, key=lambda e: (e[0], e[1].time))
    n = len(ordered)
    for i in range(n):
        age_a, occ_a = ordered[i]
        for j in range(i + 1, n):
            age_b, occ_b = ordered[j]
            if occ_a.addr is not None and occ_b.addr is not None:
                continue  # known pairs were handled by their group
            _emit_pair(age_a, occ_a, age_b, occ_b, facts, segment_of, reach)


def _conservative_dependences(
    region: Region, skip_vars: Set[str], facts: DependenceFacts
) -> None:
    """All-pairs fallback: every same-variable pair with a write aliases."""
    by_var: Dict[str, List[MemoryReference]] = {}
    for ref in region.references:
        if ref.variable not in skip_vars:
            by_var.setdefault(ref.variable, []).append(ref)
    multi_segment = (
        isinstance(region, LoopRegion) or len(region.segment_names()) > 1
    )
    for var, refs in by_var.items():
        writes = [r for r in refs if r.is_write]
        if not writes:
            continue
        facts.has_cross = facts.has_cross or multi_segment
        for ref in refs:
            facts.any_sink_uids.add(ref.uid)
            if multi_segment:
                facts.cross_sink_uids.add(ref.uid)
            if ref.is_read:
                facts.intra_flow_sources.setdefault(ref.uid, set()).update(
                    w.uid for w in writes if w.uid != ref.uid
                )


# ----------------------------------------------------------------------
# Determinism (re-implemented on the raw expression trees)
# ----------------------------------------------------------------------
def _ref_deterministic(
    ref: MemoryReference, region_index: Optional[str], read_only: Set[str]
) -> bool:
    allowed = {do.index for do in ref.enclosing_loops} | read_only
    if region_index is not None:
        allowed.add(region_index)
    for sub in ref.subscripts:
        for node in sub.walk():
            if isinstance(node, Index):
                return False
        for occ in sub.reads():
            if occ.name not in allowed:
                return False
    return True


# ----------------------------------------------------------------------
# Region-level rederivation
# ----------------------------------------------------------------------
@dataclass
class FactDiff:
    """One disagreement between production and checker facts."""

    kind: str  # mark | exposure | rfw | liveout | private | readonly | label
    key: str  # variable or reference uid
    production: str
    checker: str
    #: "production-aggressive" (production claims the stronger fact) or
    #: "production-conservative" (checker proves more than production).
    direction: str
    detail: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {
            "kind": self.kind,
            "key": self.key,
            "production": self.production,
            "checker": self.checker,
            "direction": self.direction,
            "detail": self.detail,
        }


@dataclass
class RederivedFacts:
    """Checker-side facts of one region."""

    region: str
    #: enumeration was exhaustive (static comparison is high-confidence).
    exact: bool
    notes: List[str] = field(default_factory=list)
    read_only2: Set[str] = field(default_factory=set)
    live_out2: Set[str] = field(default_factory=set)
    private2: Set[str] = field(default_factory=set)
    marks2: Dict[str, Dict[str, NodeMark]] = field(default_factory=dict)
    exposed2: Dict[str, Set[str]] = field(default_factory=dict)
    rfw2_uids: Set[str] = field(default_factory=set)
    colors2: Dict[str, Dict[str, NodeColor]] = field(default_factory=dict)
    deps2: DependenceFacts = field(default_factory=DependenceFacts)
    fully_independent2: bool = False
    labels2: Dict[str, RefLabel] = field(default_factory=dict)
    categories2: Dict[str, IdempotencyCategory] = field(default_factory=dict)

    def idempotent2(self, uid: str) -> bool:
        return self.labels2.get(uid) is RefLabel.IDEMPOTENT


def _region_read_only(region: Region) -> Set[str]:
    written = {r.variable for r in region.references if r.is_write}
    read = {r.variable for r in region.references if r.is_read}
    return read - written


def rederive_live_out(program: Program) -> Dict[str, Set[str]]:
    """Backward liveness over the program's unit sequence."""
    live: Set[str] = set()
    result: Dict[str, Set[str]] = {}

    def body_gen_kill(
        body: Sequence[Statement], allowed: Set[str]
    ) -> Tuple[Set[str], Set[str]]:
        facts = analyze_segment_body(body, allowed)
        kills = {
            v
            for v in facts.must_written_vars | facts.written_vars
            if v in facts.scalar_only_writes and v in facts.must_written_vars
        }
        return set(facts.exposed_vars), kills

    if program.finale:
        gen, kill = body_gen_kill(program.finale, set())
        live = gen | (live - kill)

    for region in reversed(program.regions):
        result[region.name] = (
            set(region.live_out) if region.live_out is not None else set(live)
        )
        read_only = _region_read_only(region)
        if isinstance(region, LoopRegion):
            gen, kill = body_gen_kill(
                region.body, read_only | {region.index}
            )
            gen |= region.bound_variables
            trip = region.constant_trip_count()
            if trip is None or trip < 1:
                kill = set()
        else:
            assert isinstance(region, ExplicitRegion)
            gen = set()
            killed_so_far: Set[str] = set()
            per_seg: Dict[str, Tuple[Set[str], Set[str]]] = {}
            for name in region.segment_names():
                g, k = body_gen_kill(region.segment_body(name), read_only)
                seg = region.segment(name)
                if seg.branch is not None:
                    # The branch evaluates after the segment body, so a
                    # variable the body must-writes is covered, not
                    # upward-exposed, at the branch read.
                    g |= set(seg.branch.variables()) - k
                per_seg[name] = (g, k)
                gen |= g - killed_so_far
                killed_so_far |= k
            # A kill holds only when it happens on every path.
            kill = _must_killed_on_all_paths(region, per_seg)
        live = gen | (live - kill)
    return result


class _MustKill(DataflowProblem):
    direction = "forward"

    def __init__(self, kills: Dict[str, Set[str]]):
        self.kills = kills

    def boundary(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a & b

    def transfer(self, node: str, value: FrozenSet) -> FrozenSet:
        if node == EXIT_NODE:
            return value
        # A later exposed read re-exposes the variable only within the
        # region; for the region-level kill set a scalar overwrite on
        # every path is what matters.
        return value | frozenset(self.kills.get(node, set()))


def _must_killed_on_all_paths(
    region: ExplicitRegion, per_seg: Dict[str, Tuple[Set[str], Set[str]]]
) -> Set[str]:
    graph = SegmentGraph.from_region(region)
    problem = _MustKill(kills={name: k for name, (_, k) in per_seg.items()})
    sol = solve_dataflow(
        graph.nodes,
        graph.successors,
        graph.predecessors,
        problem,
        [graph.entry],
    )
    exit_in = sol.get(EXIT_NODE, (None, None))[0]
    return set(exit_in or frozenset())


class _Danger(DataflowProblem):
    """Algorithm-1 danger: can reach an exposed read through Nulls."""

    direction = "backward"

    def __init__(
        self,
        marks: Dict[str, NodeMark],
        blocks: Dict[str, bool],
        live_out: bool,
    ):
        self.marks = marks
        self.blocks = blocks
        self.live_out = live_out

    def boundary(self) -> bool:
        return self.live_out

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer(self, node: str, value: bool) -> bool:
        if node == EXIT_NODE:
            return self.live_out
        if self.marks.get(node, NodeMark.NULL) is NodeMark.READ:
            return True
        if self.blocks.get(node, False):
            return False
        return value


def rederive_region(
    region: Region,
    program: Optional[Program] = None,
    live_out: Optional[Set[str]] = None,
    enum_budget: int = DEFAULT_ENUM_BUDGET,
) -> RederivedFacts:
    """Re-derive every Algorithm 1 / 2 fact for ``region``."""
    read_only = _region_read_only(region)
    facts = RederivedFacts(region=region.name, exact=True, read_only2=read_only)

    # -- live-out (same precedence contract as label_region) ------------
    if live_out is not None:
        facts.live_out2 = set(live_out)
    elif region.live_out is not None:
        facts.live_out2 = set(region.live_out)
    elif program is not None:
        facts.live_out2 = rederive_live_out(program).get(region.name, set())
    else:
        facts.live_out2 = {r.variable for r in region.references if r.is_write}

    region_index = region.index if isinstance(region, LoopRegion) else None
    allowed = set(read_only)
    if region_index is not None:
        allowed.add(region_index)

    # -- per-segment CFG facts ------------------------------------------
    seg_facts: Dict[str, SegmentFacts] = {}
    for name in region.segment_names():
        sf = analyze_segment_body(region.segment_body(name), allowed)
        # Branch-condition reads execute after the body: they are reads
        # of the segment and can be exposed like any other.
        if isinstance(region, ExplicitRegion):
            seg = region.segment(name)
            if seg.branch is not None:
                exit_must = None
                sol_cfg = sf.cfg
                # Re-evaluate coverage of branch reads against the body's
                # exit must-set.
                problem = _MustWritten(allowed)
                sol = solve_dataflow(
                    sol_cfg.nodes,
                    sol_cfg.successors,
                    sol_cfg.predecessors,
                    problem,
                    [sol_cfg.entry],
                )
                exit_must = sol[sol_cfg.exit][0] or frozenset()
                for ref in seg.references or []:
                    if not ref.is_control or not ref.is_read:
                        continue
                    if ref.uid in sf.exposed_read_uids:
                        continue
                    sf.read_vars.add(ref.variable)
                    desc = _descriptor_of(ref.variable, ref.subscripts, allowed)
                    if desc is None or not _covered(desc, exit_must):
                        sf.exposed_read_uids.add(ref.uid)
                        sf.exposed_vars.add(ref.variable)
                sf.must_written_vars -= sf.exposed_vars
        seg_facts[name] = sf
        facts.exposed2[name] = set(sf.exposed_read_uids)

    # -- node marks ------------------------------------------------------
    variables = {r.variable for r in region.references}
    for var in variables:
        per_seg: Dict[str, NodeMark] = {}
        for name, sf in seg_facts.items():
            if var in sf.exposed_vars:
                per_seg[name] = NodeMark.READ
            elif var in sf.uncond_write_vars:
                # Algorithm 1 marks the locations the segment *touches*:
                # an unguarded must-executed write with no exposed read
                # is a Write mark even when it does not cover the whole
                # variable (coverage is the exposure analysis' job).
                per_seg[name] = NodeMark.WRITE
            else:
                per_seg[name] = NodeMark.NULL
        facts.marks2[var] = per_seg

    # -- privatization ---------------------------------------------------
    written = {r.variable for r in region.references if r.is_write}
    exposed_anywhere = set()
    for sf in seg_facts.values():
        exposed_anywhere |= sf.exposed_vars
    facts.private2 = {
        v
        for v in written
        if v not in exposed_anywhere and v not in facts.live_out2
    }

    # -- RFW -------------------------------------------------------------
    # Determinism is judged on the *writes* of the segment at hand: a
    # non-deterministic write elsewhere in the region must not withhold
    # RFW from a deterministic one (production labels per reference).
    def _writes_det(writes: List[MemoryReference]) -> bool:
        return all(
            _ref_deterministic(w, region_index, read_only) for w in writes
        )

    if isinstance(region, LoopRegion):
        for var in variables:
            mark = facts.marks2[var][LOOP_BODY_SEGMENT]
            writes = [
                r for r in region.references_of(var) if r.is_write
            ]
            det = _writes_det(writes)
            color = NodeColor.WHITE
            if writes and not (mark is NodeMark.WRITE and det):
                color = NodeColor.BLACK
            facts.colors2.setdefault(var, {})[LOOP_BODY_SEGMENT] = color
            if writes and mark is NodeMark.WRITE and det:
                facts.rfw2_uids.update(w.uid for w in writes)
    else:
        assert isinstance(region, ExplicitRegion)
        graph = SegmentGraph.from_region(region)
        for var in sorted(variables):
            marks = {s: facts.marks2[var][s] for s in region.segment_names()}
            blocks = {
                s: (
                    marks[s] is NodeMark.WRITE
                    and var in seg_facts[s].scalar_only_writes
                    and var in seg_facts[s].written_vars
                )
                for s in region.segment_names()
            }
            danger_problem = _Danger(marks, blocks, var in facts.live_out2)
            sol = solve_dataflow(
                graph.nodes,
                graph.successors,
                graph.predecessors,
                danger_problem,
                [EXIT_NODE],
            )
            danger = {
                node: bool(sol[node][1]) for node in graph.nodes
            }
            colors = {s: NodeColor.WHITE for s in region.segment_names()}
            for node in graph.breadth_first():
                if node == EXIT_NODE:
                    continue
                if colors.get(node) is not NodeColor.WHITE:
                    continue
                if any(danger[s] for s in graph.successors(node)):
                    for desc_node in graph.descendants(node):
                        if desc_node != EXIT_NODE:
                            colors[desc_node] = NodeColor.BLACK
            facts.colors2[var] = colors
            for name in region.segment_names():
                writes = [
                    r
                    for r in region.segment_references(name)
                    if r.variable == var and r.is_write
                ]
                if (
                    writes
                    and colors[name] is NodeColor.WHITE
                    and marks[name] is NodeMark.WRITE
                    and _writes_det(writes)
                ):
                    facts.rfw2_uids.update(w.uid for w in writes)

    # -- dependences -----------------------------------------------------
    skip = read_only | facts.private2
    facts.deps2 = _derive_dependences(region, skip, enum_budget)
    facts.exact = facts.deps2.exact
    if not facts.deps2.exact:
        facts.notes.append(
            "address enumeration exceeded budget or hit symbolic bounds; "
            "dependences fell back to all-pairs (checker-conservative)"
        )

    # -- control dependences --------------------------------------------
    control_dep2 = False
    if isinstance(region, ExplicitRegion):
        edges = region.segment_edges()
        for name in region.segment_names():
            succs = edges.get(name, [])
            if len(succs) > 1:
                control_dep2 = True
                break

    # -- Algorithm 2 -----------------------------------------------------
    facts.fully_independent2 = not facts.deps2.has_cross and not control_dep2
    labels: Dict[str, RefLabel] = {
        r.uid: RefLabel.SPECULATIVE for r in region.references
    }
    cats: Dict[str, IdempotencyCategory] = {
        r.uid: IdempotencyCategory.NOT_IDEMPOTENT for r in region.references
    }

    def mark_idem(ref: MemoryReference, cat: IdempotencyCategory) -> None:
        labels[ref.uid] = RefLabel.IDEMPOTENT
        cats[ref.uid] = cat

    if facts.fully_independent2:
        for ref in region.references:
            if ref.variable in read_only:
                mark_idem(ref, IdempotencyCategory.READ_ONLY)
            elif ref.variable in facts.private2:
                mark_idem(ref, IdempotencyCategory.PRIVATE)
            else:
                mark_idem(ref, IdempotencyCategory.FULLY_INDEPENDENT)
    else:
        for ref in region.references:
            if ref.variable in read_only:
                mark_idem(ref, IdempotencyCategory.READ_ONLY)
            elif ref.variable in facts.private2:
                mark_idem(ref, IdempotencyCategory.PRIVATE)
        for ref in region.references:
            if not ref.is_write or labels[ref.uid] is RefLabel.IDEMPOTENT:
                continue
            if (
                ref.uid in facts.rfw2_uids
                and ref.uid not in facts.deps2.cross_sink_uids
            ):
                mark_idem(ref, IdempotencyCategory.SHARED_DEPENDENT)
        for ref in region.references:
            if not ref.is_read or labels[ref.uid] is RefLabel.IDEMPOTENT:
                continue
            if ref.uid not in facts.deps2.any_sink_uids:
                mark_idem(ref, IdempotencyCategory.SHARED_DEPENDENT)
                continue
            if ref.uid in facts.deps2.cross_sink_uids:
                continue
            sources = facts.deps2.intra_flow_sources.get(ref.uid)
            if sources and all(
                labels.get(src) is RefLabel.IDEMPOTENT for src in sources
            ):
                # Every dependence into the read is intra-segment flow
                # from an idempotent write (Theorem 2 / Lemma 6) -- but
                # only when flow deps are the *only* deps it sinks.
                if _only_intra_flow_sinks(ref, facts.deps2):
                    mark_idem(ref, IdempotencyCategory.SHARED_DEPENDENT)

    facts.labels2 = labels
    facts.categories2 = cats
    return facts


def _only_intra_flow_sinks(ref: MemoryReference, deps: DependenceFacts) -> bool:
    """Reads only sink flow deps; any recorded sink is a flow source."""
    return ref.uid in deps.intra_flow_sources


# ----------------------------------------------------------------------
# Comparison with the production facts
# ----------------------------------------------------------------------
def compare_region(
    labeling: LabelingResult, facts: RederivedFacts
) -> List[FactDiff]:
    """Classified disagreements between production and checker facts."""
    diffs: List[FactDiff] = []
    region = labeling.region

    def add(
        kind: str,
        key: str,
        prod: object,
        chk: object,
        direction: str,
        detail: str = "",
    ) -> None:
        diffs.append(
            FactDiff(
                kind=kind,
                key=key,
                production=str(prod),
                checker=str(chk),
                direction=direction,
                detail=detail,
            )
        )

    # Marks.
    for var, per_seg in facts.marks2.items():
        for segment, mark2 in per_seg.items():
            mark1 = labeling.rfw.mark_of(var, segment)
            if mark1 is mark2:
                continue
            if mark1 is NodeMark.WRITE and mark2 is NodeMark.READ:
                direction = "production-aggressive"
            elif mark1 is NodeMark.READ and mark2 is NodeMark.WRITE:
                direction = "production-conservative"
            elif mark2 is NodeMark.READ:
                direction = "production-aggressive"
            else:
                direction = "production-conservative"
            add(
                "mark",
                f"{var}@{segment}",
                mark1.name,
                mark2.name,
                direction,
            )

    # Exposure (per read reference).
    prod_exposed: Set[str] = set()
    for summary in labeling.summaries.values():
        for info in summary.variables.values():
            prod_exposed.update(r.uid for r in info.exposed_reads)
    chk_exposed: Set[str] = set()
    for uids in facts.exposed2.values():
        chk_exposed |= uids
    for uid in sorted(chk_exposed - prod_exposed):
        add("exposure", uid, "covered", "exposed", "production-aggressive")
    for uid in sorted(prod_exposed - chk_exposed):
        add("exposure", uid, "exposed", "covered", "production-conservative")

    # RFW.
    for uid in sorted(labeling.rfw.rfw_write_uids - facts.rfw2_uids):
        add("rfw", uid, "rfw", "not-rfw", "production-aggressive")
    for uid in sorted(facts.rfw2_uids - labeling.rfw.rfw_write_uids):
        add("rfw", uid, "not-rfw", "rfw", "production-conservative")

    # Live-out / privatization / read-only.
    for var in sorted(facts.live_out2 - labeling.live_out):
        add("liveout", var, "dead", "live", "production-aggressive")
    for var in sorted(labeling.live_out - facts.live_out2):
        add("liveout", var, "live", "dead", "production-conservative")
    for var in sorted(labeling.private_vars - facts.private2):
        add("private", var, "private", "shared", "production-aggressive")
    for var in sorted(facts.private2 - labeling.private_vars):
        add("private", var, "shared", "private", "production-conservative")
    for var in sorted(labeling.read_only_vars ^ facts.read_only2):
        add(
            "readonly",
            var,
            str(var in labeling.read_only_vars),
            str(var in facts.read_only2),
            "production-aggressive"
            if var in labeling.read_only_vars
            else "production-conservative",
        )

    # Labels (the fact the engines consume).
    for ref in region.references:
        prod_idem = labeling.is_idempotent(ref)
        chk_idem = facts.idempotent2(ref.uid)
        if prod_idem == chk_idem:
            continue
        if prod_idem and not chk_idem:
            add(
                "label",
                ref.uid,
                "idempotent",
                "speculative",
                "production-aggressive",
                detail=ref.describe(),
            )
        else:
            add(
                "label",
                ref.uid,
                "speculative",
                "idempotent",
                "production-conservative",
                detail=ref.describe(),
            )
    return diffs
