"""Reference idempotency analysis (the paper's primary contribution).

* :mod:`repro.idempotency.rfw` -- Algorithm 1: re-occurring first write
  (RFW) analysis over the segment control-flow graph (Definition 5).
* :mod:`repro.idempotency.labeling` -- Algorithm 2: labeling of
  idempotent references from the read-only / private / RFW /
  dependence facts, implementing Theorems 1 and 2.
* :mod:`repro.idempotency.report` -- per-region and per-program
  reports: static and dynamic reference counts by idempotency category
  (the quantities plotted in Figures 5-9).

The labels are validated end to end by the speculative engines
(:mod:`repro.runtime.engines`): the CASE engine routes idempotent
references past speculative storage and must still produce final memory
states bit-identical to the sequential interpreter.
"""

from repro.idempotency.rfw import RFWResult, analyze_rfw
from repro.idempotency.labeling import LabelingResult, label_region
from repro.idempotency.report import (
    CategoryCounts,
    count_static_references,
    count_dynamic_references,
)

__all__ = [
    "CategoryCounts",
    "LabelingResult",
    "RFWResult",
    "analyze_rfw",
    "count_dynamic_references",
    "count_static_references",
    "label_region",
]
