"""Parameterized synthetic workload generator.

Four loop-nest families, modelled on the kernel shapes of the paper's
evaluation suite (SPEC CFP95-style Fortran nests), each generated as DSL
text and parsed through the regular front end so the benchmark exercises
the whole pipeline:

``stencil``
    An in-place SOR-style 5-point relaxation sweep (the update reads
    the array it writes, like the APPLU/SOR nests of the paper's
    suite).  ``statements`` unrolled update statements share a handful
    of subscript signatures, which is what the signature-bucketed
    analysis fast path exploits; the neighbour reads carry real
    loop-carried dependences.
``reduction``
    Per-iteration dot-product accumulations ``c(k) += a(i, k) * b(i)``
    -- dense intra-segment flow/anti/output dependence chains.
``sparse``
    A CSR-like gather ``y(k) += v(t, k) * x(col(t, k))`` -- the
    subscripted subscript defeats the affine subscript tests (forced
    may-dependences) and exercises the executor's value-dependent
    address path.
``guarded``
    Conditional updates under ``mod``-guards plus a masked write --
    conditional references for the must-define / exposed-read analysis.

Every family takes two knobs: ``size`` scales the dynamic work (trip
counts / array extents) and ``statements`` scales the static body (and
with it the number of references the analysis must classify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.ir.dsl import parse_program
from repro.ir.program import Program


@dataclass(frozen=True)
class Workload:
    """One generated benchmark program plus its metadata."""

    family: str
    size: int
    statements: int
    source: str
    program: Program

    @property
    def region(self):
        return self.program.regions[0]


# ----------------------------------------------------------------------
# Family generators (DSL text)
# ----------------------------------------------------------------------
def _stencil_source(size: int, statements: int) -> str:
    n = max(size, 8)
    lines = [
        "program bench_stencil",
        f"  real a({n}, {n}) = 1.5",
        f"  region STENCIL do j = 2, {n - 1}",
        f"    do i = 2, {n - 1}",
    ]
    for s in range(statements):
        w = 0.25 + 0.01 * s
        lines.append(
            f"      a(i, j) = {w} * (a(i-1, j) + a(i+1, j) "
            f"+ a(i, j-1) + a(i, j+1))"
        )
    lines.append("    end do")
    lines.append("    liveout a")
    lines.append("  end region")
    lines.append("end program")
    return "\n".join(lines)


def _reduction_source(size: int, statements: int) -> str:
    n = max(size, 8)
    inner = 16
    lines = [
        "program bench_reduction",
        f"  real a({inner}, {n}) = 0.5, b({inner}) = 1.5, c({n})",
        f"  region REDUCE do k = 1, {n}",
        f"    do i = 1, {inner}",
    ]
    for s in range(statements):
        lines.append(f"      c(k) = c(k) + a(i, k) * b(i) + {0.001 * s}")
    lines.append("    end do")
    lines.append("    liveout c")
    lines.append("  end region")
    lines.append("end program")
    return "\n".join(lines)


def _sparse_source(size: int, statements: int) -> str:
    n = max(size, 8)
    row = 8
    lines = [
        "program bench_sparse",
        f"  real y({n}), v({row}, {n}) = 1.25, x({n}) = 2.0",
        f"  integer col({row}, {n}) = 1",
        f"  region GATHER do k = 2, {n}",
        f"    do t = 1, {row}",
    ]
    for s in range(statements):
        lines.append(
            f"      y(k) = y(k) + v(t, k) * x(col(t, k)) + {0.001 * s} * y(k-1)"
        )
    lines.append("    end do")
    lines.append("    liveout y")
    lines.append("  end region")
    lines.append("end program")
    return "\n".join(lines)


def _guarded_source(size: int, statements: int) -> str:
    n = max(size, 8)
    lines = [
        "program bench_guarded",
        f"  real x({n}) = 1.0, m({n})",
        f"  region GUARDED do k = 2, {n}",
        "    do t = 1, 8",
    ]
    for s in range(statements):
        parity = s % 2
        lines.append(
            f"      if (mod(t + {parity}, 2) > 0) "
            f"x(k) = x(k) + {0.25 + 0.01 * s} * x(k-1)"
        )
    lines.append("      m(k) = x(k) * 0.5")
    lines.append("    end do")
    lines.append("    liveout x, m")
    lines.append("  end region")
    lines.append("end program")
    return "\n".join(lines)


_GENERATORS: Dict[str, Callable[[int, int], str]] = {
    "stencil": _stencil_source,
    "reduction": _reduction_source,
    "sparse": _sparse_source,
    "guarded": _guarded_source,
}

FAMILIES: Tuple[str, ...] = tuple(_GENERATORS)

#: Default dynamic sizes per family (chosen so one sequential execution
#: stays in the hundreds of milliseconds at default statement counts).
DEFAULT_SIZES: Dict[str, int] = {
    "stencil": 96,
    "reduction": 4096,
    "sparse": 4096,
    "guarded": 4096,
}

DEFAULT_STATEMENTS = 12
SMOKE_SIZE = 16
SMOKE_STATEMENTS = 3


def generate(family: str, size: int, statements: int = DEFAULT_STATEMENTS) -> Workload:
    """Generate and parse one workload."""
    try:
        generator = _GENERATORS[family]
    except KeyError:
        raise ValueError(
            f"unknown workload family {family!r}; have {sorted(_GENERATORS)}"
        ) from None
    source = generator(size, statements)
    return Workload(
        family=family,
        size=size,
        statements=statements,
        source=source,
        program=parse_program(source),
    )


def generate_suite(
    size: int = 0,
    statements: int = DEFAULT_STATEMENTS,
    families: Tuple[str, ...] = FAMILIES,
) -> List[Workload]:
    """Generate all requested families.

    ``size == 0`` selects each family's default size; any other value
    is used verbatim for every family.
    """
    out = []
    for family in families:
        family_size = size if size else DEFAULT_SIZES[family]
        out.append(generate(family, family_size, statements))
    return out
