"""HOSE vs CASE speculative-storage scenario (the paper's headline).

For every workload family, run the hardware-only engine (HOSE) and the
compiler-assisted engine (CASE) over a sweep of speculative-storage
capacities and report the pressure metrics the paper's evaluation is
about: entries committed from speculative storage, occupancy high-water
marks, overflow stalls, violations and rollbacks.  CASE consumes the
idempotency labels of Algorithm 2, so idempotent references never
occupy buffer entries -- the expected shape is CASE at or below HOSE on
every storage metric, with the gap widening as the idempotent fraction
grows.

Every engine run is checked bit-for-bit against the sequential
interpreter (``matches_sequential``); a mismatch in the report is a
correctness bug, not noise.  :func:`verify_engines` packages that check
as a standalone pass for CI.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.bench.workloads import DEFAULT_SIZES, FAMILIES, Workload, generate
from repro.runtime.engines import CASEEngine, HOSEEngine, SpeculativeResult
from repro.runtime.interpreter import run_program

#: Per-segment buffer capacities swept by the scenario.
ENGINE_CAPACITIES: Tuple[int, ...] = (4, 16, 64)
#: Dynamic size of the engine workloads.  The engines simulate an
#: age-ordered round-robin op interleave in pure Python, so the
#: scenario uses smaller programs than the throughput measurements.
ENGINE_SIZE = 24
ENGINE_SMOKE_SIZE = 10
ENGINE_STATEMENTS = 3
ENGINE_WINDOW = 4
#: Throughput comparison (batched vs op-interleaved replay).  The
#: batched protocol makes the full workload sizes tractable for the
#: engines, so the full sweep runs at ``DEFAULT_SIZES``; the smoke
#: sweep sticks to the families/sizes the ``--check-batch`` gate needs.
BATCH_THROUGHPUT_CAPACITY = 64
BATCH_SMOKE_SIZE = 512
BATCH_SMOKE_FAMILIES: Tuple[str, ...] = ("reduction",)


def _engine_row(result: SpeculativeResult, matches: bool) -> Dict:
    stats = result.stats
    return {
        "commit_entries": stats.commit_entries,
        "spec_peak_entries": result.spec_peak_entries,
        "spec_peak_segment_entries": result.spec_peak_segment_entries,
        "overflow_stalls": stats.overflow_stalls,
        "overflow_entries": stats.overflow_entries,
        "violations": stats.violations,
        "rollbacks": stats.rollbacks,
        "wasted_cycles": stats.wasted_cycles,
        "speculative_accesses": stats.speculative_accesses,
        "idempotent_accesses": stats.idempotent_accesses,
        "private_accesses": stats.private_accesses,
        "segments_committed": stats.segments_committed,
        "batched_attempts": stats.batched_attempts,
        "batch_fallbacks": stats.batch_fallbacks,
        "batch_violations": stats.batch_violations,
        "matches_sequential": matches,
    }


def measure_engine_family(
    workload: Workload,
    capacities: Sequence[int] = ENGINE_CAPACITIES,
    window: int = ENGINE_WINDOW,
    batch: bool = True,
) -> Dict:
    """HOSE vs CASE storage pressure for one workload, per capacity."""
    sequential = run_program(workload.program, model_latency=False)
    entry: Dict = {
        "family": workload.family,
        "size": workload.size,
        "statements": workload.statements,
        "window": window,
        "capacities": {},
    }
    # Labels do not depend on the buffer capacity; one shared cache
    # labels the program once and every CASE run reuses the result.
    analysis_cache = AnalysisCache()
    for capacity in capacities:
        row: Dict[str, Dict] = {}
        for name, engine_cls in (("hose", HOSEEngine), ("case", CASEEngine)):
            kwargs = {"window": window, "capacity": capacity, "batch": batch}
            if engine_cls is CASEEngine:
                kwargs["cache"] = analysis_cache
            result = engine_cls(workload.program, **kwargs).run()
            # A degraded run re-executed sequentially, so its memory
            # trivially matches -- flag it, it means the speculative
            # engine itself failed.
            matches = not result.degraded and not sequential.memory.differences(
                result.memory, tolerance=0.0
            )
            row[name] = _engine_row(result, matches)
        row["case_vs_hose_commit_entries"] = (
            row["case"]["commit_entries"] - row["hose"]["commit_entries"]
        )
        entry["capacities"][str(capacity)] = row
    return entry


def measure_engines(
    size: int = ENGINE_SIZE,
    statements: int = ENGINE_STATEMENTS,
    families: Sequence[str] = FAMILIES,
    capacities: Sequence[int] = ENGINE_CAPACITIES,
    window: int = ENGINE_WINDOW,
    batch: bool = True,
) -> Dict[str, Dict]:
    """The whole scenario: every family, every capacity."""
    return {
        family: measure_engine_family(
            generate(family, size, statements),
            capacities=capacities,
            window=window,
            batch=batch,
        )
        for family in families
    }


def measure_engine_throughput(
    families: Sequence[str] = FAMILIES,
    size: int = 0,
    window: int = ENGINE_WINDOW,
    capacity: Optional[int] = BATCH_THROUGHPUT_CAPACITY,
    engine: str = "case",
) -> Dict:
    """Engine-simulation throughput: batched vs op-interleaved replay.

    Runs each family once per mode on one engine and reports simulated
    memory operations per wall-clock second plus the batched/interleaved
    speedup (and its geometric mean over the swept families).  Every run
    is checked bit-for-bit against the sequential interpreter.
    ``size=0`` uses the per-family ``DEFAULT_SIZES`` -- the scale the
    op-interleaved engines could never afford, which is the point of the
    batched protocol.
    """
    engine_cls = {"hose": HOSEEngine, "case": CASEEngine}[engine]
    section: Dict = {
        "engine": engine,
        "window": window,
        "capacity": capacity,
        "families": {},
    }
    ratios: List[float] = []
    for family in families:
        family_size = size if size else DEFAULT_SIZES[family]
        workload = generate(family, family_size)
        sequential = run_program(workload.program, model_latency=False)
        analysis_cache = AnalysisCache()
        row: Dict = {"size": family_size}
        for label, batch in (("interleaved", False), ("batched", True)):
            kwargs = {"window": window, "capacity": capacity, "batch": batch}
            if engine_cls is CASEEngine:
                kwargs["cache"] = analysis_cache
            started = time.perf_counter()
            result = engine_cls(workload.program, **kwargs).run()
            seconds = time.perf_counter() - started
            stats = result.stats
            ops = stats.reads + stats.writes
            matches = not result.degraded and not sequential.memory.differences(
                result.memory, tolerance=0.0
            )
            side = {
                "ops": ops,
                "seconds": round(seconds, 4),
                "ops_per_s": round(ops / seconds, 1) if seconds > 0 else 0.0,
                "matches_sequential": matches,
            }
            if batch:
                side["batched_attempts"] = stats.batched_attempts
                side["batched_ops"] = stats.batched_ops
                side["batch_fallbacks"] = stats.batch_fallbacks
                side["batch_violations"] = stats.batch_violations
            row[label] = side
        speedup = row["batched"]["ops_per_s"] / max(
            row["interleaved"]["ops_per_s"], 1e-9
        )
        row["speedup"] = round(speedup, 2)
        ratios.append(max(speedup, 1e-9))
        section["families"][family] = row
    if ratios:
        section["speedup_geomean"] = round(
            math.exp(sum(map(math.log, ratios)) / len(ratios)), 2
        )
    return section


def check_batch_throughput(section: Optional[Dict]) -> List[str]:
    """CI invariant for ``--check-batch``: on ``reduction`` the batched
    engine must beat the op-interleaved one in simulated ops/s, and both
    modes must match the sequential interpreter bit for bit."""
    families = (section or {}).get("families", {})
    row = families.get("reduction")
    if row is None:
        return [
            "the batch-throughput check needs the reduction family in "
            "the engine throughput sweep (run without --families "
            "filters that exclude it, and without --no-batch)"
        ]
    failures: List[str] = []
    for label in ("interleaved", "batched"):
        if not row[label]["matches_sequential"]:
            failures.append(
                f"reduction: {label} engine run diverged from the "
                f"sequential interpreter"
            )
    batched = row["batched"]["ops_per_s"]
    interleaved = row["interleaved"]["ops_per_s"]
    if batched <= interleaved:
        failures.append(
            f"reduction: batched engine throughput {batched:,.0f} ops/s "
            f"does not beat interleaved {interleaved:,.0f} ops/s"
        )
    return failures


def verify_engines(
    size: int = ENGINE_SMOKE_SIZE,
    statements: int = 2,
    families: Sequence[str] = FAMILIES,
    windows: Sequence[int] = (1, ENGINE_WINDOW),
    capacities: Sequence[Optional[int]] = (4, 64),
    batch_modes: Sequence[bool] = (False, True),
) -> List[str]:
    """Engine-equivalence check: HOSE/CASE final state vs sequential.

    Returns a list of human-readable failure descriptions (empty =
    everything bit-identical).  Used by ``python -m repro.bench
    --verify-engines`` and the CI smoke step.  ``batch_modes`` sweeps
    the replay protocol too, so the batched path is held to the same
    equivalence bar as the op-interleaved one.
    """
    failures: List[str] = []
    for family in families:
        workload = generate(family, size, statements)
        sequential = run_program(workload.program, model_latency=False)
        analysis_cache = AnalysisCache()
        for engine_cls in (HOSEEngine, CASEEngine):
            for window in windows:
                for capacity in capacities:
                    for batch in batch_modes:
                        kwargs = {
                            "window": window,
                            "capacity": capacity,
                            "batch": batch,
                        }
                        if engine_cls is CASEEngine:
                            kwargs["cache"] = analysis_cache
                        result = engine_cls(workload.program, **kwargs).run()
                        mode = "batched" if batch else "interleaved"
                        if result.degraded:
                            report = result.degradation
                            failures.append(
                                f"{family}: {engine_cls.engine_name} "
                                f"(window={window}, capacity={capacity}, "
                                f"{mode}) degraded to sequential execution "
                                f"({report.error_type}: {report.reason})"
                            )
                            continue
                        diffs = sequential.memory.differences(
                            result.memory, tolerance=0.0
                        )
                        if diffs:
                            sample = sorted(diffs.items())[:3]
                            failures.append(
                                f"{family}: {engine_cls.engine_name} "
                                f"(window={window}, capacity={capacity}, "
                                f"{mode}) diverges from sequential at "
                                f"{len(diffs)} addresses, e.g. {sample}"
                            )
    return failures
