"""Speculative engine tests.

The acceptance bar: HOSE and CASE produce final memory states
bit-identical to the sequential interpreter on every workload family
(across window sizes and buffer capacities, i.e. with real violations,
rollbacks and overflow stalls in play), and CASE's labels measurably
reduce speculative-storage pressure.
"""

import pytest

from repro.bench.engines import measure_engine_family, verify_engines
from repro.bench.workloads import FAMILIES, generate
from repro.ir.dsl import parse_program
from repro.runtime.engines import (
    CASEEngine,
    HOSEEngine,
    run_speculative,
)
from repro.runtime.errors import SimulationError
from repro.runtime.interpreter import run_program


def assert_equivalent(program, engine_cls, sequential=None, **kwargs):
    if sequential is None:
        sequential = run_program(program, model_latency=False)
    result = engine_cls(program, **kwargs).run()
    # A degraded run re-executed sequentially, which would hide any
    # engine bug behind trivially-matching memory.
    assert not result.degraded, (
        f"{engine_cls.engine_name} degraded ({kwargs}): "
        f"{result.degradation}"
    )
    diffs = sequential.memory.differences(result.memory, tolerance=0.0)
    assert diffs == {}, (
        f"{engine_cls.engine_name} diverged "
        f"({kwargs}): {sorted(diffs.items())[:5]}"
    )
    return result


# ----------------------------------------------------------------------
# Bit-identity on the four bench families.
# ----------------------------------------------------------------------
class TestEquivalenceOnBenchFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("engine_cls", [HOSEEngine, CASEEngine])
    def test_final_state_bit_identical(self, family, engine_cls):
        workload = generate(family, 14, 3)
        sequential = run_program(workload.program, model_latency=False)
        for window in (1, 3):
            for capacity in (4, 64, None):
                assert_equivalent(
                    workload.program,
                    engine_cls,
                    sequential=sequential,
                    window=window,
                    capacity=capacity,
                )

    def test_verify_engines_reports_no_failures(self):
        assert verify_engines(size=10, statements=2) == []


# ----------------------------------------------------------------------
# Speculation counters.
# ----------------------------------------------------------------------
class TestSpeculationStats:
    def test_violations_and_rollbacks_on_carried_dependences(self):
        # The stencil updates in place: younger iterations read
        # locations older iterations write, so a multi-segment window
        # must detect violations and roll back.
        workload = generate("stencil", 14, 3)
        result = assert_equivalent(
            workload.program, HOSEEngine, window=3, capacity=None
        )
        stats = result.stats
        assert stats.violations > 0
        assert stats.rollbacks >= stats.violations
        assert stats.wasted_cycles > 0
        assert stats.segments_started > stats.segments_committed

    def test_window_one_never_violates(self):
        workload = generate("stencil", 14, 3)
        result = assert_equivalent(
            workload.program, HOSEEngine, window=1, capacity=None
        )
        assert result.stats.violations == 0
        assert result.stats.rollbacks == 0
        assert result.stats.wasted_cycles == 0

    def test_overflow_stalls_with_tiny_capacity(self):
        workload = generate("stencil", 14, 3)
        result = assert_equivalent(
            workload.program, HOSEEngine, window=2, capacity=2
        )
        stats = result.stats
        assert stats.overflow_stalls > 0
        assert stats.overflow_entries > 0

    def test_commit_entries_and_segments(self):
        workload = generate("reduction", 12, 2)
        result = assert_equivalent(
            workload.program, HOSEEngine, window=2, capacity=None
        )
        stats = result.stats
        trip = workload.region.constant_trip_count()
        assert stats.segments_committed == trip
        assert stats.commit_entries > 0
        assert result.spec_peak_entries > 0

    def test_hose_routes_everything_speculatively(self):
        workload = generate("reduction", 12, 2)
        result = assert_equivalent(
            workload.program, HOSEEngine, window=2, capacity=None
        )
        assert result.stats.idempotent_accesses == 0
        assert result.stats.private_accesses == 0
        assert result.stats.speculative_accesses > 0


# ----------------------------------------------------------------------
# CASE consumes the labels: less speculative-storage pressure.
# ----------------------------------------------------------------------
class TestCaseReducesPressure:
    @pytest.mark.parametrize("family", ["reduction", "guarded", "sparse"])
    def test_strictly_fewer_storage_entries_than_hose(self, family):
        workload = generate(family, 14, 3)
        hose = assert_equivalent(
            workload.program, HOSEEngine, window=3, capacity=None
        )
        case = assert_equivalent(
            workload.program, CASEEngine, window=3, capacity=None
        )
        assert case.stats.idempotent_accesses > 0
        assert case.spec_peak_entries < hose.spec_peak_entries
        assert case.stats.commit_entries <= hose.stats.commit_entries
        # At least one family must show a strict commit-entry win.
        if family == "reduction":
            assert case.stats.commit_entries < hose.stats.commit_entries

    def test_fully_independent_region_needs_no_storage(self):
        workload = generate("reduction", 12, 2)
        case = assert_equivalent(
            workload.program, CASEEngine, window=3, capacity=None
        )
        assert case.stats.commit_entries == 0
        assert case.spec_peak_entries == 0
        assert case.stats.violations == 0
        labeling = case.labeling[workload.region.name]
        assert labeling.fully_independent

    def test_private_references_served_from_private_frame(self):
        src = """
program priv
  real a(16), b(16) = 1.0, s, t
  region R do k = 2, 16
    t = b(k) * 2
    a(k) = t + 1
    s = s + a(k-1)
    liveout a, s
  end region
end program
"""
        program = parse_program(src)
        case = assert_equivalent(program, CASEEngine, window=3, capacity=None)
        assert case.stats.private_accesses > 0
        # The committed private frame leaves the same final t as the
        # sequential run (checked by assert_equivalent), and t never
        # occupies speculative storage.
        labeling = case.labeling["R"]
        assert "t" in labeling.private_vars

    def test_precomputed_labeling_is_consumed(self):
        from repro.idempotency.labeling import label_program

        workload = generate("guarded", 12, 2)
        labeling = label_program(workload.program)
        case = CASEEngine(
            workload.program, labeling=labeling, window=3, capacity=None
        ).run()
        sequential = run_program(workload.program, model_latency=False)
        assert sequential.memory.differences(case.memory, tolerance=0.0) == {}
        assert case.labeling[workload.region.name] is (
            labeling[workload.region.name]
        )


# ----------------------------------------------------------------------
# Explicit regions: control speculation.
# ----------------------------------------------------------------------
EXPLICIT_SRC = """
program fig3
  real a = {a_init}, b = 2.0, c, d, e
  region R explicit
    segment R0
      c = a + b
      branch (c > 2.5)
    end segment
    segment R1
      d = c * 2.0
    end segment
    segment R2
      d = c - 1.0
    end segment
    segment R3
      e = d + a
    end segment
    edges R0 -> R1, R2
    edges R1 -> R3
    edges R2 -> R3
    liveout d, e
  end region
end program
"""


class TestExplicitRegions:
    @pytest.mark.parametrize("engine_cls", [HOSEEngine, CASEEngine])
    def test_correct_prediction_commits_cleanly(self, engine_cls):
        program = parse_program(EXPLICIT_SRC.format(a_init=1.0))
        for window in (1, 2, 4):
            result = assert_equivalent(
                program, engine_cls, window=window, capacity=8
            )
            assert result.stats.control_mispredictions == 0
            assert result.stats.segments_committed == 3

    @pytest.mark.parametrize("engine_cls", [HOSEEngine, CASEEngine])
    def test_misprediction_squashes_wrong_path(self, engine_cls):
        # a = 0.1 makes the branch take the *second* successor; the
        # engine predicts the first, so a window > 1 must mispredict.
        program = parse_program(EXPLICIT_SRC.format(a_init=0.1))
        result = assert_equivalent(program, engine_cls, window=4, capacity=8)
        assert result.stats.control_mispredictions == 1
        assert result.stats.rollbacks > 0
        assert result.stats.segments_committed == 3

    @pytest.mark.parametrize("engine_cls", [HOSEEngine, CASEEngine])
    def test_cyclic_region_terminates_and_matches(self, engine_cls):
        src = """
program cyc
  real s, i
  region LOOP explicit
    segment BODY
      s = s + 1.0
      i = i + 1.0
      branch (i < 5)
    end segment
    edges BODY -> BODY, <exit>
    liveout s, i
  end region
end program
"""
        program = parse_program(src)
        for window in (1, 2, 4):
            result = assert_equivalent(
                program, engine_cls, window=window, capacity=8
            )
            assert result.stats.segments_committed == 5
            assert result.value_of("s") == 5.0


# ----------------------------------------------------------------------
# Engine plumbing.
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_run_speculative_dispatch(self):
        workload = generate("reduction", 10, 2)
        result = run_speculative(workload.program, engine="hose", window=2)
        assert result.engine == "hose"
        with pytest.raises(ValueError):
            run_speculative(workload.program, engine="nonsense")

    def test_op_budget_enforced(self):
        workload = generate("reduction", 12, 2)
        with pytest.raises(SimulationError):
            HOSEEngine(workload.program, window=2, op_budget=3).run()

    def test_latency_model_accumulates_cycles(self):
        workload = generate("reduction", 10, 2)
        plain = HOSEEngine(workload.program, window=2).run()
        modelled = HOSEEngine(
            workload.program, window=2, model_latency=True
        ).run()
        assert modelled.stats.cycles > plain.stats.cycles

    def test_init_and_finale_run_non_speculatively(self):
        src = """
program wrap
  real a(8), total
  init
    do i = 1, 8
      a(i) = i
    end do
  end init
  region R do k = 1, 8
    a(k) = a(k) * 2
    liveout a
  end region
  finale
    total = a(1) + a(8)
  end finale
end program
"""
        program = parse_program(src)
        for engine_cls in (HOSEEngine, CASEEngine):
            result = assert_equivalent(program, engine_cls, window=3)
            assert result.value_of("total") == 2.0 + 16.0


# ----------------------------------------------------------------------
# The bench scenario row shape.
# ----------------------------------------------------------------------
class TestEngineBenchScenario:
    def test_measure_engine_family_rows(self):
        workload = generate("reduction", 10, 2)
        entry = measure_engine_family(workload, capacities=(4, 64), window=2)
        assert set(entry["capacities"]) == {"4", "64"}
        for row in entry["capacities"].values():
            for side in ("hose", "case"):
                assert row[side]["matches_sequential"] is True
            assert (
                row["case_vs_hose_commit_entries"]
                == row["case"]["commit_entries"] - row["hose"]["commit_entries"]
            )
        full = entry["capacities"]["64"]
        assert full["case"]["commit_entries"] < full["hose"]["commit_entries"]
