"""Idempotency labeling -- Algorithm 2 (Theorems 1 and 2).

Given a region, the labeling pipeline runs the prerequisite analyses
(read-only variables, per-segment access summaries, liveness,
privatization, reference-by-reference may-dependences, RFW analysis) and
then assigns every memory reference a label:

* ``SPECULATIVE`` -- tracked in speculative storage, exactly as in HOSE;
* ``IDEMPOTENT``  -- bypasses speculative storage (Definition 4).

The rules are those of Algorithm 2:

1. If the region has no cross-segment data or control dependences it is
   *fully independent* (Lemma 7) and every reference is idempotent.
2. Otherwise:
   * references to read-only variables are idempotent (Lemma 4),
   * references to private variables are idempotent,
   * a write is idempotent iff it is a re-occurring first write and not
     the sink of a cross-segment dependence (Theorem 1),
   * a read is idempotent iff it is not the sink of any dependence, or
     every dependence it sinks is intra-segment with an
     already-idempotent write as its source (Theorem 2, Lemma 6).

Each idempotent reference also receives the reporting category of
Section 4.1 (read-only / private / shared-dependent, or
fully-independent when rule 1 fired).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.access import AccessSummary, summarize_region_segments
from repro.analysis.cache import AnalysisCache
from repro.analysis.control_dependence import has_cross_segment_control_dependence
from repro.analysis.dependence import (
    DependenceGranularity,
    DependenceGraph,
    DirectionMode,
    analyze_dependences,
)
from repro.analysis.liveness import region_live_out
from repro.analysis.privatization import private_variables
from repro.analysis.readonly import read_only_variables
from repro.idempotency.rfw import RFWResult, analyze_rfw
from repro.obs.tracer import _NULL_SPAN, TRACER, Tracer
from repro.ir.program import Program
from repro.ir.reference import MemoryReference
from repro.ir.region import Region
from repro.ir.types import AccessType, IdempotencyCategory, RefLabel


@dataclass
class LabelingResult:
    """Labels, categories and all supporting analysis facts for one region."""

    region: Region
    labels: Dict[str, RefLabel]
    categories: Dict[str, IdempotencyCategory]
    fully_independent: bool
    read_only_vars: Set[str]
    private_vars: Set[str]
    live_out: Set[str]
    rfw: RFWResult
    dependences: DependenceGraph
    summaries: Dict[str, AccessSummary] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def label_of(self, ref: MemoryReference) -> RefLabel:
        """Label of one reference (defaults to speculative)."""
        return self.labels.get(ref.uid, RefLabel.SPECULATIVE)

    def category_of(self, ref: MemoryReference) -> IdempotencyCategory:
        """Reporting category of one reference."""
        return self.categories.get(ref.uid, IdempotencyCategory.NOT_IDEMPOTENT)

    def is_idempotent(self, ref: MemoryReference) -> bool:
        return self.label_of(ref) is RefLabel.IDEMPOTENT

    def idempotent_references(self) -> List[MemoryReference]:
        return [r for r in self.region.references if self.is_idempotent(r)]

    def speculative_references(self) -> List[MemoryReference]:
        return [r for r in self.region.references if not self.is_idempotent(r)]

    def static_fraction_idempotent(self) -> float:
        """Fraction of textual references labeled idempotent."""
        total = len(self.region.references)
        if total == 0:
            return 0.0
        return len(self.idempotent_references()) / total

    def counts_by_category(self) -> Dict[IdempotencyCategory, int]:
        """Static reference counts per category (speculative included)."""
        counts: Dict[IdempotencyCategory, int] = {}
        for ref in self.region.references:
            cat = self.category_of(ref)
            counts[cat] = counts.get(cat, 0) + 1
        return counts

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"region {self.region.name}:",
            f"  fully independent : {self.fully_independent}",
            f"  read-only vars    : {sorted(self.read_only_vars)}",
            f"  private vars      : {sorted(self.private_vars)}",
            f"  live-out          : {sorted(self.live_out)}",
            f"  cross-segment deps: {len(self.dependences.cross_segment_dependences())}",
            f"  idempotent refs   : {len(self.idempotent_references())} / "
            f"{len(self.region.references)}",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
def label_region(
    region: Region,
    program: Optional[Program] = None,
    live_out: Optional[Set[str]] = None,
    granularity: DependenceGranularity = DependenceGranularity.ELEMENT,
    direction: DirectionMode = DirectionMode.EXECUTION,
    fast_path: bool = True,
    cache: Optional[AnalysisCache] = None,
) -> LabelingResult:
    """Run the full labeling pipeline (Algorithm 2) on one region.

    ``live_out`` may be supplied directly; otherwise an explicit
    declaration on the region (``liveout`` in the DSL) takes precedence,
    then liveness computed from ``program`` context, and finally the
    conservative fallback "every written variable is live" when neither
    is available.

    ``fast_path`` toggles the signature-bucketed dependence analysis
    (identical labels either way); a shared ``cache`` lets repeated
    labeling passes over the same region reuse the read-only sets,
    access summaries, dependence graphs and RFW results instead of
    recomputing them.

    With tracing armed (:data:`repro.obs.tracer.TRACER`) the pipeline
    emits one ``analysis.label_region`` span with a child span per
    phase (access / liveness / dependence / rfw / labeling); disabled,
    the only cost is this single ``enabled`` check.
    """
    if not TRACER.enabled:
        return _label_region(
            region, program, live_out, granularity, direction, fast_path, cache, None
        )
    with TRACER.span(
        "analysis.label_region", category="analysis", region=region.name
    ):
        return _label_region(
            region, program, live_out, granularity, direction, fast_path, cache, TRACER
        )


def _label_region(
    region: Region,
    program: Optional[Program],
    live_out: Optional[Set[str]],
    granularity: DependenceGranularity,
    direction: DirectionMode,
    fast_path: bool,
    cache: Optional[AnalysisCache],
    obs: Optional[Tracer],
) -> LabelingResult:
    # ``obs`` is the armed tracer or None; the conditional expressions
    # below keep the disabled path free of span construction (kwargs
    # dicts and tracer calls) — the bench gates this at <= 2% overhead.
    with (
        obs.span("analysis.access", category="analysis", region=region.name)
        if obs is not None
        else _NULL_SPAN
    ):
        if cache is not None:
            read_only = cache.get_or_compute(
                region, "read_only", lambda: read_only_variables(region)
            )
            summaries = cache.get_or_compute(
                region,
                ("summaries", frozenset(read_only)),
                lambda: summarize_region_segments(region, read_only_vars=read_only),
            )
        else:
            read_only = read_only_variables(region)
            summaries = summarize_region_segments(region, read_only_vars=read_only)

    with (
        obs.span("analysis.liveness", category="analysis", region=region.name)
        if obs is not None
        else _NULL_SPAN
    ):
        if live_out is None:
            # The declared set wins over anything derived from the program
            # (region_live_out applies the same precedence internally; the
            # explicit branch keeps the contract visible here and correct
            # even without program context).
            if region.live_out is not None:
                live_out = set(region.live_out)
            elif program is not None:
                live_out = region_live_out(program, region)
            else:
                live_out = {
                    ref.variable
                    for ref in region.references
                    if ref.access is AccessType.WRITE
                }

    with (
        obs.span("analysis.dependence", category="analysis", region=region.name)
        if obs is not None
        else _NULL_SPAN
    ):
        private = private_variables(region, live_out, summaries)
        dependences = analyze_dependences(
            region,
            private_variables=private,
            read_only=read_only,
            granularity=granularity,
            direction=direction,
            fast_path=fast_path,
            cache=cache,
        )
    with (
        obs.span("analysis.rfw", category="analysis", region=region.name)
        if obs is not None
        else _NULL_SPAN
    ):
        if cache is not None:
            rfw = cache.get_or_compute(
                region,
                ("rfw", frozenset(live_out), frozenset(read_only)),
                lambda: analyze_rfw(
                    region, live_out, summaries=summaries, read_only=read_only
                ),
            )
        else:
            rfw = analyze_rfw(
                region, live_out, summaries=summaries, read_only=read_only
            )
    with (
        obs.span("analysis.labeling", category="analysis", region=region.name)
        if obs is not None
        else _NULL_SPAN
    ):
        control_dep = has_cross_segment_control_dependence(region)
        fully_independent = (
            not dependences.has_cross_segment_dependences() and not control_dep
        )

        labels: Dict[str, RefLabel] = {
            ref.uid: RefLabel.SPECULATIVE for ref in region.references
        }
        categories: Dict[str, IdempotencyCategory] = {
            ref.uid: IdempotencyCategory.NOT_IDEMPOTENT for ref in region.references
        }

        def mark_idempotent(ref: MemoryReference, category: IdempotencyCategory) -> None:
            labels[ref.uid] = RefLabel.IDEMPOTENT
            categories[ref.uid] = category

        if fully_independent:
            # Lemma 7: no roll-backs can occur, every reference is idempotent.
            for ref in region.references:
                if ref.variable in read_only:
                    mark_idempotent(ref, IdempotencyCategory.READ_ONLY)
                elif ref.variable in private:
                    mark_idempotent(ref, IdempotencyCategory.PRIVATE)
                else:
                    mark_idempotent(ref, IdempotencyCategory.FULLY_INDEPENDENT)
            return LabelingResult(
                region=region,
                labels=labels,
                categories=categories,
                fully_independent=True,
                read_only_vars=read_only,
                private_vars=private,
                live_out=set(live_out),
                rfw=rfw,
                dependences=dependences,
                summaries=summaries,
            )

        # Dependent region: Algorithm 2, step 3.
        for ref in region.references:
            if ref.variable in read_only:
                mark_idempotent(ref, IdempotencyCategory.READ_ONLY)
            elif ref.variable in private:
                mark_idempotent(ref, IdempotencyCategory.PRIVATE)

        # Idempotent writes (Theorem 1): RFW and not a cross-segment sink.
        for ref in region.references:
            if ref.access is not AccessType.WRITE:
                continue
            if labels[ref.uid] is RefLabel.IDEMPOTENT:
                continue
            if rfw.is_rfw(ref) and not dependences.is_cross_segment_sink(ref):
                mark_idempotent(ref, IdempotencyCategory.SHARED_DEPENDENT)

        # Idempotent reads (Theorem 2): no dependences sink into the read, or
        # everything sinking into it is intra-segment with an idempotent source.
        for ref in region.references:
            if ref.access is not AccessType.READ:
                continue
            if labels[ref.uid] is RefLabel.IDEMPOTENT:
                continue
            sink_deps = dependences.deps_with_sink(ref)
            if not sink_deps:
                mark_idempotent(ref, IdempotencyCategory.SHARED_DEPENDENT)
                continue
            if all(
                not dep.is_cross_segment
                and dep.source.access is AccessType.WRITE
                and labels[dep.source.uid] is RefLabel.IDEMPOTENT
                for dep in sink_deps
            ):
                mark_idempotent(ref, IdempotencyCategory.SHARED_DEPENDENT)

        return LabelingResult(
            region=region,
            labels=labels,
            categories=categories,
            fully_independent=False,
            read_only_vars=read_only,
            private_vars=private,
            live_out=set(live_out),
            rfw=rfw,
            dependences=dependences,
            summaries=summaries,
        )


def label_program(
    program: Program,
    granularity: DependenceGranularity = DependenceGranularity.ELEMENT,
    direction: DirectionMode = DirectionMode.EXECUTION,
    fast_path: bool = True,
    cache: Optional[AnalysisCache] = None,
) -> Dict[str, LabelingResult]:
    """Label every region of ``program``; keyed by region name."""
    return {
        region.name: label_region(
            region,
            program=program,
            granularity=granularity,
            direction=direction,
            fast_path=fast_path,
            cache=cache,
        )
        for region in program.regions
    }
