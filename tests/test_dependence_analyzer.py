"""Dependence analyzer tests: granularity modes, fast path, caching."""

from repro.analysis.cache import AnalysisCache
from repro.analysis.dependence import (
    DependenceGranularity,
    analyze_dependences,
)
from repro.bench.workloads import FAMILIES, generate
from repro.idempotency.labeling import label_region
from repro.ir.dsl import parse_program


def dep_set(graph):
    return {
        (d.source.uid, d.sink.uid, d.kind.value, d.scope.value, d.distance)
        for d in graph
    }


STENCIL = """
program t
  real a(20, 20) = 1.0, b(20, 20)
  region SWEEP do j = 2, 19
    do i = 2, 19
      b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
    end do
    s(j) = s(j-1) + b(2, j)
    liveout b, s
  end region
end program
"""


class TestGranularity:
    def test_element_vs_variable(self):
        region = parse_program(STENCIL).regions[0]
        element = analyze_dependences(
            region, granularity=DependenceGranularity.ELEMENT
        )
        variable = analyze_dependences(
            region, granularity=DependenceGranularity.VARIABLE
        )
        # VARIABLE granularity treats every same-variable pair as
        # may-aliasing, so it can only add dependences.
        assert dep_set(element) <= dep_set(variable)
        assert len(variable) > len(element)

    def test_element_finds_loop_carried_recurrence(self):
        region = parse_program(STENCIL).regions[0]
        graph = analyze_dependences(region)
        cross_vars = graph.variables_with_cross_segment_dependences()
        assert "s" in cross_vars
        # b is written at b(i, j) and read at b(2, j): same j only.
        assert "b" not in cross_vars


class TestFastPathEquivalence:
    def test_identical_graphs_on_all_bench_families(self):
        for family in FAMILIES:
            region = generate(family, 24, 6).region
            slow = analyze_dependences(region, fast_path=False)
            fast = analyze_dependences(region, fast_path=True)
            assert dep_set(slow) == dep_set(fast), family

    def test_identical_labels_on_all_bench_families(self):
        for family in FAMILIES:
            region = generate(family, 24, 6).region
            slow = label_region(region, fast_path=False)
            fast = label_region(region, fast_path=True, cache=AnalysisCache())
            assert slow.labels == fast.labels, family
            assert slow.categories == fast.categories, family
            assert slow.fully_independent == fast.fully_independent, family


class TestAnalysisCache:
    def test_repeated_labeling_hits_cache(self):
        region = generate("stencil", 16, 4).region
        cache = AnalysisCache()
        first = label_region(region, cache=cache)
        misses_after_first = cache.misses
        second = label_region(region, cache=cache)
        assert second.labels == first.labels
        assert cache.misses == misses_after_first  # nothing recomputed
        assert cache.hits > 0

    def test_cache_distinguishes_granularity(self):
        region = generate("stencil", 16, 4).region
        cache = AnalysisCache()
        element = analyze_dependences(region, cache=cache)
        variable = analyze_dependences(
            region, granularity=DependenceGranularity.VARIABLE, cache=cache
        )
        assert dep_set(element) != dep_set(variable)

    def test_invalidate_drops_entries(self):
        region = generate("stencil", 16, 4).region
        cache = AnalysisCache()
        label_region(region, cache=cache)
        assert len(cache) > 0
        cache.invalidate(region)
        assert len(cache) == 0
