"""Reference-by-reference data dependence analysis.

The paper assumes (Section 4.2.1) that "a state-of-the-art compiler has
analyzed ... the data dependences of every reference in each region",
where dependences are *may*-dependences between references to the same
variable.  This subpackage provides that substrate:

* :mod:`repro.analysis.dependence.subscript` -- affine subscript
  extraction relative to the region loop index, inner loop indices and
  region-invariant symbols;
* :mod:`repro.analysis.dependence.subscript_tests` -- classic ZIV / SIV / GCD /
  Banerjee-style range tests that decide whether two references may
  touch the same location in the same or in different segments, and in
  which execution order;
* :mod:`repro.analysis.dependence.graph` -- the dependence record and
  the queryable dependence graph;
* :mod:`repro.analysis.dependence.analyzer` -- the driver that builds
  the graph for loop and explicit regions, with configurable
  granularity (element-precise vs whole-variable) and direction mode
  (execution order vs the paper's textual order).
"""

from repro.analysis.dependence.analyzer import (
    DependenceAnalyzer,
    DependenceGranularity,
    DirectionMode,
    analyze_dependences,
)
from repro.analysis.dependence.graph import Dependence, DependenceGraph
from repro.analysis.dependence.signature import (
    ReferenceSignature,
    SignatureIndex,
    signature_of,
)
from repro.analysis.dependence.subscript import AffineSubscript, extract_affine
from repro.analysis.dependence.subscript_tests import (
    AliasRelation,
    RelationSet,
    relation_of_reference_pair,
)

__all__ = [
    "AffineSubscript",
    "AliasRelation",
    "Dependence",
    "DependenceAnalyzer",
    "DependenceGranularity",
    "DependenceGraph",
    "DirectionMode",
    "ReferenceSignature",
    "RelationSet",
    "SignatureIndex",
    "analyze_dependences",
    "extract_affine",
    "signature_of",
    "relation_of_reference_pair",
]
