"""Per-segment speculative storage (the buffering substrate of HOSE).

The paper's speculative engines never let a speculative segment touch
non-speculative storage directly: every tracked reference goes through a
per-segment *speculative buffer* that holds the segment's write values
and the access information needed for violation detection (Definition
2).  This module models that substrate:

* a :class:`SegmentBuffer` -- one segment's buffered writes (address ->
  value), its *exposed-read set* (addresses whose value came from
  outside the buffer), and the set of tracked addresses that counts
  against capacity;
* a :class:`SpeculativeStore` -- all in-flight buffers ordered by
  segment *age* (sequential program order, Definition 1), with

  - **forwarding**: a read that misses its own buffer is served by the
    nearest older in-flight buffer holding the address, falling back to
    conventional memory;
  - **violation detection**: a write by an older segment reports every
    younger buffer whose exposed-read set contains the address -- those
    segments consumed a value the older segment has now changed and
    must roll back (flow-dependence violation detected against segment
    age);
  - **bounded capacity**: each buffer tracks at most ``capacity``
    distinct addresses (write values and read access-information both
    occupy entries, as lines do in cache-based speculative storage);
    an allocation past the bound is refused and the engine stalls the
    segment until it becomes the oldest, at which point the buffer can
    be drained to conventional memory;
  - **commit / squash**: committing drains the buffered values to the
    shared :class:`~repro.runtime.memory.MemoryImage` in one step (the
    segment's writes become architecturally visible atomically);
    squashing discards values and access information but keeps the
    buffer registered so the restarted segment reuses its slot.

The store also records occupancy high-water marks
(:attr:`SpeculativeStore.peak_entries`,
:attr:`SpeculativeStore.peak_segment_entries`) -- the quantities the
HOSE vs CASE benchmark scenario compares across capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.runtime.errors import SimulationError
from repro.runtime.memory import Address, MemoryImage


class SpecStoreError(SimulationError):
    """Raised for invalid speculative-store usage (engine bugs).

    Part of the :class:`~repro.runtime.errors.SimulationError`
    hierarchy: the engines treat it as a substrate failure and recover
    by degrading to sequential execution."""


@dataclass
class SegmentBuffer:
    """Speculative storage of one in-flight segment."""

    #: Printable identity of the segment occurrence (diagnostics only).
    key: Tuple
    #: Sequential program order; smaller is older (Definition 1).
    age: int
    #: Buffered write values, in first-write order.
    values: Dict[Address, float] = field(default_factory=dict)
    #: Addresses read from outside this buffer (exposed reads); the
    #: access information violation detection works from.
    read_set: Set[Address] = field(default_factory=set)
    #: All addresses occupying an entry (reads and writes both count).
    tracked: Set[Address] = field(default_factory=set)
    #: Times this buffer has been squashed (diagnostics).
    squashes: int = 0
    #: Integrity flag set by external checkers (the parity/ECC model of
    #: the fault injector) when a value served from or into this buffer
    #: is known to be corrupted.  The engine's per-round scrub squashes
    #: poisoned buffers (and everything younger); squashing clears it.
    poisoned: bool = False

    @property
    def entries(self) -> int:
        """Occupied entries (distinct tracked addresses)."""
        return len(self.tracked)

    def holds(self, address: Address) -> bool:
        """True when the buffer has a speculative value for ``address``."""
        return address in self.values


class SpeculativeStore:
    """All in-flight segment buffers of one engine, ordered by age."""

    def __init__(self, capacity: Optional[int] = 64):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        #: Per-segment entry bound (``None`` = unbounded).
        self.capacity = capacity
        self._buffers: List[SegmentBuffer] = []
        #: Running total of tracked entries across all in-flight
        #: buffers (kept incrementally; allocation is the hot path).
        self._occupancy = 0
        #: High-water marks and lifetime totals (bench reporting).
        self.peak_entries = 0
        self.peak_segment_entries = 0
        self.total_commits = 0
        self.total_committed_entries = 0
        self.total_squashed_entries = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open_segment(self, key: Tuple, age: int) -> SegmentBuffer:
        """Register a fresh buffer for a segment occurrence."""
        if self._buffers and age <= self._buffers[-1].age:
            raise SpecStoreError(
                f"segment ages must be opened in increasing order "
                f"({age} after {self._buffers[-1].age})"
            )
        buffer = SegmentBuffer(key=key, age=age)
        self._buffers.append(buffer)
        return buffer

    def commit(self, buffer: SegmentBuffer, memory: MemoryImage) -> int:
        """Drain the buffered values to ``memory``; returns entries written.

        Values land in first-write order (the order is irrelevant for the
        final state -- one value per address -- but keeps traces easy to
        read).  The buffer is deregistered.
        """
        store = memory.store
        for address, value in buffer.values.items():
            store(address, value)
        committed = len(buffer.values)
        self.total_commits += 1
        self.total_committed_entries += committed
        self._remove(buffer)
        return committed

    def squash(self, buffer: SegmentBuffer) -> int:
        """Discard the buffer's contents; returns entries discarded.

        The buffer stays registered (same age slot) so the restarted
        execution of the segment reuses it.
        """
        discarded = buffer.entries
        self.total_squashed_entries += discarded
        self._occupancy -= discarded
        buffer.values.clear()
        buffer.read_set.clear()
        buffer.tracked.clear()
        buffer.squashes += 1
        buffer.poisoned = False
        return discarded

    def abandon(self, buffer: SegmentBuffer) -> int:
        """Deregister the buffer without committing (wrong-path discard)."""
        discarded = buffer.entries
        self.total_squashed_entries += discarded
        self._remove(buffer)
        return discarded

    def _remove(self, buffer: SegmentBuffer) -> None:
        try:
            self._buffers.remove(buffer)
        except ValueError:
            raise SpecStoreError(
                f"buffer {buffer.key!r} is not registered"
            ) from None
        self._occupancy -= buffer.entries

    # ------------------------------------------------------------------
    # accesses
    # ------------------------------------------------------------------
    def _allocate(self, buffer: SegmentBuffer, address: Address) -> bool:
        """Track ``address`` in ``buffer``; False when capacity is exhausted."""
        if address in buffer.tracked:
            return True
        if self.capacity is not None and buffer.entries >= self.capacity:
            return False
        buffer.tracked.add(address)
        if buffer.entries > self.peak_segment_entries:
            self.peak_segment_entries = buffer.entries
        self._occupancy += 1
        if self._occupancy > self.peak_entries:
            self.peak_entries = self._occupancy
        return True

    def record_read(self, buffer: SegmentBuffer, address: Address) -> bool:
        """Track an exposed read of ``address``; False on overflow.

        Callers only record reads that miss the segment's own buffer --
        a read of the segment's own speculative value needs no access
        information (it cannot be violated by construction).
        """
        if not self._allocate(buffer, address):
            return False
        buffer.read_set.add(address)
        return True

    def record_write(
        self, buffer: SegmentBuffer, address: Address, value: float
    ) -> bool:
        """Buffer a speculative write; False on overflow."""
        if not self._allocate(buffer, address):
            return False
        buffer.values[address] = float(value)
        return True

    def transfer(
        self,
        buffer: SegmentBuffer,
        read_addresses: Iterable[Address],
        writes: Iterable[Tuple[Address, float]],
    ) -> bool:
        """Bulk-install a batched attempt's access logs into ``buffer``.

        Registers every read in the buffer's read set, then buffers
        every write, stopping at the first refused allocation (capacity
        overflow).  Returns ``False`` on refusal; like an interleaved
        attempt that stalls mid-segment, the partial state is kept so
        the entries stay visible to forwarding and occupancy accounting
        until the caller resolves the stall.
        """
        record_read = self.record_read
        record_write = self.record_write
        for address in read_addresses:
            if not record_read(buffer, address):
                return False
        for address, value in writes:
            if not record_write(buffer, address, value):
                return False
        return True

    def forward(self, buffer: SegmentBuffer, address: Address) -> Optional[float]:
        """Value of ``address`` from the nearest older in-flight buffer.

        ``None`` means no older buffer holds the address and the value
        must come from conventional memory.
        """
        for other in reversed(self._buffers):
            if other.age >= buffer.age:
                continue
            if address in other.values:
                return other.values[address]
        return None

    def violators(self, writer_age: int, address: Address) -> List[SegmentBuffer]:
        """Younger buffers whose exposed-read set contains ``address``.

        These segments consumed a value that a write by the segment of
        age ``writer_age`` has now changed; the engine must roll them
        (and everything younger than the oldest of them) back.
        """
        return [
            buffer
            for buffer in self._buffers
            if buffer.age > writer_age and address in buffer.read_set
        ]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Total entries across all in-flight buffers."""
        return self._occupancy

    def buffers(self) -> List[SegmentBuffer]:
        """In-flight buffers in age order (oldest first)."""
        return list(self._buffers)

    def __len__(self) -> int:
        return len(self._buffers)

    def stats(self) -> Dict[str, int]:
        """Lifetime counters for reports."""
        return {
            "peak_entries": self.peak_entries,
            "peak_segment_entries": self.peak_segment_entries,
            "total_commits": self.total_commits,
            "total_committed_entries": self.total_committed_entries,
            "total_squashed_entries": self.total_squashed_entries,
        }
