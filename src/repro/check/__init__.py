"""``python -m repro.check`` -- the differential label-soundness gate.

Thin CLI over :mod:`repro.analysis.checker`: checks the benchmark
workload families and/or a seeded fuzz batch, writes a machine-readable
JSON report, and exits non-zero when any label is unsound.  See
``docs/ANALYSIS.md`` for the underlying semantics.
"""
