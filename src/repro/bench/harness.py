"""Timing harness: analyze-throughput and simulate-throughput.

Two instruments, both per workload family:

* **analyze** -- repeatedly runs the full labeling pipeline
  (:func:`repro.idempotency.labeling.label_region`) on the workload's
  region and reports *references classified per second*.  Each
  repetition uses a fresh :class:`AnalysisCache`, so the number is the
  *cold* analysis cost (intra-pass signature bucketing only); a second
  number reports the *warm* cost with a shared cache (cross-pass
  reuse).
* **simulate** -- repeatedly executes the program through the
  sequential interpreter and reports *memory operations (reads +
  writes) per second*.  ``fast_path`` selects trace record-and-replay;
  the baseline drives the coroutine interpreter for every iteration.

Repetitions adapt to the workload: each measurement repeats until
``min_seconds`` of wall-clock time is accumulated (at least
``min_repeats`` times) and the *best* repetition is used, which is the
standard way to suppress scheduler noise in micro-benchmarks.  Every
per-repetition sample is kept alongside the best, so the reported
numbers carry p50 / p95 / stddev dispersion next to the headline rate
(the same summary shape :mod:`repro.obs.metrics` histograms report).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.bench.workloads import Workload
from repro.idempotency.labeling import label_region
from repro.obs.metrics import percentile, stddev
from repro.runtime.interpreter import SequentialInterpreter


@dataclass
class Measurement:
    """One throughput measurement."""

    seconds: float
    work_units: int
    repeats: int
    #: Wall-clock seconds of every repetition (``seconds`` is their min).
    samples: List[float] = field(default_factory=list)

    @property
    def per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.work_units / self.seconds

    def rate_stats(self) -> Dict[str, float]:
        """Dispersion of the per-repetition throughput (units / s)."""
        rates = [self.work_units / s for s in self.samples if s > 0]
        return {
            "p50": round(percentile(rates, 50.0), 1),
            "p95": round(percentile(rates, 95.0), 1),
            "stddev": round(stddev(rates), 1),
        }


@dataclass
class FamilyResult:
    """All numbers of one workload family on one code path."""

    family: str
    size: int
    statements: int
    references: int
    analyze: Measurement
    analyze_warm: Measurement
    simulate: Measurement
    simulate_ops: int
    replayed: bool
    replay_reason: str
    idempotent_fraction: float
    signature_stats: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "family": self.family,
            "size": self.size,
            "statements": self.statements,
            "references": self.references,
            "analyze_refs_per_s": round(self.analyze.per_second, 1),
            "analyze_warm_refs_per_s": round(self.analyze_warm.per_second, 1),
            "analyze_repeats": self.analyze.repeats,
            "analyze_stats": self.analyze.rate_stats(),
            "analyze_warm_stats": self.analyze_warm.rate_stats(),
            "simulate_ops_per_s": round(self.simulate.per_second, 1),
            "simulate_ops": self.simulate_ops,
            "simulate_repeats": self.simulate.repeats,
            "simulate_stats": self.simulate.rate_stats(),
            "replayed": self.replayed,
            "replay_reason": self.replay_reason,
            "idempotent_fraction": round(self.idempotent_fraction, 4),
            "signature_stats": self.signature_stats,
        }


def _timed_best(fn, min_seconds: float, min_repeats: int, max_repeats: int) -> tuple:
    """Best (min) duration of ``fn()``, all samples, and the last result."""
    best = float("inf")
    total = 0.0
    samples: List[float] = []
    last = None
    while (total < min_seconds or len(samples) < min_repeats) and len(
        samples
    ) < max_repeats:
        t0 = time.perf_counter()
        last = fn()
        dt = time.perf_counter() - t0
        total += dt
        samples.append(dt)
        if dt < best:
            best = dt
    return best, samples, last


def measure_family(
    workload: Workload,
    fast_path: bool = True,
    min_seconds: float = 0.4,
    min_repeats: int = 2,
    max_repeats: int = 200,
    op_budget: Optional[int] = None,
) -> FamilyResult:
    """Measure one workload family on one code path."""
    region = workload.region
    refs = len(region.references)

    # -- analysis, cold (fresh cache per repetition) --------------------
    def analyze_cold():
        return label_region(region, fast_path=fast_path, cache=AnalysisCache())

    analyze_best, analyze_samples, labeling = _timed_best(
        analyze_cold, min_seconds, min_repeats, max_repeats
    )

    # -- analysis, warm (shared cache across repetitions) ---------------
    shared_cache = AnalysisCache()
    label_region(region, fast_path=fast_path, cache=shared_cache)

    def analyze_warm():
        return label_region(region, fast_path=fast_path, cache=shared_cache)

    warm_best, warm_samples, _ = _timed_best(
        analyze_warm, min_seconds / 4, min_repeats, max_repeats
    )

    signature_stats: Dict[str, int] = {}
    if fast_path:
        index = shared_cache.peek(
            region, ("signature_index", frozenset(labeling.read_only_vars))
        )
        if index is not None:
            signature_stats = index.stats()

    # -- simulation ------------------------------------------------------
    def simulate():
        interp = SequentialInterpreter(
            workload.program,
            use_replay=fast_path,
            model_latency=False,
            op_budget=op_budget,
        )
        return interp.run()

    simulate_best, simulate_samples, result = _timed_best(
        simulate, min_seconds, min_repeats, max_repeats
    )
    sim_ops = result.stats.reads + result.stats.writes
    region_name = region.name
    return FamilyResult(
        family=workload.family,
        size=workload.size,
        statements=workload.statements,
        references=refs,
        analyze=Measurement(
            analyze_best, refs, len(analyze_samples), analyze_samples
        ),
        analyze_warm=Measurement(warm_best, refs, len(warm_samples), warm_samples),
        simulate=Measurement(
            simulate_best, sim_ops, len(simulate_samples), simulate_samples
        ),
        simulate_ops=sim_ops,
        replayed=result.replayed_regions.get(region_name, False),
        replay_reason=result.replay_reasons.get(region_name, "n/a"),
        idempotent_fraction=labeling.static_fraction_idempotent(),
        signature_stats=signature_stats,
    )


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (0.0 for empty or non-positive input)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
