"""Process-wide metrics registry: counters, gauges, histograms.

The registry does **not** re-implement the accounting the runtime
already performs -- :class:`~repro.runtime.stats.ExecutionStats`,
:class:`~repro.timing.events.TimingRecorder` recordings and
:class:`~repro.runtime.engines.DegradationReport` payloads stay the
single source of truth.  The adapters at the bottom of this module
*ingest* those objects into named instruments, so every subsystem's
telemetry lands in one snapshot with one schema
(``repro.obs.metrics/v1``) that ``python -m repro.obs validate`` can
check and CI can archive.

Live instrumentation sites (e.g. the
:class:`~repro.analysis.cache.AnalysisCache` hit/miss hook) guard on
:meth:`MetricsRegistry.collecting`, which is ``False`` by default --
like the tracer, disabled metrics cost one attribute check per site.

The histogram keeps exact ``count`` / ``sum`` / ``min`` / ``max`` plus a
bounded sample buffer for p50 / p95 / stddev -- the same summary shape
the bench harness reports per measurement, so bench artifacts and
metrics snapshots read alike.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional

SCHEMA = "repro.obs.metrics/v1"

#: Retained histogram samples (count/sum/min/max stay exact beyond it).
HISTOGRAM_SAMPLE_CAP = 4096


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A distribution with exact totals and bounded percentile samples."""

    __slots__ = ("name", "help", "_lock", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
                self._samples.append(value)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            samples = list(self._samples)
            count, total = self.count, self.total
            lo = self.min if count else 0.0
            hi = self.max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
            "p50": percentile(samples, 50.0),
            "p95": percentile(samples, 95.0),
            "stddev": stddev(samples),
        }


def percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank-interpolated percentile (0.0 for empty input)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


def stddev(samples: List[float]) -> float:
    """Population standard deviation (0.0 below two samples)."""
    n = len(samples)
    if n < 2:
        return 0.0
    mean = sum(samples) / n
    return math.sqrt(sum((s - mean) ** 2 for s in samples) / n)


class MetricsRegistry:
    """Create-or-get instruments by name; snapshot everything at once."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Gate for *live* instrumentation sites (cache hit/miss etc.);
        #: adapters ingest regardless -- their cost is explicit.
        self.collecting = False

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.collecting = True

    def disable(self) -> None:
        self.collecting = False

    def reset(self) -> None:
        """Drop every instrument (the collecting flag is kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, help)
            return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, help)
            return instrument

    def histogram(self, name: str, help: str = "") -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, help)
            return instrument

    # ------------------------------------------------------------------
    def snapshot(self, meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """All instruments as one schema-tagged JSON-ready payload."""
        with self._lock:
            counters = {name: c.value for name, c in sorted(self._counters.items())}
            gauges = {name: g.value for name, g in sorted(self._gauges.items())}
            histograms = dict(sorted(self._histograms.items()))
        return {
            "schema": SCHEMA,
            "meta": dict(meta) if meta else {},
            "counters": counters,
            "gauges": gauges,
            "histograms": {name: h.summary() for name, h in histograms.items()},
        }


#: The process-wide registry (module-private; use :func:`metrics_registry`).
_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry every adapter defaults to."""
    return _REGISTRY


# ----------------------------------------------------------------------
# Adapters: existing telemetry objects -> named instruments.
#
# All adapters are duck-typed on purpose: this module must stay a leaf
# (the runtime, analysis and timing layers import *it*), so it never
# imports their classes.
# ----------------------------------------------------------------------
def ingest_execution_stats(
    stats: Any,
    prefix: str = "runtime",
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, int]:
    """Fold an ``ExecutionStats`` into ``<prefix>.<counter>`` counters.

    Returns the ingested name -> increment mapping (the round-trip the
    tests assert: ingesting into a fresh registry reproduces
    ``stats.as_dict()`` exactly).
    """
    registry = registry or _REGISTRY
    ingested: Dict[str, int] = {}
    for name, value in stats.as_dict().items():
        full = f"{prefix}.{name}"
        registry.counter(full).inc(int(value))
        ingested[full] = int(value)
    return ingested


def ingest_recording(
    recording: Any,
    prefix: str = "timing",
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, int]:
    """Fold a timing ``Recording`` into counters + attempt histograms."""
    registry = registry or _REGISTRY
    summary = recording.summary()
    ingested: Dict[str, int] = {}
    for name in (
        "regions",
        "segments",
        "attempts",
        "squashed_attempts",
        "discarded_attempts",
        "committed_segments",
        "busy_cycles",
        "direct_cycles",
    ):
        full = f"{prefix}.{name}"
        registry.counter(full).inc(int(summary[name]))
        ingested[full] = int(summary[name])
    histogram = registry.histogram(f"{prefix}.attempt_cycles")
    for section in recording.regions():
        for segment in section.segments:
            for attempt in segment.attempts:
                histogram.observe(attempt.busy_cycles)
    return ingested


def ingest_degradation(
    report: Any,
    prefix: str = "resilience",
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, int]:
    """Fold a ``DegradationReport`` into degradation/fault counters."""
    registry = registry or _REGISTRY
    payload = report.as_dict()
    ingested: Dict[str, int] = {}

    def bump(name: str, amount: int) -> None:
        registry.counter(name).inc(amount)
        ingested[name] = ingested.get(name, 0) + amount

    bump(f"{prefix}.degradations", 1)
    bump(f"{prefix}.degradations.{payload['error_type']}", 1)
    bump(f"{prefix}.degraded_rollbacks", int(payload["rollbacks"]))
    bump(f"{prefix}.degraded_fault_restarts", int(payload["fault_restarts"]))
    for kind, count in payload["fault_counts"].items():
        bump(f"{prefix}.faults.{kind}", int(count))
    return ingested


def ingest_cache_stats(
    cache: Any,
    prefix: str = "analysis.cache",
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, float]:
    """Fold an ``AnalysisCache``'s hit/miss/entry stats into gauges."""
    registry = registry or _REGISTRY
    ingested: Dict[str, float] = {}
    for name, value in cache.stats().items():
        full = f"{prefix}.{name}"
        registry.gauge(full).set(float(value))
        ingested[full] = float(value)
    return ingested


# ----------------------------------------------------------------------
# Snapshot validation (python -m repro.obs validate).
# ----------------------------------------------------------------------
_HISTOGRAM_KEYS = frozenset(
    ("count", "sum", "min", "max", "mean", "p50", "p95", "stddev")
)


def validate_metrics(payload: Any) -> List[str]:
    """Schema-check one metrics snapshot; returns error strings."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"metrics payload must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA:
        errors.append(
            f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section), dict):
            errors.append(f"missing or non-object section {section!r}")
    for name, value in (payload.get("counters") or {}).items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"counter {name!r} must be a non-negative int")
    for name, value in (payload.get("gauges") or {}).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"gauge {name!r} must be a number")
    for name, summary in (payload.get("histograms") or {}).items():
        if not isinstance(summary, dict):
            errors.append(f"histogram {name!r} must be an object")
            continue
        missing = _HISTOGRAM_KEYS.difference(summary)
        if missing:
            errors.append(
                f"histogram {name!r} missing keys {sorted(missing)}"
            )
    return errors
