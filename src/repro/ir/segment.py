"""Segments (Definition 1).

A segment is the paper's unit of speculative execution: it has a single
entry, executes its statements sequentially, and may have multiple exits
(successor segments).  Segments are used directly by *explicit* regions
(Figure 2 / Figure 3 style); for *loop* regions the segments are the
loop iterations and share a single body template.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.expr import Expr, ExprLike, as_expr
from repro.ir.stmt import Statement


class SegmentError(Exception):
    """Raised for malformed segments."""


class Segment:
    """One speculative unit inside an explicit region.

    Parameters
    ----------
    name:
        Unique name inside the region (e.g. ``"R0"``).
    body:
        Statements executed sequentially by the segment.
    branch:
        Optional expression evaluated at the end of the segment when the
        segment has more than one successor in the region graph: a
        non-zero value selects the first successor, zero the second.
        The value is computed from memory state, which makes the choice
        *data dependent* and therefore a source of control dependences
        (HOSE Property 5).
    """

    __slots__ = ("name", "body", "branch", "references", "_finalized")

    def __init__(
        self,
        name: str,
        body: Sequence[Statement] = (),
        branch: Optional[ExprLike] = None,
    ):
        if not name:
            raise SegmentError("segment needs a name")
        self.name = name
        self.body: List[Statement] = list(body)
        for stmt in self.body:
            if not isinstance(stmt, Statement):
                raise SegmentError(f"segment {name!r} body contains {stmt!r}")
        self.branch: Optional[Expr] = as_expr(branch) if branch is not None else None
        #: All memory references of the segment, filled in by the region.
        self.references = None
        self._finalized = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Segment {self.name} ({len(self.body)} stmts)>"
