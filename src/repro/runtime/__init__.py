"""Execution substrates.

* :mod:`repro.runtime.memory` -- the non-speculative storage: a flat
  value store plus a two-level cache latency model (the "conventional
  memory hierarchy" of the paper).
* :mod:`repro.runtime.executor` -- a generator-based micro-interpreter
  that turns a segment body into a stream of compute / read / write
  operations tagged with their static memory references.
* :mod:`repro.runtime.interpreter` -- the sequential reference
  interpreter (ground truth for all correctness checks, and the source
  of dynamic reference counts).
* :mod:`repro.runtime.specstore` -- per-segment speculative storage with
  capacity accounting, read/write sets and dependence-violation checks.
* :mod:`repro.runtime.engine` -- the speculative execution engine
  implementing both HOSE (Definition 2) and CASE (Definition 4): CASE is
  HOSE plus idempotent-reference bypass and per-segment private frames.
"""

from repro.runtime.errors import SimulationError
from repro.runtime.memory import MemoryHierarchy, MemoryImage
from repro.runtime.interpreter import SequentialInterpreter, SequentialResult
from repro.runtime.specstore import SpeculativeStore
from repro.runtime.engine import SpeculativeEngine, RegionExecutionResult
from repro.runtime.stats import ExecutionStats

__all__ = [
    "ExecutionStats",
    "MemoryHierarchy",
    "MemoryImage",
    "RegionExecutionResult",
    "SequentialInterpreter",
    "SequentialResult",
    "SimulationError",
    "SpeculativeEngine",
    "SpeculativeStore",
]
