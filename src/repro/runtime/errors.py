"""Runtime error types."""

from __future__ import annotations


class SimulationError(Exception):
    """Raised when program execution fails (out-of-bounds subscripts,
    undeclared variables, runaway speculative execution, ...)."""


class AddressError(SimulationError):
    """Raised for invalid memory addresses (bad subscripts, unknown symbols)."""
