"""Execution substrates.

* :mod:`repro.runtime.memory` -- the non-speculative storage: a flat
  value store plus a two-level cache latency model (the "conventional
  memory hierarchy" of the paper).
* :mod:`repro.runtime.executor` -- a generator-based micro-interpreter
  that turns a segment body into a stream of compute / read / write
  operations tagged with their static memory references.
* :mod:`repro.runtime.trace` -- the record-and-replay fast path: loop
  regions with input-independent control flow are recorded once into a
  flat event schedule and replayed per iteration, bypassing AST
  re-interpretation while yielding bit-identical operation streams.
* :mod:`repro.runtime.interpreter` -- the sequential reference
  interpreter (ground truth for all correctness checks, and the source
  of dynamic reference counts), driving either execution path.
* :mod:`repro.runtime.specstore` -- per-segment speculative storage:
  bounded buffers keyed by address, with forwarding from older
  in-flight segments, cross-segment violation detection against
  segment age, commit and squash.
* :mod:`repro.runtime.engines` -- the speculative engines driving the
  same operation streams: :class:`HOSEEngine` (Definition 2, every
  reference through speculative storage) and :class:`CASEEngine`
  (Definition 4, idempotent references bypass it using the labels of
  Algorithm 2).  Both produce final memory states bit-identical to the
  sequential interpreter.

Both the engines and the sequential interpreter accept timing hooks
consumed by :mod:`repro.timing`: the engines emit a per-segment-attempt
timing event stream through an attached
:class:`~repro.timing.events.TimingRecorder`, the interpreter exposes a
per-operation ``op_hook``, and the executor's ``compute_cost`` latency
hook lets a cost model price arithmetic.  The timing package turns
those streams into multiprocessor makespans and HOSE/CASE speedups.
"""

from repro.runtime.errors import (
    AddressError,
    EngineLivelockError,
    FaultInjected,
    InvariantViolation,
    SimulationError,
)
from repro.runtime.memory import MemoryHierarchy, MemoryImage, MemoryLatencies
from repro.runtime.interpreter import (
    SequentialInterpreter,
    SequentialResult,
    run_program,
)
from repro.runtime.engines import (
    CASEEngine,
    DegradationReport,
    HOSEEngine,
    SpeculativeEngine,
    SpeculativeResult,
    run_speculative,
)
from repro.runtime.specstore import SegmentBuffer, SpeculativeStore, SpecStoreError
from repro.runtime.stats import ExecutionStats
from repro.runtime.trace import (
    SegmentTrace,
    TraceError,
    record_trace,
    replay_segment,
    trace_eligibility,
)

__all__ = [
    "AddressError",
    "CASEEngine",
    "DegradationReport",
    "EngineLivelockError",
    "ExecutionStats",
    "FaultInjected",
    "HOSEEngine",
    "InvariantViolation",
    "MemoryHierarchy",
    "MemoryImage",
    "MemoryLatencies",
    "SegmentBuffer",
    "SegmentTrace",
    "SequentialInterpreter",
    "SequentialResult",
    "SimulationError",
    "SpecStoreError",
    "SpeculativeEngine",
    "SpeculativeResult",
    "SpeculativeStore",
    "TraceError",
    "record_trace",
    "replay_segment",
    "run_program",
    "run_speculative",
    "trace_eligibility",
]
