"""Whole-program makespan and speedup-vs-sequential computation.

Chains the sections of a :class:`~repro.timing.events.Recording` --
non-speculative :class:`DirectSection` stretches run on processor 0,
every :class:`RegionRecording` is laid out by
:func:`~repro.timing.schedule.schedule_region` on ``P`` logical
processors -- into one :class:`MakespanResult`: the overall makespan,
per-processor busy / wasted / stall / idle breakdowns, per-region spans,
and the longest single-segment critical path (the floor any parallel
execution must respect).

The **sequential baseline** prices the sequential interpreter's
operation stream with the *same* cost model (memory accesses at
``memory_latency``, compute at the weighted operator costs), so
``speedup = sequential_cycles / makespan`` compares identical work under
identical prices -- the only differences are parallelism and the
explicit speculation overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.program import Program
from repro.timing.cost import CostModel
from repro.timing.events import (
    DirectSection,
    Recording,
    TimingRecorder,
)
from repro.timing.schedule import RegionSchedule, schedule_region


@dataclass
class MakespanResult:
    """Parallel time of one recorded execution on ``processors``."""

    engine: str
    program: str
    processors: int
    window: int
    makespan: int
    #: Non-speculative (init / finale) cycles, executed on processor 0.
    direct_cycles: int
    #: Longest single-segment critical path across all regions.
    longest_segment_cycles: int
    #: Whole-run totals across processors.
    busy_cycles: int = 0
    wasted_cycles: int = 0
    stall_cycles: int = 0
    idle_cycles: int = 0
    #: Cost-modelled sequential cycle total (when supplied).
    sequential_cycles: Optional[int] = None
    per_processor: List[Dict[str, int]] = field(default_factory=list)
    regions: List[RegionSchedule] = field(default_factory=list)

    @property
    def speedup(self) -> Optional[float]:
        """Speedup over the cost-modelled sequential execution."""
        if self.sequential_cycles is None or self.makespan <= 0:
            return None
        return self.sequential_cycles / self.makespan

    def as_dict(self) -> Dict:
        payload = {
            "processors": self.processors,
            "makespan": self.makespan,
            "busy_cycles": self.busy_cycles,
            "wasted_cycles": self.wasted_cycles,
            "stall_cycles": self.stall_cycles,
            "idle_cycles": self.idle_cycles,
            "direct_cycles": self.direct_cycles,
            "longest_segment_cycles": self.longest_segment_cycles,
        }
        if self.sequential_cycles is not None:
            payload["sequential_cycles"] = self.sequential_cycles
            speedup = self.speedup
            payload["speedup"] = round(speedup, 3) if speedup else 0.0
        return payload


def compute_makespan(
    recording: Recording,
    processors: int,
    sequential_cycles: Optional[int] = None,
) -> MakespanResult:
    """Makespan of ``recording`` on ``processors`` logical processors."""
    processors = max(1, int(processors))
    cost = recording.cost
    t = 0
    direct = 0
    longest = 0
    regions: List[RegionSchedule] = []
    busy = wasted = stall = 0
    #: Per-processor totals; processor 0 also runs the direct sections.
    lanes = [[0, 0, 0] for _ in range(processors)]  # busy, wasted, stall
    for section in recording.sections:
        if isinstance(section, DirectSection):
            t += section.cycles
            direct += section.cycles
            lanes[0][0] += section.cycles
            continue
        schedule = schedule_region(
            section, processors, cost, recording.window, start=t
        )
        regions.append(schedule)
        t = schedule.end
        section_longest = schedule.longest_segment_cycles()
        if section_longest > longest:
            longest = section_longest
        for lane in schedule.lanes:
            lanes[lane.processor][0] += lane.busy
            lanes[lane.processor][1] += lane.wasted
            lanes[lane.processor][2] += lane.stall
    makespan = t
    per_processor = []
    for p, (lane_busy, lane_wasted, lane_stall) in enumerate(lanes):
        idle = makespan - lane_busy - lane_wasted - lane_stall
        per_processor.append(
            {
                "processor": p,
                "busy": lane_busy,
                "wasted": lane_wasted,
                "stall": lane_stall,
                "idle": idle,
            }
        )
        busy += lane_busy
        wasted += lane_wasted
        stall += lane_stall
    return MakespanResult(
        engine=recording.engine,
        program=recording.program,
        processors=processors,
        window=recording.window,
        makespan=makespan,
        direct_cycles=direct,
        longest_segment_cycles=longest,
        busy_cycles=busy,
        wasted_cycles=wasted,
        stall_cycles=stall,
        idle_cycles=processors * makespan - busy - wasted - stall,
        sequential_cycles=sequential_cycles,
        per_processor=per_processor,
        regions=regions,
    )


class _CostSummer:
    """Op hook summing the cost-modelled cycles of a sequential run."""

    __slots__ = ("cost", "total")

    def __init__(self, cost: CostModel):
        self.cost = cost
        self.total = 0

    def __call__(self, kind: str, cycles: int) -> None:
        self.total += self.cost.op_cost(kind, cycles)


def sequential_baseline(
    program: Program, cost: Optional[CostModel] = None
) -> Tuple[int, "SequentialResult"]:
    """Cost-modelled cycle total plus the sequential result, in one run.

    Drives the sequential interpreter with the cost model's compute
    weighting and prices every memory access at ``memory_latency`` --
    the baseline all speedups are measured against.  The returned
    result's memory is the ground truth for engine equivalence checks
    (compute costs never affect values), so callers that need both pay
    a single execution.
    """
    from repro.runtime.interpreter import SequentialInterpreter

    cost = cost or CostModel()
    summer = _CostSummer(cost)
    result = SequentialInterpreter(
        program,
        use_replay=False,
        model_latency=False,
        op_hook=summer,
        compute_cost=cost.compute_cost_fn(),
    ).run()
    return summer.total, result


def sequential_cycles(program: Program, cost: Optional[CostModel] = None) -> int:
    """Cost-modelled cycle total of one sequential execution."""
    return sequential_baseline(program, cost)[0]


def speculative_makespan(
    program: Program,
    engine: str = "hose",
    processors: int = 4,
    window: int = 4,
    capacity: Optional[int] = 64,
    cost: Optional[CostModel] = None,
    baseline: Optional[int] = None,
    **engine_kwargs,
) -> Tuple["SpeculativeResult", MakespanResult]:
    """Run an engine with a recorder attached and compute its makespan.

    Returns ``(speculative_result, makespan_result)``; the speculative
    result's memory is still bit-identical to the sequential
    interpreter (the recorder only observes).
    """
    from repro.runtime.engines import CASEEngine, HOSEEngine

    classes = {"hose": HOSEEngine, "case": CASEEngine}
    try:
        engine_cls = classes[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; have {sorted(classes)}"
        ) from None
    cost = cost or CostModel()
    if baseline is None:
        baseline = sequential_cycles(program, cost)
    recorder = TimingRecorder(cost)
    result = engine_cls(
        program,
        window=window,
        capacity=capacity,
        recorder=recorder,
        **engine_kwargs,
    ).run()
    makespan = compute_makespan(
        recorder.recording(), processors, sequential_cycles=baseline
    )
    return result, makespan
