"""Benchmark subsystem.

* :mod:`repro.bench.workloads` -- parameterized synthetic loop-nest
  families (stencil, reduction, sparse-indirection, guarded-update).
* :mod:`repro.bench.harness` -- throughput measurement: analysis
  references/s and simulation memory-ops/s, fast path vs baseline.
* :mod:`repro.bench.engines` -- the HOSE vs CASE speculative-storage
  scenario: pressure metrics across buffer capacities, each run checked
  bit-for-bit against the sequential interpreter.
* :mod:`repro.bench.speedup` -- the multiprocessor timing scenario:
  HOSE/CASE makespans and speedup-vs-sequential across processors x
  window x capacity, on the :mod:`repro.timing` cost model.
* ``python -m repro.bench`` -- CLI entry point writing
  ``BENCH_results.json`` (see :mod:`repro.bench.__main__`;
  ``--scenarios`` / ``--list-scenarios`` select scenarios).
"""

from repro.bench.engines import (
    ENGINE_CAPACITIES,
    measure_engine_family,
    measure_engines,
    verify_engines,
)
from repro.bench.speedup import (
    SPEEDUP_CAPACITIES,
    SPEEDUP_PROCESSORS,
    SPEEDUP_WINDOWS,
    check_embarrassing_speedup,
    measure_speedup_family,
    measure_speedups,
)
from repro.bench.harness import FamilyResult, Measurement, geometric_mean, measure_family
from repro.bench.workloads import (
    DEFAULT_SIZES,
    DEFAULT_STATEMENTS,
    FAMILIES,
    Workload,
    generate,
    generate_suite,
)

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_STATEMENTS",
    "ENGINE_CAPACITIES",
    "FAMILIES",
    "FamilyResult",
    "Measurement",
    "SPEEDUP_CAPACITIES",
    "SPEEDUP_PROCESSORS",
    "SPEEDUP_WINDOWS",
    "Workload",
    "check_embarrassing_speedup",
    "generate",
    "generate_suite",
    "geometric_mean",
    "measure_engine_family",
    "measure_engines",
    "measure_family",
    "measure_speedup_family",
    "measure_speedups",
    "verify_engines",
]
