"""Re-occurring first write (RFW) analysis -- Algorithm 1.

Definition 5: a write reference to ``x`` in segment ``R_i`` is a RFW if,
following any roll-back of ``R_i``, a live ``x`` is guaranteed to be
written before the end of the enclosing region without a preceding read
reference.

The analysis has two ingredients:

1. **Node marking** (Algorithm 1, step 1).  Every segment is marked, per
   variable, ``Write`` (defined on all paths through the segment without
   an exposed read), ``Read`` (has an exposed read) or ``Null`` (no
   reference); the exit pseudo-node is marked ``Read`` when the variable
   is live out of the region.  The marks come from
   :mod:`repro.analysis.access`.

2. **Colouring** (Algorithm 1, steps 2-3).  A segment that can reach an
   exposed read through zero or more ``Null`` segments makes *all of its
   control-flow descendants* non-RFW (Black): after a roll-back of a
   descendant, execution restarts at the end of one of its ancestors and
   may follow exactly such a path, consuming the stale value the
   descendant's misspeculated write left in non-speculative storage.
   Writes in segments that stay White *and* are marked ``Write`` *and*
   whose references have statically deterministic addresses are RFW.

For loop regions (segments = iterations of a counted loop) the graph
degenerates: after a roll-back the same iteration always re-executes
before any younger iteration commits, so a write is RFW exactly when the
body is marked ``Write`` for the variable and the references are
address-deterministic.  The paper's same-address requirement excludes
subscripted subscripts such as ``K(E)`` in Figure 2.

Soundness note on arrays: a segment that writes only *part* of an array
does not rewrite every element a later read might consume, so for the
danger propagation only scalar ``Write`` segments block the exposure of
downstream reads; array writes are treated as transparent (``Null``)
when deciding whether an exposed read is reachable.  This is strictly
conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.analysis.access import AccessSummary, summarize_region_segments
from repro.analysis.cfg import SegmentGraph
from repro.analysis.readonly import read_only_variables
from repro.ir.reference import MemoryReference
from repro.ir.region import EXIT_NODE, ExplicitRegion, LOOP_BODY_SEGMENT, LoopRegion, Region
from repro.ir.types import NodeColor, NodeMark


@dataclass
class RFWResult:
    """Result of the RFW analysis of one region."""

    region: str
    #: variable -> segment -> Algorithm-1 node mark.
    marks: Dict[str, Dict[str, NodeMark]] = field(default_factory=dict)
    #: variable -> segment -> Algorithm-1 node colour (explicit regions).
    colors: Dict[str, Dict[str, NodeColor]] = field(default_factory=dict)
    #: uids of write references that are re-occurring first writes.
    rfw_write_uids: Set[str] = field(default_factory=set)
    #: segment -> set of variables whose writes in that segment are RFW
    #: (the ``RFW(R_i)`` sets used in the Figure 2 walk-through).
    rfw_variables: Dict[str, Set[str]] = field(default_factory=dict)

    def is_rfw(self, ref: MemoryReference) -> bool:
        """True when the given write reference is a re-occurring first write."""
        return ref.uid in self.rfw_write_uids

    def mark_of(self, variable: str, segment: str) -> NodeMark:
        return self.marks.get(variable, {}).get(segment, NodeMark.NULL)

    def color_of(self, variable: str, segment: str) -> NodeColor:
        return self.colors.get(variable, {}).get(segment, NodeColor.WHITE)

    def rfw_set(self, segment: str) -> Set[str]:
        """Variables whose writes in ``segment`` are RFW."""
        return set(self.rfw_variables.get(segment, set()))


# ----------------------------------------------------------------------
def _segment_blocks_danger(summary: AccessSummary, variable: str) -> bool:
    """True when the segment certainly rewrites every location of
    ``variable`` a later read could consume (used for danger propagation).

    Only scalar must-writes block; partial array writes are transparent.
    """
    info = summary.info(variable)
    if info is None or info.mark is not NodeMark.WRITE:
        return False
    return all(not w.subscripts for w in info.writes)


def _compute_danger(
    graph: SegmentGraph,
    marks: Dict[str, NodeMark],
    blocks: Dict[str, bool],
    live_out: bool,
) -> Dict[str, bool]:
    """Fixed point of: danger(u) = exposed-read(u) or
    (u does not block and some successor is dangerous).

    The exit node is dangerous when the variable is live out of the
    region.
    """
    danger: Dict[str, bool] = {node: False for node in graph.nodes}
    danger[EXIT_NODE] = live_out
    changed = True
    while changed:
        changed = False
        for node in graph.real_nodes():
            if danger[node]:
                continue
            if marks.get(node, NodeMark.NULL) is NodeMark.READ:
                danger[node] = True
                changed = True
                continue
            if blocks.get(node, False):
                continue
            if any(danger[s] for s in graph.successors(node)):
                danger[node] = True
                changed = True
    return danger


def analyze_rfw(
    region: Region,
    live_out: Set[str],
    summaries: Optional[Dict[str, AccessSummary]] = None,
    read_only: Optional[Set[str]] = None,
) -> RFWResult:
    """Run Algorithm 1 on ``region``.

    ``live_out`` is the region's live-out set;  ``summaries`` and
    ``read_only`` can be supplied to reuse earlier analysis results.
    """
    if read_only is None:
        read_only = read_only_variables(region)
    if summaries is None:
        summaries = summarize_region_segments(region, read_only_vars=read_only)

    result = RFWResult(region=region.name)
    if isinstance(region, LoopRegion):
        _analyze_loop(region, live_out, summaries, result)
    elif isinstance(region, ExplicitRegion):
        _analyze_explicit(region, live_out, summaries, result)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown region type {type(region).__name__}")
    return result


# ----------------------------------------------------------------------
def _analyze_loop(
    region: LoopRegion,
    live_out: Set[str],
    summaries: Dict[str, AccessSummary],
    result: RFWResult,
) -> None:
    summary = summaries[LOOP_BODY_SEGMENT]
    result.rfw_variables[LOOP_BODY_SEGMENT] = set()
    for variable, info in summary.variables.items():
        result.marks.setdefault(variable, {})[LOOP_BODY_SEGMENT] = info.mark
        result.colors.setdefault(variable, {})[LOOP_BODY_SEGMENT] = NodeColor.WHITE
        if not info.writes:
            continue
        # After a roll-back the same iteration re-executes before any
        # younger iteration commits; the body rewrites the stale location
        # (deterministic addresses) before any read can expose it (mark is
        # Write, i.e. no exposed reads of the variable in the body).
        if info.mark is NodeMark.WRITE and info.deterministic:
            for write in info.writes:
                result.rfw_write_uids.add(write.uid)
            result.rfw_variables[LOOP_BODY_SEGMENT].add(variable)
        else:
            result.colors[variable][LOOP_BODY_SEGMENT] = NodeColor.BLACK


def _analyze_explicit(
    region: ExplicitRegion,
    live_out: Set[str],
    summaries: Dict[str, AccessSummary],
    result: RFWResult,
) -> None:
    graph = SegmentGraph.from_region(region)
    variables: Set[str] = set()
    for summary in summaries.values():
        variables |= summary.referenced_variables()

    for segment in region.segment_names():
        result.rfw_variables.setdefault(segment, set())

    for variable in sorted(variables):
        marks: Dict[str, NodeMark] = {}
        blocks: Dict[str, bool] = {}
        for segment in region.segment_names():
            summary = summaries[segment]
            marks[segment] = summary.mark(variable)
            blocks[segment] = _segment_blocks_danger(summary, variable)
        marks[EXIT_NODE] = (
            NodeMark.READ if variable in live_out else NodeMark.NULL
        )
        result.marks[variable] = dict(marks)

        danger = _compute_danger(graph, marks, blocks, variable in live_out)

        colors: Dict[str, NodeColor] = {
            segment: NodeColor.WHITE for segment in region.segment_names()
        }
        # Algorithm 1 step 2: breadth-first; a White node whose successors
        # can reach an exposed read through Null nodes blackens all of its
        # White descendants.
        for node in graph.breadth_first():
            if node == EXIT_NODE:
                continue
            if colors.get(node) is not NodeColor.WHITE:
                continue
            if any(danger[s] for s in graph.successors(node)):
                for descendant in graph.descendants(node):
                    if descendant == EXIT_NODE:
                        continue
                    colors[descendant] = NodeColor.BLACK
        result.colors[variable] = colors

        # Step 3: writes in White nodes marked Write with deterministic
        # addresses are re-occurring first writes.
        for segment in region.segment_names():
            summary = summaries[segment]
            info = summary.info(variable)
            if info is None or not info.writes:
                continue
            if (
                colors[segment] is NodeColor.WHITE
                and marks[segment] is NodeMark.WRITE
                and info.deterministic
            ):
                for write in info.writes:
                    result.rfw_write_uids.add(write.uid)
                result.rfw_variables[segment].add(variable)
