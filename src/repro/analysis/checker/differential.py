"""Differential judgment: production labels vs checker facts vs dynamics.

Combines the three evidence sources into one machine-readable report:

* the static re-derivation (:mod:`repro.analysis.checker.rederive`),
  which classifies every disagreement as *production-aggressive*
  (production claims the stronger fact -- a suspect) or
  *production-conservative* (the checker proves more -- a precision
  gap);
* the trace oracle (:mod:`repro.analysis.checker.oracle`), whose
  dynamic hazards are ground truth: a claimed-idempotent reference
  with a witnessed value-changing hazard is **unsound**, full stop;
* the squash-replay simulation, which executes the exact storage
  discipline the labels license and diffs observable memory.

Severity ladder::

    unsound    dynamic contradiction -- the label licenses a storage
               bypass that provably corrupts an execution (CI: fail)
    suspect    static contradiction at exact enumeration -- production
               claims a fact the checker refutes; no dynamic witness
               on this input, but the claim is not proven either
    precision  production is provably more conservative than necessary
    info       everything else worth a human glance

:func:`mutation_check` closes the loop on the checker itself: it flips
speculative labels with witnessed dynamic hazards to idempotent and
verifies the oracles catch every such injected mislabeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.idempotency.labeling import LabelingResult, label_program
from repro.obs.tracer import TRACER
from repro.ir.types import IdempotencyCategory
from repro.ir.program import Program
from repro.ir.reference import MemoryReference
from repro.ir.validate import validate_program
from repro.analysis.checker.oracle import (
    DEFAULT_OP_BUDGET,
    DynamicFacts,
    TraceOracle,
    replay_check,
    run_trace,
)
from repro.analysis.checker.rederive import (
    DEFAULT_ENUM_BUDGET,
    compare_region,
    rederive_region,
)

SEVERITIES = ("unsound", "suspect", "precision", "info")


@dataclass
class CheckConfig:
    """Knobs of one differential check."""

    enum_budget: int = DEFAULT_ENUM_BUDGET
    op_budget: int = DEFAULT_OP_BUDGET
    #: run the dynamic trace oracle.
    dynamic: bool = True
    #: run the squash-replay simulation.
    replay: bool = True
    #: run the IR lint pass.
    lint: bool = True


@dataclass
class Finding:
    """One judged disagreement."""

    severity: str  # see SEVERITIES
    region: str
    kind: str  # label | mark | exposure | rfw | liveout | private | ...
    key: str  # reference uid or variable
    message: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "severity": self.severity,
            "region": self.region,
            "kind": self.kind,
            "key": self.key,
            "message": self.message,
        }


@dataclass
class RegionReport:
    """Checker verdict for one region."""

    region: str
    references: int
    idempotent_labels: int
    #: static re-derivation ran with exact dependence enumeration.
    exact: bool
    findings: List[Finding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: production-conservative label count (precision gap).
    production_conservative: int = 0
    #: dynamically hazard-free refs production still labels speculative.
    dynamically_clean_speculative: int = 0

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def as_dict(self) -> Dict:
        return {
            "region": self.region,
            "references": self.references,
            "idempotent_labels": self.idempotent_labels,
            "exact": self.exact,
            "findings": [f.as_dict() for f in self.findings],
            "notes": list(self.notes),
            "production_conservative": self.production_conservative,
            "dynamically_clean_speculative": (
                self.dynamically_clean_speculative
            ),
        }


@dataclass
class ProgramReport:
    """Checker verdict for one program."""

    program: str
    regions: List[RegionReport] = field(default_factory=list)
    replay_ok: bool = True
    replay_mismatches: List[str] = field(default_factory=list)
    lint: List[Dict[str, str]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def count(self, severity: str) -> int:
        return sum(r.count(severity) for r in self.regions)

    @property
    def unsound(self) -> int:
        extra = 0 if self.replay_ok else 1
        return self.count("unsound") + extra + len(self.errors)

    @property
    def ok(self) -> bool:
        return self.unsound == 0

    def as_dict(self) -> Dict:
        return {
            "program": self.program,
            "ok": self.ok,
            "severity_counts": {s: self.count(s) for s in SEVERITIES},
            "replay_ok": self.replay_ok,
            "replay_mismatches": list(self.replay_mismatches),
            "regions": [r.as_dict() for r in self.regions],
            "lint": list(self.lint),
            "errors": list(self.errors),
        }


# ----------------------------------------------------------------------
def check_region(
    labeling: LabelingResult,
    program: Program,
    dynamic_facts: Optional[DynamicFacts],
    config: CheckConfig,
) -> RegionReport:
    """Static + dynamic judgment of one region's labeling."""
    region = labeling.region
    facts = rederive_region(
        region, program=program, enum_budget=config.enum_budget
    )
    refs = list(region.references)
    report = RegionReport(
        region=region.name,
        references=len(refs),
        idempotent_labels=sum(1 for r in refs if labeling.is_idempotent(r)),
        exact=facts.exact,
        notes=list(facts.notes),
    )

    diffs = compare_region(labeling, facts)
    for diff in diffs:
        if diff.direction == "production-aggressive":
            if diff.kind == "label":
                severity = "suspect" if facts.exact else "info"
            else:
                severity = "info"
            report.findings.append(
                Finding(
                    severity,
                    region.name,
                    diff.kind,
                    diff.key,
                    f"production={diff.production} checker={diff.checker}"
                    + (f" ({diff.detail})" if diff.detail else ""),
                )
            )
        elif diff.kind == "label":
            report.production_conservative += 1
            report.findings.append(
                Finding(
                    "precision",
                    region.name,
                    diff.kind,
                    diff.key,
                    f"production={diff.production} checker={diff.checker}"
                    + (f" ({diff.detail})" if diff.detail else ""),
                )
            )

    if dynamic_facts is not None:
        by_uid = {r.uid: r for r in refs}
        if labeling.fully_independent:
            # Lemma 7 regions are never squash-replayed, so per-reference
            # re-executability is irrelevant; what must hold is the
            # *premise*: no value-changing cross-instance hazard.  Any
            # dynamic witness of one refutes the independence claim.
            premise_violations = (
                dynamic_facts.cross_flow_sink_uids
                | dynamic_facts.cross_value_hazard_write_uids
            )
            for uid in sorted(premise_violations):
                ref = by_uid.get(uid)
                # PRIVATE references run out of per-instance storage, so
                # sequential-trace hazards on them are expected: the
                # trace does not privatize, the engines do.
                if (
                    ref is not None
                    and labeling.category_of(ref)
                    is not IdempotencyCategory.PRIVATE
                ):
                    report.findings.append(
                        Finding(
                            "unsound",
                            region.name,
                            "dynamic-independence-violation",
                            uid,
                            "region labeled fully independent but a "
                            "value-changing cross-instance hazard was "
                            f"witnessed at {ref.describe()}",
                        )
                    )
            for uid in sorted(
                dynamic_facts.rfw_violation_uids - premise_violations
            ):
                ref = by_uid.get(uid)
                if ref is not None:
                    report.findings.append(
                        Finding(
                            "info",
                            region.name,
                            "dynamic-not-reexecutable",
                            uid,
                            "not re-executable in isolation; sound only "
                            "because the fully-independent region is "
                            f"never squashed: {ref.describe()}",
                        )
                    )
        else:
            for uid in sorted(dynamic_facts.cross_flow_sink_uids):
                ref = by_uid.get(uid)
                if ref is not None and labeling.is_idempotent(ref):
                    report.findings.append(
                        Finding(
                            "unsound",
                            region.name,
                            "dynamic-cross-flow",
                            uid,
                            "labeled idempotent but dynamically fed by a "
                            "value-changing cross-segment write: "
                            f"{ref.describe()}",
                        )
                    )
            for uid in sorted(dynamic_facts.rfw_violation_uids):
                ref = by_uid.get(uid)
                if ref is not None and labeling.is_idempotent(ref):
                    report.findings.append(
                        Finding(
                            "unsound",
                            region.name,
                            "dynamic-rfw-violation",
                            uid,
                            "labeled idempotent but dynamically read-before-"
                            f"written with a changing value: {ref.describe()}",
                        )
                    )
            for uid in sorted(dynamic_facts.cross_value_hazard_write_uids):
                ref = by_uid.get(uid)
                if (
                    ref is not None
                    and labeling.is_idempotent(ref)
                    and labeling.category_of(ref)
                    is not IdempotencyCategory.PRIVATE
                ):
                    report.findings.append(
                        Finding(
                            "unsound",
                            region.name,
                            "dynamic-cross-sink",
                            uid,
                            "labeled idempotent but dynamically the sink "
                            "of a value-changing cross-instance "
                            f"anti/output dependence: {ref.describe()}",
                        )
                    )
        clean = dynamic_facts.clean_uids()
        report.dynamically_clean_speculative = sum(
            1
            for uid in clean
            if uid in by_uid and not labeling.is_idempotent(by_uid[uid])
        )
    return report


def check_program(
    program: Program, config: Optional[CheckConfig] = None
) -> ProgramReport:
    """Full differential check of one program.

    With tracing armed, each stage (lint / label / oracle / regions /
    replay) runs inside its own ``checker.*`` span under one
    ``checker.check_program`` parent.
    """
    config = config or CheckConfig()
    report = ProgramReport(program=program.name)

    with TRACER.span(
        "checker.check_program", category="checker", program=program.name
    ):
        if config.lint:
            with TRACER.span("checker.lint", category="checker"):
                report.lint = [
                    {
                        "severity": issue.severity,
                        "location": issue.location,
                        "message": issue.message,
                    }
                    for issue in validate_program(program, strict=False)
                ]

        with TRACER.span("checker.label", category="checker"):
            labelings = label_program(program)

        oracle: Optional[TraceOracle] = None
        if config.dynamic:
            with TRACER.span("checker.oracle", category="checker"):
                try:
                    oracle = run_trace(program, op_budget=config.op_budget)
                except Exception as exc:  # noqa: BLE001 - reported, not masked
                    report.errors.append(f"trace oracle failed: {exc}")

        for region in program.regions:
            labeling = labelings.get(region.name)
            if labeling is None:  # pragma: no cover - defensive
                continue
            dyn = oracle.facts.get(region.name) if oracle is not None else None
            with TRACER.span(
                "checker.region", category="checker", region=region.name
            ):
                report.regions.append(
                    check_region(labeling, program, dyn, config)
                )

        if config.replay:
            with TRACER.span("checker.replay", category="checker"):
                try:
                    replay = replay_check(
                        program, labelings, op_budget=config.op_budget
                    )
                    report.replay_ok = replay.ok
                    report.replay_mismatches = replay.mismatches
                except Exception as exc:  # noqa: BLE001 - reported, not masked
                    report.errors.append(f"squash-replay failed: {exc}")
    return report


# ----------------------------------------------------------------------
# Mutation testing of the checker itself
# ----------------------------------------------------------------------
class _MutatedLabeling:
    """A labeling with one speculative reference flipped to idempotent."""

    def __init__(self, base: LabelingResult, flipped_uid: str):
        self._base = base
        self._flipped = flipped_uid

    def __getattr__(self, name: str) -> object:
        return getattr(self._base, name)

    def is_idempotent(self, ref: MemoryReference) -> bool:
        if ref.uid == self._flipped:
            return True
        return self._base.is_idempotent(ref)


@dataclass
class MutationReport:
    """Outcome of the checker's self-test."""

    mutants: int = 0
    caught: int = 0
    missed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.caught == self.mutants

    def as_dict(self) -> Dict:
        return {
            "mutants": self.mutants,
            "caught": self.caught,
            "missed": list(self.missed),
            "ok": self.ok,
        }


def mutation_check(
    program: Program,
    config: Optional[CheckConfig] = None,
    max_mutants: int = 6,
) -> MutationReport:
    """Flip hazardous speculative labels to idempotent; all must be caught.

    Candidates are references the production labeler (correctly) left
    speculative *and* for which the trace oracle witnessed a dynamic
    hazard -- flipping one injects a genuine mislabeling.  Each mutant
    must be flagged by the trace judgment or the squash-replay diff.
    """
    config = config or CheckConfig()
    report = MutationReport()
    labelings = label_program(program)
    oracle = run_trace(program, op_budget=config.op_budget)

    for region in program.regions:
        labeling = labelings.get(region.name)
        dyn = oracle.facts.get(region.name)
        if labeling is None or dyn is None:
            continue
        by_uid = {r.uid: r for r in region.references}
        hazards = sorted(
            dyn.cross_flow_sink_uids
            | dyn.rfw_violation_uids
            | dyn.cross_value_hazard_write_uids
        )
        for uid in hazards:
            if report.mutants >= max_mutants:
                break
            ref = by_uid.get(uid)
            if ref is None or labeling.is_idempotent(ref):
                continue
            report.mutants += 1
            mutated = dict(labelings)
            mutated[region.name] = _MutatedLabeling(labeling, uid)

            caught = False
            # The trace judgment must flag the flipped reference...
            mutated_region = check_region(
                mutated[region.name], program, dyn, config
            )
            if any(
                f.severity == "unsound" and f.key == uid
                for f in mutated_region.findings
            ):
                caught = True
            # ...and for writes the replay diff should usually agree.
            if not caught and config.replay:
                replay = replay_check(
                    program, mutated, op_budget=config.op_budget
                )
                caught = not replay.ok
            if caught:
                report.caught += 1
            else:
                report.missed.append(f"{region.name}:{uid}")
    return report
