"""Processor assignment and per-region schedule construction.

Consumes one :class:`~repro.timing.events.RegionRecording` and lays its
segment occurrences out on ``P`` logical processors:

* **window-ordered dispatch** -- segments are dispatched strictly in age
  order (sequential program order, Definition 1), each paying
  ``dispatch_overhead``; at most ``window`` segments are in flight, so
  segment *i* cannot dispatch before segment *i - window* retired;
* **earliest-free processor assignment** -- a dispatched segment starts
  on the processor that frees up first (with ``P >= window`` every
  in-flight segment has its own processor, exactly the engine's model;
  with ``P < window`` segments queue);
* **attempt replay** -- a segment's recorded attempts run back to back
  on its processor: run phases advance the clock, an overflow stall
  waits until every older segment retired (the engine drains an
  overflowed buffer only once the segment is the oldest) and then pays
  the drain's commit cost, and a squashed attempt's restart is **gated
  at the violating write's time** -- the recorder snapshots which of
  the (older, already scheduled) writer's attempts performed the write
  and how many priced cycles into it, so a restart never begins before
  the value it re-reads exists -- then pays ``squash_penalty``;
* **commit-in-age-order arbitration** -- a finished segment cannot
  commit before its older neighbour committed; the wait is accounted as
  stall time, the drain itself as commit cost.

The result is a :class:`RegionSchedule` with per-segment start / finish
/ commit times and per-processor busy / wasted / stall cycle breakdowns;
:mod:`repro.timing.makespan` chains region schedules and direct sections
into the whole-program makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.timing.cost import CostModel
from repro.timing.events import (
    OUTCOME_COMMITTED,
    OUTCOME_DISCARDED,
    PHASE_DRAIN,
    PHASE_RUN,
    PHASE_STALL,
    RegionRecording,
)


@dataclass
class SegmentTiming:
    """Scheduled times of one segment occurrence."""

    key: Tuple
    age: int
    processor: int
    dispatch_time: int
    start_time: int
    #: End of the last attempt's execution (before commit arbitration).
    finish_time: int
    #: Retirement: commit completed, or wrong-path discard.
    commit_time: int
    attempts: int
    outcome: str
    busy_cycles: int = 0
    wasted_cycles: int = 0
    stall_cycles: int = 0
    #: Scheduled ``(begin, end, outcome)`` interval of every attempt --
    #: the slices the Perfetto exporter renders on this segment's lane.
    attempt_windows: List[Tuple[int, int, str]] = field(default_factory=list)
    #: ``(begin, end, reason)`` intervals the segment spent waiting:
    #: ``drain-wait`` (overflowed, waiting to become oldest),
    #: ``commit-arbitration`` (finished, waiting for the older commit),
    #: ``squash-gate`` (restart gated at the violating write's time).
    stall_windows: List[Tuple[int, int, str]] = field(default_factory=list)


@dataclass
class ProcessorLane:
    """Cycle breakdown of one logical processor within a schedule."""

    processor: int
    busy: int = 0
    wasted: int = 0
    stall: int = 0
    segments: int = 0


@dataclass
class RegionSchedule:
    """One region laid out on ``processors`` logical processors."""

    name: str
    kind: str
    processors: int
    window: int
    start: int
    end: int
    segments: List[SegmentTiming] = field(default_factory=list)
    lanes: List[ProcessorLane] = field(default_factory=list)

    @property
    def span(self) -> int:
        return self.end - self.start

    def longest_segment_cycles(self) -> int:
        """The longest single-segment critical path (final-attempt work).

        Any valid parallel execution of the region is at least this
        long; the makespan tests assert ``span >= longest``.
        """
        longest = 0
        for seg in self.segments:
            if seg.busy_cycles > longest:
                longest = seg.busy_cycles
        return longest


def schedule_region(
    region: RegionRecording,
    processors: int,
    cost: CostModel,
    window: int,
    start: int = 0,
) -> RegionSchedule:
    """Lay ``region``'s recorded segments out on ``processors`` lanes."""
    processors = max(1, int(processors))
    window = max(1, int(window))
    schedule = RegionSchedule(
        name=region.name,
        kind=region.kind,
        processors=processors,
        window=window,
        start=start,
        end=start,
        lanes=[ProcessorLane(processor=p) for p in range(processors)],
    )
    proc_free = [start] * processors
    #: Retirement times in age order (frees the segment's window slot).
    retire_times: List[int] = []
    #: age -> start time of each scheduled attempt (squash-gate lookups;
    #: violating writers are older, hence already scheduled).
    attempt_starts: Dict[int, List[int]] = {}
    #: Latest retirement among all older segments (overflow-drain gate).
    all_retired = start
    #: Commit time of the youngest committed segment (age-order arbitration).
    last_commit = start
    last_dispatch = start

    for index, seg in enumerate(region.segments):
        # Window-ordered dispatch: in age order, gated on the segment
        # window slots, one dispatch_overhead each.
        gate = retire_times[index - window] if index >= window else start
        dispatch = max(last_dispatch, gate) + cost.dispatch_overhead
        last_dispatch = dispatch
        # Earliest-free processor.
        processor = min(range(processors), key=proc_free.__getitem__)
        t = max(dispatch, proc_free[processor])
        seg_start = t
        busy = wasted = stall = 0
        finish = t
        commit_time = t
        pending_stall = False
        starts = attempt_starts[seg.age] = []
        attempt_windows: List[Tuple[int, int, str]] = []
        stall_windows: List[Tuple[int, int, str]] = []
        for attempt in seg.attempts:
            starts.append(t)
            attempt_begin = t
            overhead = 0
            for phase in attempt.phases:
                tag = phase[0]
                if tag is PHASE_RUN:
                    t += phase[1]
                elif tag is PHASE_STALL:
                    pending_stall = True
                elif tag is PHASE_DRAIN:
                    if pending_stall:
                        # Drained only once oldest: wait for every older
                        # segment to retire.
                        if all_retired > t:
                            stall += all_retired - t
                            stall_windows.append((t, all_retired, "drain-wait"))
                            t = all_retired
                        pending_stall = False
                    drain_cost = cost.commit_cost(phase[1])
                    t += drain_cost
                    overhead += drain_cost
            if attempt.outcome is OUTCOME_COMMITTED:
                finish = t
                # Commit arbitration: strictly after the older commit.
                if last_commit > t:
                    stall += last_commit - t
                    stall_windows.append((t, last_commit, "commit-arbitration"))
                    t = last_commit
                commit_cost = cost.commit_cost(attempt.commit_entries)
                t += commit_cost
                commit_time = t
                last_commit = t
                busy += attempt.busy_cycles + overhead + commit_cost
            else:
                wasted += attempt.busy_cycles + overhead
                if attempt.outcome is OUTCOME_DISCARDED:
                    finish = t
                    commit_time = t
                else:  # squashed (a squash interrupts any pending wait)
                    # Causality gate: the restart re-reads the violating
                    # writer's value, so it cannot begin before that
                    # write happened on the writer's (older, already
                    # scheduled) timeline.
                    writer_starts = attempt_starts.get(attempt.squashed_by)
                    widx = attempt.squashed_by_attempt
                    if writer_starts is not None and widx is not None and widx < len(
                        writer_starts
                    ):
                        violation = writer_starts[widx] + attempt.squashed_at_elapsed
                        if violation > t:
                            stall += violation - t
                            stall_windows.append((t, violation, "squash-gate"))
                            t = violation
                    t += cost.squash_penalty
                    wasted += cost.squash_penalty
                pending_stall = False
            attempt_windows.append((attempt_begin, t, attempt.outcome))
        proc_free[processor] = t
        retire_times.append(t)
        if t > all_retired:
            all_retired = t
        lane = schedule.lanes[processor]
        lane.busy += busy
        lane.wasted += wasted
        lane.stall += stall
        lane.segments += 1
        schedule.segments.append(
            SegmentTiming(
                key=seg.key,
                age=seg.age,
                processor=processor,
                dispatch_time=dispatch,
                start_time=seg_start,
                finish_time=finish,
                commit_time=commit_time,
                attempts=len(seg.attempts),
                outcome=seg.outcome,
                busy_cycles=busy,
                wasted_cycles=wasted,
                stall_cycles=stall,
                attempt_windows=attempt_windows,
                stall_windows=stall_windows,
            )
        )
        if t > schedule.end:
            schedule.end = t
    return schedule
