"""Bounded worker pool with backpressure.

The daemon's sessions parse requests on their reader threads but run
handlers on this shared pool, so one slow ``speedup_sweep`` never
blocks another session's ``analyze``.  Admission is bounded: once
``max_inflight`` jobs are queued-or-running, :meth:`WorkerPool.submit`
raises :class:`PoolSaturated` and the session answers with the
``OVERLOADED`` (-32029) error instead of buffering unboundedly -- the
JSON-RPC analogue of HTTP 429.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, List

#: Queue sentinel that tells a worker to exit.
_STOP = object()


class PoolSaturated(Exception):
    """Raised by :meth:`WorkerPool.submit` once ``max_inflight`` is hit."""

    def __init__(self, max_inflight: int):
        super().__init__(f"worker pool saturated ({max_inflight} in flight)")
        self.max_inflight = max_inflight


class WorkerPool:
    """``workers`` daemon threads draining a bounded job queue.

    Jobs are zero-argument callables that own their whole lifecycle
    (dispatch + response write + error handling); a job that raises
    is swallowed after accounting so one bad request never kills a
    worker.
    """

    def __init__(self, workers: int = 4, max_inflight: int = 8):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        self._threads: List[threading.Thread] = []
        for i in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Jobs currently queued or running."""
        with self._lock:
            return self._inflight

    @property
    def workers(self) -> int:
        return len(self._threads)

    def submit(self, job: Callable[[], None]) -> None:
        """Enqueue ``job``; raise :class:`PoolSaturated` over the bound."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if self._inflight >= self.max_inflight:
                raise PoolSaturated(self.max_inflight)
            self._inflight += 1
        self._queue.put(job)

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs; with ``wait`` drain and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join(timeout=10)

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            try:
                job()
            except Exception:  # noqa: BLE001 -- jobs own their errors;
                # a late write to a disconnected client must not kill
                # the worker thread.
                pass
            finally:
                with self._lock:
                    self._inflight -= 1
