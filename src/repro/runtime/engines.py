"""Speculative execution engines: HOSE and CASE (Definitions 2 and 4).

Both engines execute a whole :class:`~repro.ir.program.Program` with a
window of in-flight segments per region, driving the *same* operation
streams the sequential interpreter drives (the coroutines of
:mod:`repro.runtime.executor`).  The init section, region entry code
(loop bounds) and finale run non-speculatively, exactly as in
:class:`~repro.runtime.interpreter.SequentialInterpreter`; inside a
region up to ``window`` segments execute concurrently (simulated by
age-ordered round-robin, one operation per segment per round) on top of
the :mod:`~repro.runtime.specstore` substrate:

* a speculative read is served by the segment's own buffer, then by the
  nearest older in-flight buffer (forwarding), then by conventional
  memory -- and is *tracked* so a later write by an older segment can
  detect the violation;
* a speculative write is buffered; every write (buffered or direct)
  rolls back all segments younger than the oldest violating reader;
* a buffer that would exceed its capacity stalls the segment; once the
  stalled segment is the oldest it drains its buffer to memory and
  finishes in write-through mode (it is non-speculative from then on);
* segments commit strictly in age order, which is what makes the final
  memory state bit-identical to the sequential interpreter's: the
  oldest segment always reads committed (sequential) state, and any
  younger segment that consumed a stale value is squashed and
  re-executed before it can commit.

The two engines differ only in *routing*:

:class:`HOSEEngine` (Definition 2)
    The hardware-only engine.  Every memory reference of a speculative
    segment goes through speculative storage.

:class:`CASEEngine` (Definition 4)
    The compiler-assisted engine.  References labeled ``IDEMPOTENT`` by
    Algorithm 2 (:func:`repro.idempotency.labeling.label_region`) bypass
    speculative storage: read-only, shared-dependent and
    fully-independent references access conventional memory directly
    (leaving no access information behind, per Theorems 1 and 2), and
    references to privatizable variables are served from a per-segment
    private frame that is flushed at commit.  Only the references that
    stay ``SPECULATIVE`` occupy buffer entries, which is the paper's
    headline effect: less speculative-storage pressure than HOSE for
    the same program.

Explicit regions additionally speculate on control flow (HOSE Property
5): the in-flight window follows the *predicted* path (first successor
of each segment); the actual successor is resolved when a segment
commits, and a mispredicted path squashes every younger in-flight
segment (``control_mispredictions``).

Stats semantics: ``reads`` / ``writes`` / ``cycles`` /
``reference_counts`` count **all executed work including rolled-back
attempts** (``wasted_cycles`` isolates the rolled-back share);
``speculative_accesses`` / ``idempotent_accesses`` /
``private_accesses`` split the references by route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.program import Program
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion, Region
from repro.obs import metrics as obs_metrics
from repro.obs.tracer import TRACER, _NULL_SPAN
from repro.ir.symbols import SymbolError
from repro.ir.types import IdempotencyCategory, RefLabel
from repro.runtime.errors import (
    AddressError,
    EngineLivelockError,
    FaultInjected,
    InvariantViolation,
    SimulationError,
)
from repro.runtime.executor import (
    ComputeOp,
    ReadOp,
    SegmentCoroutine,
    WriteOp,
    evaluate_expression,
    segment_coroutine,
)
from repro.runtime.interpreter import MAX_EXPLICIT_STEPS, SequentialInterpreter
from repro.runtime.memory import (
    Address,
    MemoryHierarchy,
    MemoryImage,
    MemoryLatencies,
)
from repro.runtime.specstore import (
    SegmentBuffer,
    SpeculativeStore,
    SpecStoreError,
)
from repro.runtime.stats import ExecutionStats

#: Reference routes (how an engine serves one static reference).  The
#: canonical definition -- the timing cost model imports these (timing
#: consumes runtime, never the reverse).
ROUTE_SPECULATIVE = "speculative"
ROUTE_DIRECT = "direct"
ROUTE_PRIVATE = "private"

#: Errors that always indicate a corrupted/stuck speculative substrate
#: (never a program bug): the engine degrades to sequential execution
#: on these even without a fault injector attached.
SUBSTRATE_ERRORS = (InvariantViolation, EngineLivelockError, SpecStoreError)

#: Defaults for the graceful-degradation policy.  Both bounds are far
#: above anything a fault-free run can reach (restarts per segment are
#: bounded by the in-flight window times the writes per segment, and
#: the oldest segment commits within one round per operation), so they
#: only ever trip on genuine livelock.
DEFAULT_MAX_RESTARTS = 100_000
DEFAULT_WATCHDOG_ROUNDS = 1_000_000


@dataclass
class DegradationReport:
    """Why a speculative run fell back to the sequential interpreter."""

    #: Engine that gave up ("hose" / "case").
    engine: str
    program: str
    #: Class name of the error that triggered the fallback.
    error_type: str
    reason: str
    #: Region being executed when the engine gave up (None = outside
    #: any region, e.g. init/finale).
    region: Optional[str]
    #: Progress of the abandoned speculative attempt.
    segments_committed: int
    rollbacks: int
    fault_restarts: int
    #: Injected-fault counts per kind at the time of the fallback
    #: (empty when no injector was attached).
    fault_counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "engine": self.engine,
            "program": self.program,
            "error_type": self.error_type,
            "reason": self.reason,
            "region": self.region,
            "segments_committed": self.segments_committed,
            "rollbacks": self.rollbacks,
            "fault_restarts": self.fault_restarts,
            "fault_counts": dict(self.fault_counts),
        }


@dataclass
class SpeculativeResult:
    """Outcome of one speculative execution."""

    program: str
    engine: str
    memory: MemoryImage
    stats: ExecutionStats
    window: int
    capacity: Optional[int]
    #: Speculative-storage occupancy high-water marks (all buffers /
    #: one buffer) -- the HOSE vs CASE comparison quantities.
    spec_peak_entries: int = 0
    spec_peak_segment_entries: int = 0
    #: Region name -> labeling used for routing (CASE only).
    labeling: Dict[str, object] = field(default_factory=dict)
    #: True when the speculative run was abandoned and the final state
    #: came from the sequential fallback (bit-identical by construction).
    degraded: bool = False
    degradation: Optional[DegradationReport] = None
    #: Injected-fault counts per kind (runs with an injector attached).
    fault_counts: Dict[str, int] = field(default_factory=dict)

    def value_of(self, variable: str, subscripts=()) -> float:
        """Convenience read of the final memory state."""
        return self.memory.read(variable, subscripts)


class _SegmentTask:
    """One in-flight segment occurrence: coroutine + speculative state."""

    __slots__ = (
        "key",
        "segment_name",
        "age",
        "spawn",
        "coroutine",
        "current_op",
        "pending_value",
        "done",
        "stalled",
        "write_through",
        "buffer",
        "private",
        "cycles",
        "restarts",
    )

    def __init__(
        self,
        key: Tuple,
        segment_name: Optional[str],
        age: int,
        spawn: Callable[[], SegmentCoroutine],
        buffer: SegmentBuffer,
    ):
        self.key = key
        self.segment_name = segment_name
        self.age = age
        self.spawn = spawn
        self.coroutine = spawn()
        #: Operation yielded but not yet completed (overflow retry point).
        self.current_op = None
        #: Value to send into the coroutine for the next operation.
        self.pending_value: Optional[float] = None
        self.done = False
        self.stalled = False
        #: True once an overflowed segment, as the oldest, drained its
        #: buffer and continues non-speculatively.
        self.write_through = False
        self.buffer: Optional[SegmentBuffer] = buffer
        #: Private frame for references routed ROUTE_PRIVATE (CASE).
        self.private: Dict[Address, float] = {}
        #: Cycles of the current attempt (moved to wasted_cycles on squash).
        self.cycles = 0
        #: Squash-restart cycles consumed by this occurrence (bounded by
        #: the engine's ``max_restarts`` policy).
        self.restarts = 0


class SpeculativeEngine:
    """Common scheduler of the speculative engines.

    Subclasses choose the reference routing via :meth:`_routes_for`;
    this base class routes everything through speculative storage
    (i.e. behaves as HOSE).
    """

    engine_name = "speculative"

    def __init__(
        self,
        program: Program,
        window: int = 4,
        capacity: Optional[int] = 64,
        op_budget: Optional[int] = None,
        model_latency: bool = False,
        latencies: Optional[MemoryLatencies] = None,
        recorder=None,
        store: Optional[SpeculativeStore] = None,
        injector=None,
        auditor=None,
        max_restarts: Optional[int] = DEFAULT_MAX_RESTARTS,
        watchdog_rounds: Optional[int] = DEFAULT_WATCHDOG_ROUNDS,
        fallback: bool = True,
        batch: bool = False,
    ):
        self.program = program
        self.window = max(1, int(window))
        self.capacity = capacity
        self.op_budget = op_budget
        #: A pre-built store (e.g. a FaultySpeculativeStore) overrides
        #: the default substrate; its capacity wins.
        self.store = store if store is not None else SpeculativeStore(
            capacity=capacity
        )
        if store is not None:
            self.capacity = store.capacity
        #: Resilience policy (see docs/ROBUSTNESS.md): an optional
        #: :class:`repro.resilience.faults.FaultInjector` feeding the
        #: op/prediction fault hooks, an optional
        #: :class:`repro.resilience.auditor.InvariantAuditor` run after
        #: every scheduling round, bounded squash-restart cycles per
        #: segment occurrence, a global rounds-without-commit watchdog,
        #: and ``fallback`` selecting graceful degradation to the
        #: sequential interpreter over raising.
        self._injector = injector
        if injector is not None and auditor is None:
            # An injected substrate must always be audited, otherwise
            # structural faults (e.g. dropped commits) go undetected.
            from repro.resilience.auditor import InvariantAuditor

            auditor = InvariantAuditor()
        self.auditor = auditor
        self.max_restarts = max_restarts
        self.watchdog_rounds = watchdog_rounds
        self.fallback = fallback
        self._rounds_since_commit = 0
        self._committed_age = 0
        self._region_name: Optional[str] = None
        self.hierarchy: Optional[MemoryHierarchy] = (
            MemoryHierarchy(latencies=latencies, processors=self.window)
            if model_latency
            else None
        )
        #: Optional :class:`repro.timing.events.TimingRecorder`; when
        #: attached, every lifecycle event and operation is emitted as a
        #: timing event (and compute costs use the recorder's cost
        #: model), without perturbing execution or final memory state.
        self._recorder = recorder
        self._compute_cost = (
            recorder.cost.compute_cost_fn() if recorder is not None else None
        )
        if recorder is not None:
            recorder.run_begin(program.name, self.engine_name, self.window)
        #: Observability hook, snapshotted once (mirrors the recorder
        #: guard): ``None`` while tracing is disabled, so every
        #: lifecycle site costs a single identity check.
        self._obs = TRACER if TRACER.enabled else None
        self._age = 0
        #: uid -> route for the region currently executing.
        self._routes: Dict[str, str] = {}
        #: Batched speculative replay (:mod:`repro.runtime.batch`): run
        #: each eligible loop region's attempts as whole-segment batches
        #: with post-hoc validation instead of op-interleaving.  Off by
        #: default -- the batched protocol is bit-identical in final
        #: memory but has different micro-dynamics (fault-free runs
        #: validate instead of violating), so dynamics-sensitive
        #: consumers opt in explicitly.
        self.batch = batch
        #: Region name -> compiled BatchProgram (None = ineligible).
        self._batch_programs: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # routing (the only thing HOSE and CASE disagree on)
    # ------------------------------------------------------------------
    def _routes_for(
        self, region: Region, result: SpeculativeResult
    ) -> Dict[str, str]:
        """Per-reference routes for ``region``; absent uid = speculative."""
        return {}

    # ------------------------------------------------------------------
    def run(self) -> SpeculativeResult:
        """Execute the whole program speculatively; final state + stats.

        When the speculative substrate fails -- an invariant violation,
        a livelock (restart budget or watchdog), a spec-store usage
        error, or any simulation error while a fault injector is
        attached -- and ``fallback`` is on, the run degrades gracefully:
        the partial speculative state is abandoned and the whole program
        re-executes through :class:`SequentialInterpreter`, so the
        returned final memory state is still bit-identical to the
        sequential ground truth.  The result carries a
        :class:`DegradationReport` describing what failed.
        """
        if self._obs is not None:
            with self._obs.span(
                "engine.run",
                category="engine",
                engine=self.engine_name,
                program=self.program.name,
                window=self.window,
                capacity=self.capacity,
            ):
                return self._run()
        return self._run()

    def _run(self) -> SpeculativeResult:
        memory = MemoryImage(self.program.symbols)
        stats = ExecutionStats()
        result = SpeculativeResult(
            program=self.program.name,
            engine=self.engine_name,
            memory=memory,
            stats=stats,
            window=self.window,
            capacity=self.capacity,
        )
        try:
            self._execute(memory, stats, result)
        except SimulationError as exc:
            if not self._should_degrade(exc):
                raise
            return self._degrade(exc, stats)
        result.spec_peak_entries = self.store.peak_entries
        result.spec_peak_segment_entries = self.store.peak_segment_entries
        if self._injector is not None:
            result.fault_counts = dict(self._injector.counts)
        return result

    def _should_degrade(self, exc: SimulationError) -> bool:
        """Degradation policy: substrate failures always degrade; with
        an injector attached *any* simulation error is suspect (the
        fault may have manifested as a program-level error, e.g. an
        injected bad subscript)."""
        if not self.fallback:
            return False
        if isinstance(exc, SUBSTRATE_ERRORS):
            return True
        return self._injector is not None

    def _degrade(self, exc: SimulationError, stats: ExecutionStats) -> SpeculativeResult:
        """Abandon speculation; re-execute sequentially from scratch."""
        report = DegradationReport(
            engine=self.engine_name,
            program=self.program.name,
            error_type=type(exc).__name__,
            reason=str(exc),
            region=self._region_name,
            segments_committed=stats.segments_committed,
            rollbacks=stats.rollbacks,
            fault_restarts=stats.fault_restarts,
            fault_counts=(
                dict(self._injector.counts) if self._injector is not None else {}
            ),
        )
        if self._obs is not None:
            self._obs.event(
                "engine.degraded",
                category="engine",
                engine=self.engine_name,
                error_type=report.error_type,
                region=report.region,
            )
        registry = obs_metrics.metrics_registry()
        if registry.collecting:
            obs_metrics.ingest_degradation(report, registry=registry)
        sequential = SequentialInterpreter(
            self.program, op_budget=self.op_budget, model_latency=False
        ).run()
        result = SpeculativeResult(
            program=self.program.name,
            engine=self.engine_name,
            memory=sequential.memory,
            stats=sequential.stats,
            window=self.window,
            capacity=self.capacity,
            degraded=True,
            degradation=report,
        )
        result.spec_peak_entries = self.store.peak_entries
        result.spec_peak_segment_entries = self.store.peak_segment_entries
        result.fault_counts = dict(report.fault_counts)
        return result

    def _execute(
        self,
        memory: MemoryImage,
        stats: ExecutionStats,
        result: SpeculativeResult,
    ) -> None:
        recorder = self._recorder
        self._region_name = None
        self._drive_direct(
            segment_coroutine(
                self.program.init,
                op_budget=self.op_budget,
                compute_cost=self._compute_cost,
            ),
            memory,
            stats,
        )
        for region in self.program.regions:
            self._routes = self._routes_for(region, result)
            self._region_name = region.name
            self._rounds_since_commit = 0
            if recorder is not None:
                recorder.region_begin(
                    region.name,
                    "loop" if isinstance(region, LoopRegion) else "explicit",
                )
            with (
                self._obs.span(
                    "engine.region",
                    category="engine",
                    region=region.name,
                    engine=self.engine_name,
                )
                if self._obs is not None
                else _NULL_SPAN
            ):
                if isinstance(region, LoopRegion):
                    self._run_loop_region(region, memory, stats)
                elif isinstance(region, ExplicitRegion):
                    self._run_explicit_region(region, memory, stats)
                else:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"unknown region type {type(region).__name__}"
                    )
            if self.auditor is not None:
                self.auditor.audit_region_end(self.store, region.name)
            if recorder is not None:
                recorder.region_end()
        self._region_name = None
        self._drive_direct(
            segment_coroutine(
                self.program.finale,
                op_budget=self.op_budget,
                compute_cost=self._compute_cost,
            ),
            memory,
            stats,
        )

    # ------------------------------------------------------------------
    # non-speculative sections (init / finale)
    # ------------------------------------------------------------------
    def _drive_direct(
        self,
        coroutine: SegmentCoroutine,
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        """Run a coroutine straight against conventional memory."""
        access_latency = (
            self.hierarchy.access_latency if self.hierarchy is not None else None
        )
        recorder = self._recorder
        try:
            op = coroutine.send(None)
            while True:
                cls = type(op)
                if cls is ReadOp:
                    address = memory.address_of(op.variable, op.subscripts)
                    value = memory.load(address)
                    stats.reads += 1
                    if op.ref is not None:
                        stats.count_reference(op.ref.uid)
                    if access_latency is not None:
                        latency = access_latency(address)
                        stats.cycles += latency
                        stats.memory_latency_cycles += latency
                    if recorder is not None:
                        recorder.direct_op("read", 0)
                    op = coroutine.send(value)
                elif cls is WriteOp:
                    address = memory.address_of(op.variable, op.subscripts)
                    memory.store(address, op.value)
                    stats.writes += 1
                    if op.ref is not None:
                        stats.count_reference(op.ref.uid)
                    if access_latency is not None:
                        latency = access_latency(address)
                        stats.cycles += latency
                        stats.memory_latency_cycles += latency
                    if recorder is not None:
                        recorder.direct_op("write", 0)
                    op = coroutine.send(None)
                else:  # ComputeOp
                    stats.cycles += op.cycles
                    if recorder is not None:
                        recorder.direct_op("compute", op.cycles)
                    op = coroutine.send(None)
        except StopIteration:
            return
        except SymbolError as exc:
            raise AddressError(str(exc)) from exc

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def _start_task(
        self,
        key: Tuple,
        segment_name: Optional[str],
        spawn: Callable[[], SegmentCoroutine],
        stats: ExecutionStats,
    ) -> _SegmentTask:
        self._age += 1
        buffer = self.store.open_segment(key, self._age)
        task = _SegmentTask(key, segment_name, self._age, spawn, buffer)
        stats.segments_started += 1
        if self._recorder is not None:
            self._recorder.segment_started(key, self._age)
        if self._obs is not None:
            self._obs.event(
                "engine.dispatch", category="engine", age=self._age, segment=key
            )
        return task

    def _restart(
        self,
        task: _SegmentTask,
        stats: ExecutionStats,
        by_age: Optional[int] = None,
    ) -> None:
        """Roll a violated segment back and re-execute it from scratch."""
        task.restarts += 1
        if self.max_restarts is not None and task.restarts > self.max_restarts:
            raise EngineLivelockError(
                f"segment {task.key!r} exceeded the restart budget "
                f"({self.max_restarts}); the window is not making progress"
            )
        stats.rollbacks += 1
        stats.wasted_cycles += task.cycles
        task.cycles = 0
        if task.buffer is not None:
            self.store.squash(task.buffer)
        task.private.clear()
        task.coroutine.close()
        task.coroutine = task.spawn()
        task.current_op = None
        task.pending_value = None
        task.done = False
        task.stalled = False
        stats.segments_started += 1
        if self._recorder is not None:
            self._recorder.squashed(task.age, by_age)
        if self._obs is not None:
            self._obs.event(
                "engine.squash", category="engine", age=task.age, by_age=by_age
            )

    def _discard(self, task: _SegmentTask, stats: ExecutionStats) -> None:
        """Throw a wrong-path segment away (control misprediction)."""
        stats.rollbacks += 1
        stats.wasted_cycles += task.cycles
        if task.buffer is not None:
            self.store.abandon(task.buffer)
            task.buffer = None
        task.coroutine.close()
        if self._recorder is not None:
            self._recorder.discarded(task.age)
        if self._obs is not None:
            self._obs.event("engine.discard", category="engine", age=task.age)

    def _stall(self, task: _SegmentTask, stats: ExecutionStats) -> None:
        if not task.stalled:
            task.stalled = True
            stats.overflow_stalls += 1
            if self._recorder is not None:
                self._recorder.stalled(task.age)
            if self._obs is not None:
                self._obs.event(
                    "engine.stall", category="engine", age=task.age
                )

    def _unstall_oldest(
        self, task: _SegmentTask, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        """Drain the overflowed oldest segment; it finishes write-through.

        As the oldest in-flight segment it is no longer speculative, so
        its buffered values can safely become architecturally visible
        early and the rest of the segment writes through.
        """
        # Every tracked entry (write values and read access info) is
        # flushed early; only the write values reach memory.
        stats.overflow_entries += task.buffer.entries
        drained = self.store.commit(task.buffer, memory)
        stats.commit_entries += drained
        task.buffer = None
        task.write_through = True
        task.stalled = False
        if self._recorder is not None:
            self._recorder.drained(task.age, drained)
        if self._obs is not None:
            self._obs.event(
                "engine.drain", category="engine", age=task.age, entries=drained
            )

    def _commit_task(
        self, task: _SegmentTask, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        """Commit the finished oldest segment in age order."""
        entries = 0
        if task.buffer is not None:
            entries = self.store.commit(task.buffer, memory)
            stats.commit_entries += entries
            task.buffer = None
        for address, value in task.private.items():
            memory.store(address, value)
        stats.segments_committed += 1
        self._committed_age = task.age
        self._rounds_since_commit = 0
        if self._recorder is not None:
            self._recorder.committed(task.age, entries + len(task.private))
        if self._obs is not None:
            self._obs.event(
                "engine.commit",
                category="engine",
                age=task.age,
                entries=entries + len(task.private),
            )

    # ------------------------------------------------------------------
    # violation detection
    # ------------------------------------------------------------------
    def _check_violations(
        self,
        writer: _SegmentTask,
        address: Address,
        active: List[_SegmentTask],
        stats: ExecutionStats,
    ) -> None:
        """Roll back younger segments that consumed a now-stale value."""
        violators = self.store.violators(writer.age, address)
        if not violators:
            return
        stats.violations += len(violators)
        oldest_violator = min(buffer.age for buffer in violators)
        for task in active:
            # Everything younger than the oldest violator restarts: the
            # violator itself consumed the stale value, and segments
            # younger still may have consumed the violator's results
            # through forwarding.
            if task.age >= oldest_violator:
                self._restart(task, stats, by_age=writer.age)

    # ------------------------------------------------------------------
    # one simulated operation of one segment
    # ------------------------------------------------------------------
    def _charge(
        self,
        task: _SegmentTask,
        stats: ExecutionStats,
        cycles: int,
        kind: str = "compute",
        route: Optional[str] = None,
    ) -> None:
        """Charge one operation's cycles to the attempt and the totals.

        The single choke point for per-op cycle accounting -- and, when
        a timing recorder is attached, for timing event emission (the
        recorder prices the op with its own cost model; ``cycles`` here
        are engine cycles: compute costs, plus hierarchy latency when
        ``model_latency`` is on).
        """
        task.cycles += cycles
        stats.cycles += cycles
        if kind != "compute":
            stats.memory_latency_cycles += cycles
        if self._recorder is not None:
            self._recorder.op(task.age, kind, cycles, route)

    def _access_latency(self, task: _SegmentTask, address: Address) -> int:
        """Hierarchy latency of one access (0 without a latency model)."""
        if self.hierarchy is None:
            return 0
        return self.hierarchy.access_latency(
            address, processor=task.age % self.window
        )

    def _step(
        self,
        task: _SegmentTask,
        memory: MemoryImage,
        stats: ExecutionStats,
        active: List[_SegmentTask],
    ) -> None:
        if task.current_op is None:
            try:
                task.current_op = task.coroutine.send(task.pending_value)
            except StopIteration:
                task.done = True
                return
            task.pending_value = None
        op = task.current_op
        if self._injector is not None:
            # Perturb this attempt only: task.current_op keeps the real
            # op, so a retry after a stall or restart re-rolls cleanly.
            op = self._injector.perturb_op(op)
        cls = type(op)
        if cls is ComputeOp:
            self._charge(task, stats, op.cycles)
            task.current_op = None
            return
        try:
            address = memory.symbols.address_of(op.variable, op.subscripts)
        except SymbolError as exc:
            raise AddressError(str(exc)) from exc
        ref = op.ref
        route = (
            self._routes.get(ref.uid, ROUTE_SPECULATIVE)
            if ref is not None
            else ROUTE_SPECULATIVE
        )
        if cls is ReadOp:
            #: Storage that actually served the value (``None`` =
            #: conventional memory), which is what the cost model prices.
            served = route
            if route is ROUTE_PRIVATE:
                value = task.private.get(address)
                if value is None:
                    value = memory.load(address)
                    served = None
                stats.private_accesses += 1
            elif route is ROUTE_DIRECT:
                value = memory.load(address)
                stats.idempotent_accesses += 1
            elif task.write_through:
                value = memory.load(address)
                stats.speculative_accesses += 1
                served = None
            else:
                buffer = task.buffer
                if buffer.holds(address):
                    value = buffer.values[address]
                else:
                    if not self.store.record_read(buffer, address):
                        self._stall(task, stats)
                        return
                    value = self.store.forward(buffer, address)
                    if value is None:
                        value = memory.load(address)
                        served = None
                stats.speculative_accesses += 1
            stats.reads += 1
            if ref is not None:
                stats.count_reference(ref.uid)
            self._charge(
                task,
                stats,
                self._access_latency(task, address),
                "read",
                route=served,
            )
            task.pending_value = value
            task.current_op = None
            return
        # WriteOp
        served = route
        if route is ROUTE_PRIVATE:
            task.private[address] = float(op.value)
            stats.private_accesses += 1
        elif route is ROUTE_DIRECT or task.write_through:
            memory.store(address, op.value)
            if route is ROUTE_DIRECT:
                stats.idempotent_accesses += 1
            else:
                stats.speculative_accesses += 1
                served = None
            self._check_violations(task, address, active, stats)
        else:
            buffer = task.buffer
            if not self.store.record_write(buffer, address, op.value):
                self._stall(task, stats)
                return
            stats.speculative_accesses += 1
            self._check_violations(task, address, active, stats)
        stats.writes += 1
        if ref is not None:
            stats.count_reference(ref.uid)
        self._charge(
            task,
            stats,
            self._access_latency(task, address),
            "write",
            route=served,
        )
        task.pending_value = None
        task.current_op = None

    def _round(
        self,
        active: List[_SegmentTask],
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        """One scheduling round: each runnable segment executes one op.

        With the resilience layer armed the round also (1) scrubs
        poisoned buffers *before* anything can drain them to memory,
        (2) ticks the global progress watchdog, (3) converts transient
        per-op faults into bounded local restarts, and (4) audits the
        store's invariants once the round is over.
        """
        self._scrub_poisoned(active, stats)
        self._rounds_since_commit += 1
        if (
            self.watchdog_rounds is not None
            and self._rounds_since_commit > self.watchdog_rounds
        ):
            raise EngineLivelockError(
                f"no segment committed in {self.watchdog_rounds} "
                f"scheduling rounds; the engine is not making progress"
            )
        for task in list(active):
            if task.done:
                continue
            if task.stalled:
                if active and task is active[0]:
                    self._unstall_oldest(task, memory, stats)
                else:
                    stats.stall_rounds += 1
                    continue
            try:
                self._step(task, memory, stats, active)
            except (FaultInjected, AddressError):
                if self._injector is None or task.write_through:
                    # No injector: a genuine program error.  Write-
                    # through: the segment's earlier writes already
                    # reached memory, so local re-execution would
                    # double-apply them -- degrade instead.
                    raise
                self._recover_fault(task, active, stats)
        if self.auditor is not None:
            self.auditor.audit(
                self.store, self._committed_age, region=self._region_name
            )

    def _scrub_poisoned(
        self, active: List[_SegmentTask], stats: ExecutionStats
    ) -> None:
        """Squash-restart buffers whose forwarded values were corrupted.

        Detection follows a parity/ECC model: the corrupted forward
        marked the consuming buffer ``poisoned``.  Everything at or
        younger than the oldest poisoned segment restarts -- younger
        segments may have consumed the poisoned segment's derived
        values (including value-dependent scatter addresses that leave
        no violation trace), so restarting the poisoned task alone
        would be unsound.
        """
        oldest_poisoned = None
        for task in active:
            if task.buffer is not None and task.buffer.poisoned:
                oldest_poisoned = task.age
                break
        if oldest_poisoned is None:
            return
        if self._obs is not None:
            self._obs.event(
                "engine.poison_scrub", category="engine", age=oldest_poisoned
            )
        # A finished-but-uncommitted task restarts too: its buffer may
        # hold values derived from the corrupted forward.
        for task in active:
            if task.age >= oldest_poisoned:
                stats.fault_restarts += 1
                self._restart(task, stats)

    def _recover_fault(
        self,
        task: _SegmentTask,
        active: List[_SegmentTask],
        stats: ExecutionStats,
    ) -> None:
        """Transient in-segment fault: restart the task and all younger.

        Younger segments may have forwarded from the faulted one, so
        the recovery footprint mirrors a data-dependence violation.
        Persistent faults exhaust the restart budget and degrade.
        """
        if self._obs is not None:
            self._obs.event(
                "engine.fault_recovery", category="engine", age=task.age
            )
        for other in active:
            if other.age >= task.age:
                stats.fault_restarts += 1
                self._restart(other, stats)

    # ------------------------------------------------------------------
    # loop regions
    # ------------------------------------------------------------------
    def _run_loop_region(
        self, region: LoopRegion, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        reader = memory.read
        lower = int(round(evaluate_expression(region.lower, reader)))
        upper = int(round(evaluate_expression(region.upper, reader)))
        step = int(round(evaluate_expression(region.step, reader)))
        if step == 0:
            raise SimulationError(f"region {region.name!r} has zero step")

        if (
            self.batch
            and self.op_budget is None
            and self.hierarchy is None
        ):
            from repro.runtime.batch import try_run_batched

            if try_run_batched(self, region, memory, stats, lower, upper, step):
                return

        def iteration_values():
            value = lower
            while (step > 0 and value <= upper) or (step < 0 and value >= upper):
                yield value
                value += step

        values = iteration_values()
        body = region.body
        index = region.index
        op_budget = self.op_budget

        compute_cost = self._compute_cost

        def spawn_for(value: int) -> Callable[[], SegmentCoroutine]:
            return lambda: segment_coroutine(
                body,
                locals_in_scope={index: value},
                op_budget=op_budget,
                compute_cost=compute_cost,
            )

        active: List[_SegmentTask] = []

        def refill() -> None:
            while len(active) < self.window:
                value = next(values, None)
                if value is None:
                    return
                active.append(
                    self._start_task(
                        (region.name, value), None, spawn_for(value), stats
                    )
                )

        refill()
        while active:
            self._round(active, memory, stats)
            while active and active[0].done:
                # A poison detected on the round's last step must not
                # slip into this commit window.
                self._scrub_poisoned(active, stats)
                if not active[0].done:
                    break
                self._commit_task(active.pop(0), memory, stats)
                refill()

    # ------------------------------------------------------------------
    # explicit regions (control speculation)
    # ------------------------------------------------------------------
    def _run_explicit_region(
        self, region: ExplicitRegion, memory: MemoryImage, stats: ExecutionStats
    ) -> None:
        edges = region.segment_edges()
        op_budget = self.op_budget

        compute_cost = self._compute_cost

        def spawn_for(segment_name: str) -> Callable[[], SegmentCoroutine]:
            body = region.segment(segment_name).body
            return lambda: segment_coroutine(
                body, op_budget=op_budget, compute_cost=compute_cost
            )

        injector = self._injector

        def predicted_successor(segment_name: str) -> Optional[str]:
            """First-successor prediction; None when the path exits."""
            successors = edges.get(segment_name, [])
            if not successors or successors[0] == EXIT_NODE:
                predicted: Optional[str] = None
            else:
                predicted = successors[0]
            if injector is not None:
                # An injected mispredict steers the fill path down a
                # wrong (but structurally valid) successor; the normal
                # resolve-against-committed-state machinery discards it.
                predicted = injector.perturb_prediction(
                    [s for s in successors if s != EXIT_NODE], predicted
                )
            return predicted

        active: List[_SegmentTask] = []
        occurrence = 0
        #: Next segment on the predicted path (None = predicted exit).
        fill_from: Optional[str] = region.entry
        committed = 0

        def refill() -> None:
            nonlocal fill_from, occurrence
            while len(active) < self.window and fill_from is not None:
                name = fill_from
                occurrence += 1
                active.append(
                    self._start_task(
                        (region.name, name, occurrence),
                        name,
                        spawn_for(name),
                        stats,
                    )
                )
                fill_from = predicted_successor(name)

        refill()
        while active:
            self._round(active, memory, stats)
            while active and active[0].done:
                # A poison detected on the round's last step must not
                # slip into this commit window.
                self._scrub_poisoned(active, stats)
                if not active[0].done:
                    break
                task = active.pop(0)
                self._commit_task(task, memory, stats)
                committed += 1
                if committed > MAX_EXPLICIT_STEPS:
                    raise EngineLivelockError(
                        f"explicit region {region.name!r} exceeded "
                        f"{MAX_EXPLICIT_STEPS} segment executions"
                    )
                # Resolve the actual successor against committed state,
                # exactly as the sequential interpreter does.
                successors = edges.get(task.segment_name, [])
                if not successors:
                    actual: Optional[str] = None
                else:
                    segment = region.segment(task.segment_name)
                    if len(successors) > 1 and segment.branch is not None:
                        taken = evaluate_expression(segment.branch, memory.read)
                        actual = successors[0] if taken else successors[1]
                    else:
                        actual = successors[0]
                    if actual == EXIT_NODE:
                        actual = None
                # The predicted next segment is the head of the remaining
                # in-flight window, or -- when the window drained -- the
                # segment the prediction would spawn next.
                predicted = active[0].segment_name if active else fill_from
                if actual == predicted:
                    refill()
                    continue
                # Control misprediction: the speculated path is wrong.
                # (An empty window means nothing was executed down the
                # wrong path, so nothing counts as mispredicted.)
                if active:
                    stats.control_mispredictions += 1
                    for wrong in active:
                        self._discard(wrong, stats)
                    active.clear()
                fill_from = actual
                refill()


def _has_cycle(region: ExplicitRegion) -> bool:
    """True when the region's segment graph contains a cycle."""
    from repro.analysis.cfg import SegmentGraph

    graph = SegmentGraph.from_region(region)
    return any(
        node in graph.reachable_from(node) for node in graph.real_nodes()
    )


class HOSEEngine(SpeculativeEngine):
    """Hardware-only speculative engine (Definition 2).

    Every memory reference of a speculative segment is tracked in
    speculative storage -- the baseline the paper's CASE is measured
    against.
    """

    engine_name = "hose"


class CASEEngine(SpeculativeEngine):
    """Compiler-assisted speculative engine (Definition 4).

    Consumes the labels of Algorithm 2: ``IDEMPOTENT`` references
    bypass speculative storage (conventional memory for read-only /
    shared-dependent / fully-independent references, a per-segment
    private frame for privatizable variables); only ``SPECULATIVE``
    references occupy buffer entries.
    """

    engine_name = "case"

    def __init__(
        self,
        program: Program,
        labeling: Optional[Dict[str, object]] = None,
        cache=None,
        **kwargs,
    ):
        super().__init__(program, **kwargs)
        #: Region name -> LabelingResult; computed on demand when absent.
        self._labeling_in = labeling
        if cache is None:
            from repro.analysis.cache import AnalysisCache

            cache = AnalysisCache()
        self._cache = cache

    def _routes_for(
        self, region: Region, result: SpeculativeResult
    ) -> Dict[str, str]:
        if isinstance(region, ExplicitRegion) and _has_cycle(region):
            # Algorithm 2 models each explicit segment as executing at
            # most once (the paper's Figure 2/3 graphs are acyclic); a
            # cyclic graph re-executes segments and carries dependences
            # between occurrences the labeling cannot see.  Fall back to
            # fully speculative routing (HOSE behaviour) for safety.
            return {}
        labeling = None
        if self._labeling_in is not None:
            labeling = self._labeling_in.get(region.name)
        if labeling is None:
            from repro.idempotency.labeling import label_region

            labeling = label_region(
                region, program=self.program, cache=self._cache
            )
        result.labeling[region.name] = labeling
        routes: Dict[str, str] = {}
        for ref in region.references:
            if labeling.label_of(ref) is not RefLabel.IDEMPOTENT:
                continue
            if labeling.category_of(ref) is IdempotencyCategory.PRIVATE:
                routes[ref.uid] = ROUTE_PRIVATE
            else:
                routes[ref.uid] = ROUTE_DIRECT
        return routes


def run_speculative(
    program: Program,
    engine: str = "case",
    window: int = 4,
    capacity: Optional[int] = 64,
    **kwargs,
) -> SpeculativeResult:
    """One-shot speculative execution of ``program``.

    ``engine`` is ``"hose"`` or ``"case"``.
    """
    classes = {"hose": HOSEEngine, "case": CASEEngine}
    try:
        cls = classes[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; have {sorted(classes)}"
        ) from None
    return cls(program, window=window, capacity=capacity, **kwargs).run()
