"""Dependence tests.

Given two references to the same array inside a loop region, the tests
decide in which *relative execution order* the two references may touch
the same memory location:

* ``SAME``   -- within one segment (one iteration of the region loop),
* ``BEFORE`` -- the first reference in an older segment than the second,
* ``AFTER``  -- the first reference in a younger segment than the second.

The answer is a :data:`RelationSet`; the empty set means the references
can never alias (no dependence).  The implementation combines the
classic single-subscript tests (ZIV, strong SIV with exact distance,
GCD divisibility, Banerjee-style value-range disjointness) dimension by
dimension and intersects the per-dimension answers; any dimension that
proves independence kills the dependence.

All answers are conservative: when bounds are unknown or subscripts are
not affine the full relation set is returned (may-dependence in every
direction), never the empty set.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.dependence.subscript import AffineSubscript, affine_subscripts_of
from repro.ir.expr import Const, const_int
from repro.ir.reference import MemoryReference
from repro.ir.region import LoopRegion


class AliasRelation(enum.Enum):
    """Relative execution order of two potentially aliasing references."""

    BEFORE = "before"  # first reference executes in an older segment
    SAME = "same"      # both references within the same segment
    AFTER = "after"    # first reference executes in a younger segment

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


RelationSet = FrozenSet[AliasRelation]

ALL_RELATIONS: RelationSet = frozenset(
    {AliasRelation.BEFORE, AliasRelation.SAME, AliasRelation.AFTER}
)
NO_ALIAS: RelationSet = frozenset()
SAME_ONLY: RelationSet = frozenset({AliasRelation.SAME})


@dataclass(frozen=True)
class LoopBounds:
    """Constant description of the region loop, where available."""

    lower: Optional[int]
    upper: Optional[int]
    step: Optional[int]

    @property
    def trip_count(self) -> Optional[int]:
        if self.lower is None or self.upper is None or self.step is None:
            return None
        if self.step == 0:
            return 0
        return max(0, (self.upper - self.lower) // self.step + 1)

    @staticmethod
    def of_region(region: LoopRegion) -> "LoopBounds":
        return LoopBounds(
            lower=const_int(region.lower),
            upper=const_int(region.upper),
            step=const_int(region.step),
        )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _inner_ranges(ref: MemoryReference) -> Dict[str, Optional[Tuple[int, int]]]:
    """Constant iteration ranges of the inner loops enclosing ``ref``."""
    out: Dict[str, Optional[Tuple[int, int]]] = {}
    for do in ref.enclosing_loops:
        lo = const_int(do.lower)
        hi = const_int(do.upper)
        st = const_int(do.step)
        if lo is not None and hi is not None and st is not None and st != 0:
            if st < 0:
                lo, hi = hi, lo
            # For strided loops [lo, hi] over-approximates the touched
            # values, which is sound for a may-alias range.
            out[do.index] = (lo, hi) if lo <= hi else None
        else:
            out[do.index] = None
    return out


def _payload_range(
    sub: AffineSubscript, inner_ranges: Dict[str, Optional[Tuple[int, int]]]
) -> Optional[Tuple[int, int]]:
    """Value range of the subscript minus its region-index term.

    Returns ``None`` when an involved inner loop has unknown bounds.
    Symbolic invariant terms must have been cancelled by the caller.
    """
    lo = hi = sub.const
    for name, coeff in sub.inner_coeffs:
        bounds = inner_ranges.get(name)
        if bounds is None:
            return None
        a, b = coeff * bounds[0], coeff * bounds[1]
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _relation_from_position_interval(
    d_lo: float, d_hi: float, trip: Optional[int]
) -> RelationSet:
    """Relations allowed by a position-difference interval ``[d_lo, d_hi]``.

    ``d`` is the execution-position of the *second* reference minus that
    of the *first*; positive values mean the first reference runs in an
    older segment.
    """
    if trip is not None:
        d_lo = max(d_lo, -(trip - 1))
        d_hi = min(d_hi, trip - 1)
    if d_lo > d_hi:
        return NO_ALIAS
    out: Set[AliasRelation] = set()
    if d_lo <= 0 <= d_hi:
        out.add(AliasRelation.SAME)
    if d_hi >= 1:
        out.add(AliasRelation.BEFORE)
    if d_lo <= -1:
        out.add(AliasRelation.AFTER)
    return frozenset(out)


# ----------------------------------------------------------------------
# Per-dimension test
# ----------------------------------------------------------------------
def dimension_relations(
    sub_a: AffineSubscript,
    sub_b: AffineSubscript,
    bounds: LoopBounds,
    inner_ranges_a: Dict[str, Optional[Tuple[int, int]]],
    inner_ranges_b: Dict[str, Optional[Tuple[int, int]]],
) -> RelationSet:
    """Relations allowed by a single subscript dimension."""
    if not sub_a.affine or not sub_b.affine:
        return ALL_RELATIONS

    # Symbolic invariant terms only cancel when identical on both sides.
    if sub_a.symbol_coeffs != sub_b.symbol_coeffs:
        return ALL_RELATIONS

    ca, cb = sub_a.region_coeff, sub_b.region_coeff
    range_a = _payload_range(sub_a, inner_ranges_a)
    range_b = _payload_range(sub_b, inner_ranges_b)
    if range_a is None or range_b is None:
        return ALL_RELATIONS

    step = bounds.step
    trip = bounds.trip_count

    if ca == cb:
        # c * (i_a - i_b) = payload_b - payload_a
        d_payload_lo = range_b[0] - range_a[1]
        d_payload_hi = range_b[1] - range_a[0]
        if ca == 0:
            if d_payload_lo <= 0 <= d_payload_hi:
                return ALL_RELATIONS
            return NO_ALIAS
        # Index difference interval (i_a - i_b).
        idx_lo = d_payload_lo / ca
        idx_hi = d_payload_hi / ca
        if idx_lo > idx_hi:
            idx_lo, idx_hi = idx_hi, idx_lo
        # Exactness refinement: single-point payloads -> strong SIV.
        if (
            range_a[0] == range_a[1]
            and range_b[0] == range_b[1]
        ):
            # Strong SIV with exact constant payloads.
            delta = range_b[0] - range_a[0]
            if delta % ca != 0:
                return NO_ALIAS
            # idx_delta = i_a - i_b; with i = lower + step * t this gives
            # t_b - t_a = -idx_delta / step.
            idx_delta = delta // ca
            if step is not None:
                if idx_delta % step != 0:
                    return NO_ALIAS
                d = -(idx_delta // step)
                return _relation_from_position_interval(d, d, trip)
            # Unknown step: direction unknown, but distance zero is exact.
            if idx_delta == 0:
                return SAME_ONLY
            return frozenset({AliasRelation.BEFORE, AliasRelation.AFTER})
        if step is None:
            # Alias possible but the direction cannot be resolved.
            return ALL_RELATIONS
        # t_b - t_a = -(i_a - i_b)/step
        candidates = (-idx_lo / step, -idx_hi / step)
        return _relation_from_position_interval(min(candidates), max(candidates), trip)

    # Different region-index coefficients: try a GCD divisibility test when
    # both payloads are single constants, then a value-range test; give up
    # conservatively otherwise.
    if range_a[0] == range_a[1] and range_b[0] == range_b[1]:
        rhs = range_b[0] - range_a[0]
        g = math.gcd(abs(ca), abs(cb))
        if g != 0 and rhs % g != 0:
            return NO_ALIAS
    if bounds.lower is not None and bounds.upper is not None:
        lo_i, hi_i = sorted((bounds.lower, bounds.upper))
        val_a = sorted((ca * lo_i, ca * hi_i))
        val_b = sorted((cb * lo_i, cb * hi_i))
        full_a = (val_a[0] + range_a[0], val_a[1] + range_a[1])
        full_b = (val_b[0] + range_b[0], val_b[1] + range_b[1])
        if full_a[1] < full_b[0] or full_b[1] < full_a[0]:
            return NO_ALIAS
    return ALL_RELATIONS


# ----------------------------------------------------------------------
# Whole-reference test
# ----------------------------------------------------------------------
def relation_of_reference_pair(
    ref_a: MemoryReference,
    ref_b: MemoryReference,
    region: LoopRegion,
    invariant_symbols: Set[str],
) -> RelationSet:
    """Relations in which ``ref_a`` and ``ref_b`` may touch the same location.

    Both references must be to the same variable of the given loop
    region.  Scalar references always alias in every relation.
    """
    if ref_a.variable != ref_b.variable:
        return NO_ALIAS
    if not ref_a.subscripts or not ref_b.subscripts:
        return ALL_RELATIONS
    if len(ref_a.subscripts) != len(ref_b.subscripts):
        return ALL_RELATIONS

    bounds = LoopBounds.of_region(region)
    subs_a = affine_subscripts_of(ref_a, region.index, invariant_symbols)
    subs_b = affine_subscripts_of(ref_b, region.index, invariant_symbols)
    ranges_a = _inner_ranges(ref_a)
    ranges_b = _inner_ranges(ref_b)

    relations = ALL_RELATIONS
    for sub_a, sub_b in zip(subs_a, subs_b):
        dim = dimension_relations(sub_a, sub_b, bounds, ranges_a, ranges_b)
        relations = relations & dim
        if not relations:
            return NO_ALIAS
    return relations


def explicit_pair_may_alias(ref_a: MemoryReference, ref_b: MemoryReference) -> bool:
    """May-alias test for references in explicit (non-loop) regions.

    Scalars to the same variable always alias.  Array references alias
    unless every subscript pair is a pair of unequal integer constants.
    """
    if ref_a.variable != ref_b.variable:
        return False
    if not ref_a.subscripts or not ref_b.subscripts:
        return True
    if len(ref_a.subscripts) != len(ref_b.subscripts):
        return True
    provably_different = False
    for sub_a, sub_b in zip(ref_a.subscripts, ref_b.subscripts):
        if isinstance(sub_a, Const) and isinstance(sub_b, Const):
            if int(sub_a.value) != int(sub_b.value):
                provably_different = True
        # Identical expressions trivially alias; anything else is a may.
    return not provably_different
