"""Timing harness: analyze-throughput and simulate-throughput.

Two instruments, both per workload family:

* **analyze** -- repeatedly runs the full labeling pipeline
  (:func:`repro.idempotency.labeling.label_region`) on the workload's
  region and reports *references classified per second*.  Each
  repetition uses a fresh :class:`AnalysisCache`, so the number is the
  *cold* analysis cost (intra-pass signature bucketing only); a second
  number reports the *warm* cost with a shared cache (cross-pass
  reuse).
* **simulate** -- repeatedly executes the program through the
  sequential interpreter and reports *memory operations (reads +
  writes) per second*.  ``fast_path`` selects trace record-and-replay;
  the baseline drives the coroutine interpreter for every iteration.

Repetitions adapt to the workload: each measurement repeats until
``min_seconds`` of wall-clock time is accumulated (at least
``min_repeats`` times) and the *best* repetition is used, which is the
standard way to suppress scheduler noise in micro-benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.bench.workloads import Workload
from repro.idempotency.labeling import label_region
from repro.runtime.interpreter import SequentialInterpreter


@dataclass
class Measurement:
    """One throughput measurement."""

    seconds: float
    work_units: int
    repeats: int

    @property
    def per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.work_units / self.seconds


@dataclass
class FamilyResult:
    """All numbers of one workload family on one code path."""

    family: str
    size: int
    statements: int
    references: int
    analyze: Measurement
    analyze_warm: Measurement
    simulate: Measurement
    simulate_ops: int
    replayed: bool
    replay_reason: str
    idempotent_fraction: float
    signature_stats: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "family": self.family,
            "size": self.size,
            "statements": self.statements,
            "references": self.references,
            "analyze_refs_per_s": round(self.analyze.per_second, 1),
            "analyze_warm_refs_per_s": round(self.analyze_warm.per_second, 1),
            "analyze_repeats": self.analyze.repeats,
            "simulate_ops_per_s": round(self.simulate.per_second, 1),
            "simulate_ops": self.simulate_ops,
            "simulate_repeats": self.simulate.repeats,
            "replayed": self.replayed,
            "replay_reason": self.replay_reason,
            "idempotent_fraction": round(self.idempotent_fraction, 4),
            "signature_stats": self.signature_stats,
        }


def _timed_best(fn, min_seconds: float, min_repeats: int, max_repeats: int) -> tuple:
    """Best (min) duration of ``fn()`` plus the repeat count used."""
    best = float("inf")
    total = 0.0
    repeats = 0
    last = None
    while (total < min_seconds or repeats < min_repeats) and repeats < max_repeats:
        t0 = time.perf_counter()
        last = fn()
        dt = time.perf_counter() - t0
        total += dt
        repeats += 1
        if dt < best:
            best = dt
    return best, repeats, last


def measure_family(
    workload: Workload,
    fast_path: bool = True,
    min_seconds: float = 0.4,
    min_repeats: int = 2,
    max_repeats: int = 200,
    op_budget: Optional[int] = None,
) -> FamilyResult:
    """Measure one workload family on one code path."""
    region = workload.region
    refs = len(region.references)

    # -- analysis, cold (fresh cache per repetition) --------------------
    def analyze_cold():
        return label_region(region, fast_path=fast_path, cache=AnalysisCache())

    analyze_best, analyze_reps, labeling = _timed_best(
        analyze_cold, min_seconds, min_repeats, max_repeats
    )

    # -- analysis, warm (shared cache across repetitions) ---------------
    shared_cache = AnalysisCache()
    label_region(region, fast_path=fast_path, cache=shared_cache)

    def analyze_warm():
        return label_region(region, fast_path=fast_path, cache=shared_cache)

    warm_best, warm_reps, _ = _timed_best(
        analyze_warm, min_seconds / 4, min_repeats, max_repeats
    )

    signature_stats: Dict[str, int] = {}
    if fast_path:
        index = shared_cache.peek(
            region, ("signature_index", frozenset(labeling.read_only_vars))
        )
        if index is not None:
            signature_stats = index.stats()

    # -- simulation ------------------------------------------------------
    def simulate():
        interp = SequentialInterpreter(
            workload.program,
            use_replay=fast_path,
            model_latency=False,
            op_budget=op_budget,
        )
        return interp.run()

    simulate_best, simulate_reps, result = _timed_best(
        simulate, min_seconds, min_repeats, max_repeats
    )
    sim_ops = result.stats.reads + result.stats.writes
    region_name = region.name
    return FamilyResult(
        family=workload.family,
        size=workload.size,
        statements=workload.statements,
        references=refs,
        analyze=Measurement(analyze_best, refs, analyze_reps),
        analyze_warm=Measurement(warm_best, refs, warm_reps),
        simulate=Measurement(simulate_best, sim_ops, simulate_reps),
        simulate_ops=sim_ops,
        replayed=result.replayed_regions.get(region_name, False),
        replay_reason=result.replay_reasons.get(region_name, "n/a"),
        idempotent_fraction=labeling.static_fraction_idempotent(),
        signature_stats=signature_stats,
    )


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (0.0 for empty or non-positive input)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
