"""repro -- reproduction of *Reference Idempotency Analysis* (PPoPP 2001).

The package is organised in layers, bottom up:

``repro.ir``
    A small imperative intermediate representation with the region /
    segment structure of the paper (Definition 1): expressions, memory
    references, statements, segments, regions and programs, plus a
    Fortran-flavoured text front end (:mod:`repro.ir.dsl`).

``repro.analysis``
    The prerequisite compiler analyses of Section 4.2.1: control-flow
    utilities, liveness, exposed reads / must-defines, read-only and
    private variable recognition, and a reference-by-reference data
    dependence analyser with classic subscript tests.

``repro.idempotency``
    The paper's primary contribution: re-occurring-first-write analysis
    (Algorithm 1), the idempotency labeling algorithm (Algorithm 2), the
    labeling conditions LC1-LC3, and per-region reports by idempotency
    category.

``repro.runtime`` / ``repro.simulator``
    Executable models of the paper's execution substrates: a sequential
    reference interpreter, the hardware-only speculative execution engine
    (HOSE, Definition 2) and the compiler-assisted engine (CASE,
    Definition 4) on a cycle-approximate multiprocessor with per-processor
    speculative storage and a latency-modelled memory hierarchy.

``repro.compiler``
    The end-to-end "Multiplex compiler" analogue: parse, analyse,
    classify regions, label references, and report.

``repro.workloads`` / ``repro.experiments``
    The 13 synthetic benchmark programs and the named loops used in the
    paper's evaluation, plus one experiment driver per figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
