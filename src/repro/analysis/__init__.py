"""Prerequisite compiler analyses (Section 4.2.1 of the paper).

These are the facts the idempotency labeling algorithm consumes:

* :mod:`repro.analysis.cfg` -- segment control-flow graphs and
  reachability / ancestor queries.
* :mod:`repro.analysis.readonly` -- read-only variable recognition.
* :mod:`repro.analysis.access` -- per-segment access summaries:
  exposed reads, must-defines, address determinism, coverage of array
  reads by earlier writes (the node marks of Algorithm 1).
* :mod:`repro.analysis.liveness` -- region live-out sets.
* :mod:`repro.analysis.privatization` -- segment-private variables.
* :mod:`repro.analysis.control_dependence` -- cross-segment control
  dependences.
* :mod:`repro.analysis.dependence` -- reference-by-reference data
  dependence analysis (may-dependences) with classic subscript tests.
"""

from repro.analysis.cfg import SegmentGraph
from repro.analysis.readonly import read_only_variables, written_variables
from repro.analysis.access import AccessSummary, summarize_segment
from repro.analysis.liveness import region_live_out, live_out_map
from repro.analysis.privatization import private_variables
from repro.analysis.control_dependence import has_cross_segment_control_dependence
from repro.analysis.dependence import (
    Dependence,
    DependenceGraph,
    DependenceAnalyzer,
    DependenceGranularity,
    DirectionMode,
    analyze_dependences,
)

__all__ = [
    "AccessSummary",
    "Dependence",
    "DependenceAnalyzer",
    "DependenceGranularity",
    "DependenceGraph",
    "DirectionMode",
    "SegmentGraph",
    "analyze_dependences",
    "has_cross_segment_control_dependence",
    "live_out_map",
    "private_variables",
    "read_only_variables",
    "region_live_out",
    "summarize_segment",
    "written_variables",
]
