"""Execution substrates.

* :mod:`repro.runtime.memory` -- the non-speculative storage: a flat
  value store plus a two-level cache latency model (the "conventional
  memory hierarchy" of the paper).
* :mod:`repro.runtime.executor` -- a generator-based micro-interpreter
  that turns a segment body into a stream of compute / read / write
  operations tagged with their static memory references.
* :mod:`repro.runtime.trace` -- the record-and-replay fast path: loop
  regions with input-independent control flow are recorded once into a
  flat event schedule and replayed per iteration, bypassing AST
  re-interpretation while yielding bit-identical operation streams.
* :mod:`repro.runtime.interpreter` -- the sequential reference
  interpreter (ground truth for all correctness checks, and the source
  of dynamic reference counts), driving either execution path.

The speculative substrates (per-segment speculative storage, the HOSE
and CASE engines of Definitions 2 and 4) are future work tracked in
ROADMAP.md; they will drive the same operation streams.
"""

from repro.runtime.errors import AddressError, SimulationError
from repro.runtime.memory import MemoryHierarchy, MemoryImage, MemoryLatencies
from repro.runtime.interpreter import (
    SequentialInterpreter,
    SequentialResult,
    run_program,
)
from repro.runtime.stats import ExecutionStats
from repro.runtime.trace import (
    SegmentTrace,
    TraceError,
    record_trace,
    replay_segment,
    trace_eligibility,
)

__all__ = [
    "AddressError",
    "ExecutionStats",
    "MemoryHierarchy",
    "MemoryImage",
    "MemoryLatencies",
    "SegmentTrace",
    "SequentialInterpreter",
    "SequentialResult",
    "SimulationError",
    "TraceError",
    "record_trace",
    "replay_segment",
    "run_program",
    "trace_eligibility",
]
