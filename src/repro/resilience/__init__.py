"""Fault injection, invariant auditing, and graceful degradation.

The speculative substrate's correctness story rests on its recovery
paths: squash-restart after violations, poison scrubs after corrupted
forwards, watchdogs against livelock, and -- when all else fails --
degradation to the sequential reference interpreter.  This package
exercises and enforces those paths:

* :mod:`repro.resilience.faults` -- a deterministic, seeded fault
  injector plus a misbehaving :class:`~repro.runtime.specstore
  .SpeculativeStore` wrapper covering dropped/duplicated commits,
  corrupted forwards, spurious violations, transient capacity shrinks,
  mid-segment exceptions, bad subscripts and control mispredictions;
* :mod:`repro.resilience.auditor` -- a runtime invariant auditor
  re-validating the store's representation invariants after every
  scheduling round;
* :mod:`repro.resilience.harness` -- :func:`run_resilient`, wiring an
  engine, a fault plan, the auditor and graceful degradation into one
  call whose result is always bit-identical to sequential execution.

The ``chaos`` bench scenario (:mod:`repro.bench.chaos`) sweeps this
machinery across fault kinds, rates, workload families and engines.
"""

from repro.resilience.auditor import InvariantAuditor
from repro.resilience.faults import (
    BAD_SUBSCRIPT,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultySpeculativeStore,
)
from repro.resilience.harness import run_resilient

__all__ = [
    "BAD_SUBSCRIPT",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultySpeculativeStore",
    "InvariantAuditor",
    "run_resilient",
]
