"""Smoke and protocol tests of the ``repro.serve`` daemon.

Covers the wire contract end to end: round-trips for all four analysis
methods (in-process and over a real ``--wire`` subprocess), the
malformed-JSON and unknown-method error envelopes, backpressure
rejection against a saturated pool, concurrent sessions sharing one
``AnalysisCache`` (warm-hit counters grow across sessions), and clean
shutdown of both transports.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.serve.dispatch import Dispatcher
from repro.serve.pool import PoolSaturated, WorkerPool
from repro.serve.protocol import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    OVERLOADED,
    PARSE_ERROR,
    ProtocolError,
    Request,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.sockets import TCPServer

DSL = """
program served
  real x(32), y(32)
  real s
  region L do i = 2, 31
    y(i) = x(i-1) + x(i+1)
    s = s + y(i)
    liveout y, s
  end region
end program
"""

JSON_IR = {
    "name": "served_ir",
    "symbols": {
        "scalars": [{"name": "s"}],
        "arrays": [{"name": "x", "shape": [32], "initial": 1.0}],
    },
    "regions": [
        {
            "kind": "loop",
            "name": "L",
            "index": "i",
            "lower": 2,
            "upper": 31,
            "body": [
                {"target": "x", "subscripts": ["i"], "rhs": "x(i) * 2"},
                {"target": "s", "rhs": "s + x(i)"},
            ],
            "live_out": ["x", "s"],
        }
    ],
}


def rpc(req_id, method, params=None):
    return Request(method=method, params=params or {}, id=req_id)


# ----------------------------------------------------------------------
# protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_request_round_trip(self):
        request = parse_request(
            '{"jsonrpc": "2.0", "id": 7, "method": "ping", "params": {}}'
        )
        assert request.method == "ping"
        assert request.id == 7
        assert not request.notification

    def test_notification_has_no_id(self):
        request = parse_request('{"jsonrpc": "2.0", "method": "ping"}')
        assert request.notification

    def test_malformed_json_is_parse_error(self):
        with pytest.raises(ProtocolError) as info:
            parse_request("{nope")
        assert info.value.code == PARSE_ERROR

    @pytest.mark.parametrize(
        "line",
        [
            "[1, 2, 3]",
            '{"jsonrpc": "1.0", "method": "ping"}',
            '{"jsonrpc": "2.0"}',
            '{"jsonrpc": "2.0", "method": ""}',
            '{"jsonrpc": "2.0", "method": "ping", "params": [1]}',
            '{"jsonrpc": "2.0", "method": "ping", "id": {"k": 1}}',
        ],
    )
    def test_invalid_requests(self, line):
        with pytest.raises(ProtocolError) as info:
            parse_request(line)
        assert info.value.code == INVALID_REQUEST

    def test_envelopes(self):
        ok = ok_response(3, {"x": 1})
        assert ok == {"jsonrpc": "2.0", "id": 3, "result": {"x": 1}}
        err = error_response(None, OVERLOADED, "busy", data={"max_inflight": 2})
        assert err["error"]["code"] == OVERLOADED
        assert err["error"]["data"] == {"max_inflight": 2}
        line = encode_line(ok)
        assert line.endswith(b"\n")
        assert json.loads(line) == ok


# ----------------------------------------------------------------------
# dispatcher round trips (in-process)
# ----------------------------------------------------------------------
class TestDispatcher:
    def test_analyze_round_trip(self):
        dispatcher = Dispatcher()
        response = dispatcher.dispatch(rpc(1, "analyze", {"dsl": DSL}))
        result = response["result"]
        assert response["id"] == 1
        region = result["regions"][0]
        assert region["name"] == "L"
        assert region["references"] > 0
        assert "meta" in result and "elapsed_ms" in result["meta"]

    def test_label_round_trip(self):
        dispatcher = Dispatcher()
        response = dispatcher.dispatch(
            rpc(2, "label", {"dsl": DSL, "region": "L"})
        )
        labels = response["result"]["labels"]
        assert labels
        assert all(
            entry["label"] in ("speculative", "idempotent")
            for entry in labels.values()
        )

    @pytest.mark.parametrize("engine", ["hose", "case"])
    def test_simulate_bit_identical(self, engine):
        dispatcher = Dispatcher()
        response = dispatcher.dispatch(
            rpc(3, "simulate", {"dsl": DSL, "engine": engine})
        )
        result = response["result"]
        assert result["engine"] == engine
        assert result["bit_identical"] is True

    def test_speedup_sweep_round_trip(self):
        dispatcher = Dispatcher()
        response = dispatcher.dispatch(
            rpc(4, "speedup_sweep", {"dsl": DSL, "processors": [1, 4]})
        )
        result = response["result"]
        assert result["sequential_cycles"] > 0
        for side in result["engines"].values():
            assert side["bit_identical"] is True
            assert set(side["processors"]) == {"1", "4"}

    def test_json_ir_submission(self):
        dispatcher = Dispatcher()
        response = dispatcher.dispatch(
            rpc(5, "simulate", {"program": JSON_IR, "engine": "case"})
        )
        assert response["result"]["bit_identical"] is True
        assert response["result"]["program"] == "served_ir"

    def test_resubmission_interns_and_warms_cache(self):
        dispatcher = Dispatcher()
        first = dispatcher.resolve_program({"dsl": DSL})
        second = dispatcher.resolve_program({"dsl": DSL})
        assert first is second
        dispatcher.dispatch(rpc(1, "analyze", {"dsl": DSL}))
        warm = dispatcher.dispatch(rpc(2, "analyze", {"dsl": DSL}))
        assert warm["result"]["meta"]["cache"]["hits"] > 0

    def test_unknown_method(self):
        dispatcher = Dispatcher()
        response = dispatcher.dispatch(rpc(6, "does_not_exist"))
        assert response["error"]["code"] == METHOD_NOT_FOUND
        assert "analyze" in response["error"]["data"]["methods"]

    @pytest.mark.parametrize(
        "params",
        [
            {},
            {"dsl": DSL, "program": JSON_IR},
            {"dsl": "program broken\n"},
            {"program": {"regions": [{"name": "L"}]}},
            {"dsl": DSL, "engine": "warp"},
            {"dsl": DSL, "region": "missing"},
        ],
    )
    def test_invalid_params(self, params):
        dispatcher = Dispatcher()
        method = "simulate" if "engine" in params else "label"
        response = dispatcher.dispatch(rpc(7, method, params))
        assert response["error"]["code"] == INVALID_PARAMS

    def test_interner_eviction_is_bounded(self):
        dispatcher = Dispatcher(max_programs=2)
        sources = [DSL.replace("served", f"served{i}") for i in range(4)]
        for source in sources:
            dispatcher.dispatch(rpc(1, "analyze", {"dsl": source}))
        assert dispatcher.interned_programs() == 2


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_saturation_raises(self):
        pool = WorkerPool(workers=1, max_inflight=2)
        release = threading.Event()
        try:
            pool.submit(release.wait)
            pool.submit(release.wait)
            with pytest.raises(PoolSaturated):
                pool.submit(lambda: None)
        finally:
            release.set()
            pool.close()

    def test_jobs_drain_and_close_joins(self):
        pool = WorkerPool(workers=2, max_inflight=8)
        done = []
        lock = threading.Lock()

        def job(i):
            with lock:
                done.append(i)

        for i in range(8):
            pool.submit(lambda i=i: job(i))
        pool.close(wait=True)
        assert sorted(done) == list(range(8))
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
class _Client:
    """Tiny line-delimited JSON-RPC client over one TCP connection."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.stream = self.sock.makefile("rwb")
        self._next_id = 0

    def send(self, method, params=None, req_id=None, raw=None):
        if raw is not None:
            self.stream.write(raw.encode("utf-8") + b"\n")
        else:
            if req_id is None:
                self._next_id += 1
                req_id = self._next_id
            self.stream.write(
                (
                    json.dumps(
                        {
                            "jsonrpc": "2.0",
                            "id": req_id,
                            "method": method,
                            "params": params or {},
                        }
                    )
                    + "\n"
                ).encode("utf-8")
            )
        self.stream.flush()

    def recv(self):
        line = self.stream.readline()
        return json.loads(line) if line else None

    def call(self, method, params=None):
        self.send(method, params)
        return self.recv()

    def close(self):
        try:
            self.stream.close()
        except (OSError, ValueError):
            pass
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def server():
    dispatcher = Dispatcher()
    pool = WorkerPool(workers=2, max_inflight=2)
    tcp = TCPServer(dispatcher, pool)
    tcp.start()
    yield tcp
    tcp.shutdown()
    pool.close()


class TestTCPServer:
    def test_round_trip_over_socket(self, server):
        client = _Client(server.port)
        try:
            response = client.call("analyze", {"dsl": DSL})
            assert response["result"]["regions"][0]["name"] == "L"
            response = client.call("ping")
            assert response["result"]["pong"] is True
        finally:
            client.close()

    def test_malformed_and_unknown_over_socket(self, server):
        client = _Client(server.port)
        try:
            client.send(None, raw="{bad json")
            assert client.recv()["error"]["code"] == PARSE_ERROR
            response = client.call("nope")
            assert response["error"]["code"] == METHOD_NOT_FOUND
        finally:
            client.close()

    def test_backpressure_rejects_when_saturated(self, server):
        # The fixture pool has two workers and max_inflight=2: two
        # sleeps occupy it, so the ping must bounce with OVERLOADED
        # (written inline by the reader thread, ahead of the sleeps).
        client = _Client(server.port)
        try:
            client.send("sleep", {"seconds": 1.0}, req_id="a")
            client.send("sleep", {"seconds": 1.0}, req_id="b")
            client.send("ping", req_id="probe")
            first = client.recv()
            assert first["id"] == "probe"
            assert first["error"]["code"] == OVERLOADED
            assert first["error"]["data"]["max_inflight"] == 2
            # The sleeps still complete.
            assert client.recv()["result"]["slept"] == 1.0
            assert client.recv()["result"]["slept"] == 1.0
        finally:
            client.close()

    def test_concurrent_sessions_share_cache(self, server):
        clients = [_Client(server.port) for _ in range(4)]
        errors = []

        def hammer(client):
            # The fixture pool is tiny (max_inflight=2), so four
            # hammering sessions legitimately see OVERLOADED -- honour
            # the 429 and retry, fail on anything else.
            for _ in range(3):
                for _attempt in range(50):
                    response = client.call("analyze", {"dsl": DSL})
                    error = response.get("error")
                    if error and error.get("code") == OVERLOADED:
                        time.sleep(0.02)
                        continue
                    break
                if "result" not in response:
                    errors.append(response)

        try:
            threads = [
                threading.Thread(target=hammer, args=(c,)) for c in clients
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            stats = server.dispatcher.cache.stats()
            assert stats["hits"] > 0, "no cross-request warm hits"
            assert server.dispatcher.interned_programs() == 1
            response = clients[0].call("metrics")
            assert response["result"]["cache"]["hits"] == stats["hits"]
        finally:
            for client in clients:
                client.close()

    def test_shutdown_request_stops_server(self, server):
        client = _Client(server.port)
        try:
            response = client.call("shutdown")
            assert response["result"]["stopping"] is True
        finally:
            client.close()
        assert server.stopped.wait(timeout=10)


# ----------------------------------------------------------------------
# wire subprocess smoke (the kimigas-style end-to-end check)
# ----------------------------------------------------------------------
def _spawn_wire(*extra):
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--wire", "--quiet", *extra],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


class TestWireSubprocess:
    def test_wire_session_end_to_end(self):
        child = _spawn_wire()

        def call(req_id, method, params=None):
            child.stdin.write(
                json.dumps(
                    {
                        "jsonrpc": "2.0",
                        "id": req_id,
                        "method": method,
                        "params": params or {},
                    }
                )
                + "\n"
            )
            child.stdin.flush()
            return json.loads(child.stdout.readline())

        try:
            assert call(1, "analyze", {"dsl": DSL})["result"]["regions"]
            assert call(2, "label", {"dsl": DSL})["result"]["labels"]
            simulate = call(3, "simulate", {"dsl": DSL, "engine": "case"})
            assert simulate["result"]["bit_identical"] is True
            sweep = call(
                4, "speedup_sweep", {"dsl": DSL, "processors": [1, 2]}
            )
            assert sweep["result"]["engines"]["case"]["bit_identical"] is True
            # Warm across requests of one daemon lifetime.
            warm = call(5, "analyze", {"dsl": DSL})
            assert warm["result"]["meta"]["cache"]["hits"] > 0
            stopping = call(6, "shutdown")
            assert stopping["result"]["stopping"] is True
            child.stdin.close()
            assert child.wait(timeout=60) == 0
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)

    def test_wire_eof_is_clean_exit(self):
        child = _spawn_wire()
        try:
            child.stdin.close()
            assert child.wait(timeout=60) == 0
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=10)

    def test_selfcheck_passes(self):
        src = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--selfcheck"],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
