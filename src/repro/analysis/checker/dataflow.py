"""Generic iterative dataflow solver.

A classic worklist fixpoint over an arbitrary directed graph.  The
graph is supplied as a node list plus successor/predecessor callables,
so the same solver runs over the statement-level CFGs of
:mod:`repro.analysis.checker.stmt_cfg` *and* over region segment
graphs (:class:`repro.analysis.cfg.SegmentGraph`).

A :class:`DataflowProblem` supplies the lattice operations:

* ``boundary()`` -- the value entering the graph (at the entry node
  for forward problems, at the exit node for backward ones);
* ``join(a, b)`` -- the confluence operator (set intersection for
  *must* problems, union for *may* problems);
* ``transfer(node, value)`` -- the node's effect.

Unreachable nodes are never visited and report ``None`` (lattice top);
``transfer`` therefore never sees an uninitialised value, which keeps
*must* problems (where top is the infinite universe) representable
with plain ``frozenset`` values.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

Node = Hashable


class DataflowProblem:
    """Lattice + transfer functions of one analysis instance."""

    #: "forward" propagates entry -> exit, "backward" the reverse.
    direction: str = "forward"

    def boundary(self) -> object:
        """Value at the graph boundary."""
        raise NotImplementedError

    def join(self, a: object, b: object) -> object:
        """Confluence of two path values."""
        raise NotImplementedError

    def transfer(self, node: Node, value: object) -> object:
        """Value after ``node`` given the value before it."""
        raise NotImplementedError


def solve_dataflow(
    nodes: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
    predecessors: Callable[[Node], Iterable[Node]],
    problem: DataflowProblem,
    entries: Iterable[Node],
) -> Dict[Node, Tuple[Optional[object], Optional[object]]]:
    """Run ``problem`` to fixpoint; returns ``node -> (in, out)``.

    ``entries`` are the boundary nodes (region entry for forward
    problems, exits for backward ones).  For backward problems the
    in-value is the value *after* the node in execution order and the
    out-value the value before it, i.e. (in, out) always follow the
    propagation direction.
    """
    node_list = list(nodes)
    if problem.direction == "backward":
        successors, predecessors = predecessors, successors

    in_val: Dict[Node, Optional[object]] = {n: None for n in node_list}
    out_val: Dict[Node, Optional[object]] = {n: None for n in node_list}

    worklist: deque = deque()
    entry_set = set(entries)
    for node in node_list:
        if node in entry_set:
            in_val[node] = problem.boundary()
            worklist.append(node)

    in_list = deque(worklist)
    queued = set(in_list)
    iterations = 0
    limit = max(64, len(node_list) * len(node_list) * 16 + 1024)
    while in_list:
        iterations += 1
        if iterations > limit:  # pragma: no cover - defensive
            raise RuntimeError("dataflow solver failed to converge")
        node = in_list.popleft()
        queued.discard(node)

        merged: Optional[object] = None
        if node in entry_set:
            merged = problem.boundary()
        for pred in predecessors(node):
            pv = out_val.get(pred)
            if pv is None:
                continue
            merged = pv if merged is None else problem.join(merged, pv)
        if merged is None:
            continue
        in_val[node] = merged
        new_out = problem.transfer(node, merged)
        if new_out != out_val[node]:
            out_val[node] = new_out
            for succ in successors(node):
                if succ not in queued and succ in in_val:
                    queued.add(succ)
                    in_list.append(succ)

    return {n: (in_val[n], out_val[n]) for n in node_list}
