"""Analysis-as-a-service daemon: ``python -m repro.serve``.

A long-lived process speaking line-delimited JSON-RPC 2.0 over
stdin/stdout (``--wire``) and over a localhost TCP socket
(``--listen HOST:PORT``).  Requests submit programs as DSL text or as
the JSON IR of :func:`repro.ir.builder.program_from_json` and ask for

* ``analyze``       -- the full Algorithm-2 labeling summary per region,
* ``label``         -- per-reference labels/categories of one region,
* ``simulate``      -- an engine run plus the bit-identity verdict
  against the sequential interpreter,
* ``speedup_sweep`` -- makespans/speedups across processor counts.

All sessions share one thread-safe :class:`repro.analysis.cache
.AnalysisCache` (submitted programs are interned, so re-submitting the
same source hits warm analysis entries), a bounded worker pool applies
429-style backpressure (error ``-32029``) once ``--max-inflight``
requests are in flight, and every response carries per-request timing
and cache-delta metrics scoped through the :mod:`repro.obs` registry.

Protocol spec and transcript examples: ``docs/SERVING.md``.  The
``serve`` bench scenario (``python -m repro.bench --scenarios serve``)
drives concurrent client sessions against one daemon and reports
requests/sec and latency percentiles.
"""

from repro.serve.dispatch import Dispatcher
from repro.serve.pool import PoolSaturated, WorkerPool
from repro.serve.protocol import (
    INTERNAL_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    OVERLOADED,
    PARSE_ERROR,
    ProtocolError,
    Request,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.sockets import Session, TCPServer, serve_stdio

__all__ = [
    "Dispatcher",
    "WorkerPool",
    "PoolSaturated",
    "ProtocolError",
    "Request",
    "parse_request",
    "ok_response",
    "error_response",
    "encode_line",
    "Session",
    "TCPServer",
    "serve_stdio",
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "OVERLOADED",
]
