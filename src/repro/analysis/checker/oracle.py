"""Dynamic ground truth: trace observation and squash-replay.

Two complementary oracles judge the static labels against *actual*
executions:

:class:`TraceOracle`
    An :class:`~repro.runtime.interpreter.ExecutionObserver` that
    watches one sequential run and derives per-region dynamic facts by
    address: dynamically exposed reads (first same-instance access is a
    read), cross-instance flow/anti/output dependences, and in-instance
    read-before-write hazards on claimed-idempotent write targets.
    Every fact is value-filtered -- a write that stores the value the
    location already held cannot change any execution, so it never
    witnesses a violation.

:func:`replay_check`
    Simulates the CASE commit discipline and the worst squash the
    labels permit.  Every segment instance is executed, then *squashed*:
    addresses written only by speculative-labeled references are rolled
    back (their stores were buffered), while addresses written by
    idempotent-labeled references are *poisoned* with a sentinel (their
    stores went straight to memory and a replay must be able to rewrite
    them from scratch -- the RFW property).  The instance is then
    re-executed.  If every label is sound the replay repairs all
    poison and the final observable memory equals a clean sequential
    run's; any difference is a hard soundness violation.  Variables
    production claims are private (dead after the region) are excluded
    from the final comparison -- corrupting an unobservable location is
    harmless, and if the privatization claim is *wrong* the poison
    propagates through the later read into observable state and is
    still caught.

Both oracles witness *non*-idempotency only; a clean run never proves
a speculative label wrong (that direction is precision, measured by
the static re-derivation in :mod:`repro.analysis.checker.rederive`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.idempotency.labeling import LabelingResult
from repro.ir.program import Program
from repro.ir.reference import MemoryReference
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion
from repro.ir.stmt import Statement
from repro.runtime.executor import (
    ComputeOp,
    ReadOp,
    WriteOp,
    evaluate_expression,
    segment_coroutine,
)
from repro.runtime.interpreter import (
    MAX_EXPLICIT_STEPS,
    ExecutionObserver,
    run_program,
)
from repro.runtime.memory import MemoryImage

#: Sentinel written over claimed-idempotent store targets before replay.
#: Exactly representable, extremely unlikely to be computed by accident.
POISON = -7.75e77

#: Default per-segment op budget for oracle executions.
DEFAULT_OP_BUDGET = 2_000_000

Address = Tuple[str, int]


# ----------------------------------------------------------------------
# Trace oracle
# ----------------------------------------------------------------------
@dataclass
class DynamicFacts:
    """Per-region facts derived from one observed execution."""

    region: str
    instances: int = 0
    observed_uids: Set[str] = field(default_factory=set)
    #: reads whose address had not been touched earlier in the same
    #: segment instance.
    dyn_exposed_read_uids: Set[str] = field(default_factory=set)
    #: reads fed by a value-changing write from an earlier instance.
    cross_flow_sink_uids: Set[str] = field(default_factory=set)
    #: writes over an address read or written by an earlier instance.
    cross_anti_output_sink_uids: Set[str] = field(default_factory=set)
    #: the subset of those that also *change* the location's value --
    #: a reordering of instances could observe the difference, so they
    #: refute any claim of full independence.
    cross_value_hazard_write_uids: Set[str] = field(default_factory=set)
    #: value-changing writes whose address was first *read* in the same
    #: instance -- a dynamic refutation of the RFW property.
    rfw_violation_uids: Set[str] = field(default_factory=set)

    def clean_uids(self) -> Set[str]:
        """Observed references with no dynamic hazard of any kind."""
        return self.observed_uids - (
            self.cross_flow_sink_uids
            | self.cross_anti_output_sink_uids
            | self.rfw_violation_uids
        )


class TraceOracle(ExecutionObserver):
    """Observes one sequential run and accumulates :class:`DynamicFacts`."""

    def __init__(self) -> None:
        self.facts: Dict[str, DynamicFacts] = {}
        self._region: Optional[str] = None
        self._inst = -1
        # Per-region address state, reset when a new region begins.
        self._last_write: Dict[Address, Tuple[int, bool]] = {}
        self._last_read_inst: Dict[Address, int] = {}
        # Per-instance state.
        self._first_access: Dict[Address, str] = {}
        self._first_read_value: Dict[Address, float] = {}

    # -- observer hooks -------------------------------------------------
    def begin_segment(
        self, region: Optional[str], segment: str, instance: int
    ) -> None:
        if region != self._region:
            self._region = region
            self._inst = -1
            self._last_write.clear()
            self._last_read_inst.clear()
            if region is not None and region not in self.facts:
                self.facts[region] = DynamicFacts(region=region)
        self._inst += 1
        self._first_access.clear()
        self._first_read_value.clear()
        if region is not None:
            self.facts[region].instances += 1

    def end_segment(self) -> None:
        pass

    def on_read(
        self,
        ref: Optional[MemoryReference],
        address: Address,
        value: float,
    ) -> None:
        if self._region is None:
            return
        facts = self.facts[self._region]
        uid = ref.uid if ref is not None else None
        if uid is not None:
            facts.observed_uids.add(uid)
        if address not in self._first_access:
            self._first_access[address] = "r"
            self._first_read_value[address] = value
            if uid is not None:
                facts.dyn_exposed_read_uids.add(uid)
        last = self._last_write.get(address)
        if (
            last is not None
            and last[0] != self._inst
            and last[1]
            and self._first_access[address] == "r"
            and uid is not None
        ):
            facts.cross_flow_sink_uids.add(uid)
        self._last_read_inst[address] = self._inst

    def on_write(
        self,
        ref: Optional[MemoryReference],
        address: Address,
        old_value: float,
        new_value: float,
    ) -> None:
        if self._region is None:
            return
        facts = self.facts[self._region]
        uid = ref.uid if ref is not None else None
        if uid is not None:
            facts.observed_uids.add(uid)
        changed = old_value != new_value
        if (
            uid is not None
            and self._first_access.get(address) == "r"
            and new_value != self._first_read_value[address]
        ):
            facts.rfw_violation_uids.add(uid)
        if uid is not None:
            last_w = self._last_write.get(address)
            last_r = self._last_read_inst.get(address)
            crossed = (last_w is not None and last_w[0] != self._inst) or (
                last_r is not None and last_r != self._inst
            )
            if crossed:
                facts.cross_anti_output_sink_uids.add(uid)
                if changed:
                    facts.cross_value_hazard_write_uids.add(uid)
        self._first_access.setdefault(address, "w")
        prev = self._last_write.get(address)
        if prev is not None and prev[0] == self._inst:
            changed = changed or prev[1]
        self._last_write[address] = (self._inst, changed)


def run_trace(
    program: Program, op_budget: int = DEFAULT_OP_BUDGET
) -> TraceOracle:
    """One observed sequential run of ``program``."""
    oracle = TraceOracle()
    run_program(
        program,
        op_budget=op_budget,
        use_replay=False,
        model_latency=False,
        observer=oracle,
    )
    return oracle


# ----------------------------------------------------------------------
# Squash-replay oracle
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of the squash-replay simulation."""

    ok: bool
    regions_checked: List[str] = field(default_factory=list)
    #: human-readable mismatch descriptions (capped).
    mismatches: List[str] = field(default_factory=list)
    #: variables excluded from the final diff (claimed private somewhere).
    excluded_vars: Set[str] = field(default_factory=set)


def _exec_body(
    body: Sequence[Statement],
    memory: MemoryImage,
    locals_in_scope: Optional[Dict[str, float]],
    op_budget: int,
    on_write: Optional[Callable] = None,
) -> None:
    """Drive one segment body against ``memory`` (no latency, no stats)."""
    if not body:
        return
    address_of = memory.symbols.address_of
    values = memory._values
    initial_value = memory.initial_value
    missing = object()
    coroutine = segment_coroutine(
        body, locals_in_scope=locals_in_scope, op_budget=op_budget
    )
    send = coroutine.send
    try:
        op = send(None)
        while True:
            cls = type(op)
            if cls is ReadOp:
                address = address_of(op.variable, op.subscripts)
                value = values.get(address, missing)
                if value is missing:
                    value = initial_value(address[0])
                op = send(value)
            elif cls is WriteOp:
                address = address_of(op.variable, op.subscripts)
                if on_write is not None:
                    old = values.get(address, missing)
                    if old is missing:
                        old = initial_value(address[0])
                    on_write(op.ref, address, old)
                values[address] = float(op.value)
                op = send(None)
            else:
                assert cls is ComputeOp
                op = send(None)
    except StopIteration:
        return


def _run_instance_squash_replay(
    body: Sequence[Statement],
    locals_in_scope: Optional[Dict[str, float]],
    memory: MemoryImage,
    idem_uids: Set[str],
    op_budget: int,
) -> None:
    """Execute, squash (rollback + poison), then re-execute one instance."""
    spec_old: Dict[Address, float] = {}
    idem_addrs: Set[Address] = set()

    def on_write(
        ref: Optional[MemoryReference], address: Address, old: float
    ) -> None:
        if ref is not None and ref.uid in idem_uids:
            idem_addrs.add(address)
        elif address not in spec_old:
            spec_old[address] = old

    _exec_body(body, memory, locals_in_scope, op_budget, on_write=on_write)
    values = memory._values
    # Squash: buffered (speculative) stores vanish...
    for address, old in spec_old.items():
        if address not in idem_addrs:
            values[address] = old
    # ...while bypassed (idempotent) stores are stuck in memory -- model
    # the worst permitted pollution by poisoning them.
    for address in idem_addrs:
        values[address] = POISON
    # Replay: a sound labeling repairs every poisoned location.
    _exec_body(body, memory, locals_in_scope, op_budget)


def replay_check(
    program: Program,
    labelings: Dict[str, LabelingResult],
    op_budget: int = DEFAULT_OP_BUDGET,
    max_mismatches: int = 10,
) -> ReplayReport:
    """Squash-replay every region instance and diff observable memory."""
    clean = run_program(
        program, op_budget=op_budget, use_replay=False, model_latency=False
    )

    report = ReplayReport(ok=True)
    for labeling in labelings.values():
        report.excluded_vars |= labeling.private_vars

    memory = MemoryImage(program.symbols)
    _exec_body(program.init, memory, None, op_budget)
    for region in program.regions:
        labeling = labelings.get(region.name)
        idem_uids: Set[str] = set()
        squash = True
        if labeling is not None:
            if labeling.fully_independent:
                # Lemma 7's operational contract: a fully independent
                # region never rolls back, so its instances are not
                # squash-replayed.  The *premise* (no cross-instance
                # value hazards) is verified by the trace oracle.
                squash = False
            idem_uids = {
                ref.uid
                for ref in region.references
                if labeling.is_idempotent(ref)
            }
        report.regions_checked.append(region.name)
        if isinstance(region, LoopRegion):
            reader = memory.read
            lower = int(round(evaluate_expression(region.lower, reader)))
            upper = int(round(evaluate_expression(region.upper, reader)))
            step = int(round(evaluate_expression(region.step, reader)))
            if step == 0:
                raise ValueError(f"region {region.name!r} has zero step")
            value = lower
            while (step > 0 and value <= upper) or (
                step < 0 and value >= upper
            ):
                if squash:
                    _run_instance_squash_replay(
                        region.body,
                        {region.index: value},
                        memory,
                        idem_uids,
                        op_budget,
                    )
                else:
                    _exec_body(
                        region.body,
                        memory,
                        {region.index: value},
                        op_budget,
                    )
                value += step
        else:
            assert isinstance(region, ExplicitRegion)
            edges = region.segment_edges()
            current = region.entry
            steps = 0
            while current != EXIT_NODE:
                steps += 1
                if steps > MAX_EXPLICIT_STEPS:
                    raise RuntimeError(
                        f"explicit region {region.name!r} ran away"
                    )
                segment = region.segment(current)
                if squash:
                    _run_instance_squash_replay(
                        segment.body, None, memory, idem_uids, op_budget
                    )
                else:
                    _exec_body(segment.body, memory, None, op_budget)
                successors = edges.get(current, [])
                if not successors:
                    break
                if len(successors) > 1 and segment.branch is not None:
                    taken = evaluate_expression(segment.branch, memory.read)
                    current = successors[0] if taken else successors[1]
                else:
                    current = successors[0]
    _exec_body(program.finale, memory, None, op_budget)

    # Observable final-state diff.
    addresses = set(clean.memory._values) | set(memory._values)
    for address in sorted(addresses):
        var = address[0]
        if var in report.excluded_vars:
            continue
        expect = clean.memory._values.get(
            address, clean.memory.initial_value(var)
        )
        got = memory._values.get(address, memory.initial_value(var))
        if expect != got:
            report.ok = False
            if len(report.mismatches) < max_mismatches:
                report.mismatches.append(
                    f"{var}[{address[1]}]: sequential={expect!r} "
                    f"squash-replay={got!r}"
                )
    return report
