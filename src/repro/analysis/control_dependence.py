"""Cross-segment control dependences.

A region is control-independent when the identity of the next segment
never depends on values computed inside the region:

* A :class:`~repro.ir.region.LoopRegion` is a counted loop whose bounds
  are evaluated once at region entry, so the sequence of segments
  (iterations) is known up front -- no cross-segment control
  dependences.  (The paper relies on the same architectural guarantee
  for loop variables, Section 4.2.2.)
* An :class:`~repro.ir.region.ExplicitRegion` has cross-segment control
  dependences as soon as any segment can choose between successors
  (including choosing between continuing and leaving the region),
  because that choice is made from data computed by the segments.

Control dependences matter for Lemma 7: only regions free of *both*
data and control cross-segment dependences are fully independent.
"""

from __future__ import annotations

from repro.analysis.cfg import SegmentGraph
from repro.ir.region import ExplicitRegion, LoopRegion, Region


def has_cross_segment_control_dependence(region: Region) -> bool:
    """True when the region's control flow between segments is data dependent."""
    if isinstance(region, LoopRegion):
        return False
    if isinstance(region, ExplicitRegion):
        graph = SegmentGraph.from_region(region)
        return graph.has_multiple_successor_segments()
    raise TypeError(f"unknown region type {type(region).__name__}")  # pragma: no cover
