"""Batched speculative replay tests (``repro.runtime.batch``).

The acceptance bar mirrors the engine suite: with ``batch=True`` the
engines must produce final memory states bit-identical to the
sequential interpreter on every workload family -- fault-free across
windows and capacities (including capacities tight enough to force the
transfer-stall / drain-or-squash fallback), and under every fault kind
of the resilience layer (recovered in place or by graceful
degradation).  Only the *memory* contract is bit-identical; the
batched protocol's micro-dynamics (violation/stall counters) legally
differ from op-interleaving.
"""

import pytest

from repro.bench.workloads import FAMILIES, generate
from repro.resilience.faults import FAULT_KINDS, FaultPlan
from repro.resilience.harness import run_resilient
from repro.runtime.engines import CASEEngine, HOSEEngine
from repro.runtime.interpreter import run_program

SIZE = 12
STATEMENTS = 2

ENGINES = (HOSEEngine, CASEEngine)


def run_batched(program, engine_cls, sequential=None, **kwargs):
    """Run with batching on, assert bit-identity, return the result."""
    if sequential is None:
        sequential = run_program(program, model_latency=False)
    result = engine_cls(program, batch=True, **kwargs).run()
    assert not result.degraded, (
        f"{engine_cls.engine_name} degraded ({kwargs}): "
        f"{result.degradation}"
    )
    diffs = sequential.memory.differences(result.memory, tolerance=0.0)
    assert diffs == {}, (
        f"{engine_cls.engine_name} batched diverged "
        f"({kwargs}): {sorted(diffs.items())[:5]}"
    )
    return result


class TestBatchedEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("window", [1, 4])
    @pytest.mark.parametrize("capacity", [64, None])
    def test_bit_identical_to_sequential(
        self, family, engine_cls, window, capacity
    ):
        program = generate(family, SIZE, STATEMENTS).program
        result = run_batched(
            program, engine_cls, window=window, capacity=capacity
        )
        # The batched path must actually have run, not silently fallen
        # back to op-interleaving.
        assert result.stats.batched_attempts > 0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_batched_matches_interleaved_memory(self, family):
        program = generate(family, SIZE, STATEMENTS).program
        interleaved = CASEEngine(program, window=4, capacity=64).run()
        batched = run_batched(program, CASEEngine, window=4, capacity=64)
        assert interleaved.memory.differences(
            batched.memory, tolerance=0.0
        ) == {}

    def test_fault_free_batch_has_no_violations(self):
        # Batched tasks execute in age order against finalized older
        # write logs, so a fault-free run validates without violating.
        program = generate("reduction", SIZE, STATEMENTS).program
        result = run_batched(program, HOSEEngine, window=4, capacity=64)
        assert result.stats.batch_violations == 0
        assert result.stats.batch_fallbacks == 0


class TestBatchFallback:
    # CASE labels route reduction's references around the speculative
    # buffer entirely, so its capacity pressure needs a family with
    # real cross-segment speculative traffic.
    @pytest.mark.parametrize(
        "engine_cls,family",
        [(HOSEEngine, "reduction"), (CASEEngine, "stencil")],
    )
    @pytest.mark.parametrize("capacity", [1, 2, 4])
    def test_tiny_capacity_falls_back_bit_identically(
        self, engine_cls, family, capacity
    ):
        # Capacities below the attempt's footprint refuse the bulk
        # transfer: the head stalls, then drains (or squashes into the
        # write-through path).  Memory must stay bit-identical.
        program = generate(family, SIZE, STATEMENTS).program
        result = run_batched(
            program, engine_cls, window=4, capacity=capacity
        )
        assert result.stats.batch_fallbacks > 0
        assert result.stats.overflow_stalls > 0

    def test_op_budget_disables_batching(self):
        # A per-segment op budget needs op granularity, so the engine
        # must stay on the interleaved path (budget high enough that
        # nothing trips; batching alone is what is under test).
        program = generate("reduction", SIZE, STATEMENTS).program
        sequential = run_program(program, model_latency=False)
        result = CASEEngine(
            program, window=4, capacity=64, batch=True, op_budget=100_000
        ).run()
        assert result.stats.batched_attempts == 0
        assert sequential.memory.differences(
            result.memory, tolerance=0.0
        ) == {}

    def test_batch_off_by_default(self):
        program = generate("reduction", SIZE, STATEMENTS).program
        result = CASEEngine(program, window=4, capacity=64).run()
        assert result.stats.batched_attempts == 0


class TestBatchedChaos:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("engine", ["hose", "case"])
    def test_recovers_bit_identically_under_faults(self, kind, engine):
        program = generate("sparse", 8, STATEMENTS).program
        sequential = run_program(program, model_latency=False)
        result = run_resilient(
            program,
            engine=engine,
            plan=FaultPlan.single(kind, 0.2),
            seed=3,
            window=4,
            capacity=16,
            max_restarts=50,
            watchdog_rounds=5_000,
            batch=True,
        )
        # Recovered in place or degraded gracefully -- either way the
        # final state is the sequential one.
        assert sequential.memory.differences(
            result.memory, tolerance=0.0
        ) == {}


class TestBatchedTiming:
    def test_recorder_attached_stays_bit_identical(self):
        from repro.timing.events import TimingRecorder

        program = generate("stencil", 10, STATEMENTS).program
        recorder = TimingRecorder()
        result = run_batched(
            program, CASEEngine, window=4, capacity=64, recorder=recorder
        )
        assert result.stats.batched_attempts > 0
        summary = recorder.recording().summary()
        assert summary["committed_segments"] > 0
        assert summary["busy_cycles"] > 0


class TestBatchCounters:
    def test_counters_surface_in_stats_dict(self):
        program = generate("guarded", SIZE, STATEMENTS).program
        result = run_batched(program, CASEEngine, window=4, capacity=64)
        snapshot = result.stats.as_dict()
        for key in (
            "batched_attempts",
            "batched_ops",
            "batch_fallbacks",
            "batch_violations",
            "batch_log_entries",
        ):
            assert key in snapshot
        assert snapshot["batched_attempts"] > 0
        assert snapshot["batched_ops"] > 0
        assert snapshot["batch_log_entries"] > 0


class TestNumpyImportGuard:
    """Regression: the numpy guard must be narrow and must not be silent.

    The module-level ``import numpy`` used to sit behind a bare
    ``except Exception``, so an unrelated numpy-initialization error
    silently degraded every batched run to the pure-python path with no
    signal.  Now only ImportError degrades -- with a one-time structured
    warning through ``repro.obs.log`` -- and anything else propagates.
    """

    def _reload_batch(self):
        import importlib

        import repro.runtime.batch as batch_mod

        return importlib.reload(batch_mod)

    def test_missing_numpy_degrades_with_warning(self):
        import io
        import sys
        from unittest import mock

        from repro.obs.log import configure_logging, reset_logging

        stream = io.StringIO()
        try:
            configure_logging(stream=stream)
            # None in sys.modules makes `import numpy` raise ImportError.
            with mock.patch.dict(sys.modules, {"numpy": None}):
                batch_mod = self._reload_batch()
                assert batch_mod._np is None
        finally:
            reset_logging()
            batch_mod = self._reload_batch()
        assert batch_mod._np is not None
        assert "numpy unavailable" in stream.getvalue()

    def test_non_import_errors_propagate(self):
        import sys

        import pytest as _pytest

        class _ExplodingFinder:
            """Simulates numpy blowing up mid-initialization."""

            def find_spec(self, name, path=None, target=None):
                if name == "numpy" or name.startswith("numpy."):
                    raise RuntimeError("simulated numpy init failure")
                return None

        finder = _ExplodingFinder()
        saved_numpy = {
            name: sys.modules.pop(name)
            for name in list(sys.modules)
            if name == "numpy" or name.startswith("numpy.")
        }
        sys.meta_path.insert(0, finder)
        try:
            with _pytest.raises(RuntimeError, match="simulated numpy"):
                self._reload_batch()
        finally:
            sys.meta_path.remove(finder)
            sys.modules.update(saved_numpy)
            batch_mod = self._reload_batch()
        assert batch_mod._np is not None

    def test_pure_python_path_still_bit_identical(self):
        import sys
        from unittest import mock

        from repro.obs.log import configure_logging, reset_logging
        import io

        stream = io.StringIO()
        try:
            configure_logging(stream=stream)
            with mock.patch.dict(sys.modules, {"numpy": None}):
                self._reload_batch()
                program = generate("reduction", SIZE, STATEMENTS).program
                run_batched(program, CASEEngine, window=4, capacity=64)
        finally:
            reset_logging()
            self._reload_batch()
