"""The ``serve`` bench scenario: concurrent sessions against one daemon.

Stands up an in-process :class:`~repro.serve.sockets.TCPServer` (real
sockets, real sessions, one shared :class:`AnalysisCache`) and drives
``sessions`` concurrent clients through the method cycle

    analyze -> label -> simulate -> analyze -> simulate -> speedup_sweep

over a pool of real workload-family programs, every session submitting
the *same* DSL sources so the interner resolves them to shared region
objects and the cache accumulates cross-request warm hits.  Reports requests/sec and latency percentiles (p50/p95) per method and
overall, the cache's cross-request warm-hit totals, and the bit-
identity verdict of every simulate — the numbers the ``serve`` rows of
``BENCH_results.json`` carry and :func:`check_serve` gates CI on.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.workloads import generate
from repro.obs.log import get_logger
from repro.obs.metrics import metrics_registry, percentile
from repro.serve.dispatch import Dispatcher
from repro.serve.pool import WorkerPool
from repro.serve.protocol import OVERLOADED
from repro.serve.sockets import TCPServer

LOG = get_logger("bench.serve")

#: Concurrent client sessions (the acceptance floor is 4).
SERVE_SESSIONS = 4
#: Requests per session (full run / CI smoke).
SERVE_REQUESTS = 24
SERVE_SMOKE_REQUESTS = 6
#: Daemon sizing.
SERVE_WORKERS = 4
SERVE_MAX_INFLIGHT = 32
#: Workload sizing (small: request latency, not program size, is the
#: quantity under test).
SERVE_SIZE = 32
SERVE_SMOKE_SIZE = 12
SERVE_STATEMENTS = 2
SERVE_FAMILIES = ("stencil", "reduction")

#: The per-session method cycle (ISSUE contract: every method is hit,
#: simulate twice so bit-identity gets real coverage).
METHOD_CYCLE = (
    "analyze",
    "label",
    "simulate",
    "analyze",
    "simulate",
    "speedup_sweep",
)


def measure_serve(
    sessions: int = SERVE_SESSIONS,
    requests_per_session: int = SERVE_REQUESTS,
    workers: int = SERVE_WORKERS,
    max_inflight: int = SERVE_MAX_INFLIGHT,
    size: int = SERVE_SIZE,
    statements: int = SERVE_STATEMENTS,
    families: Sequence[str] = SERVE_FAMILIES,
) -> Dict:
    """Drive ``sessions`` concurrent clients; return the report row."""
    registry = metrics_registry()
    was_collecting = registry.collecting
    registry.enable()
    dispatcher = Dispatcher()
    pool = WorkerPool(workers=workers, max_inflight=max_inflight)
    server = TCPServer(dispatcher, pool)
    workloads = [generate(f, size, statements) for f in families]
    records: List[Tuple[str, float, Optional[dict]]] = []
    records_lock = threading.Lock()
    overloaded = [0]

    def client(session_idx: int) -> None:
        sock = socket.create_connection(
            ("127.0.0.1", server.port), timeout=60
        )
        stream = sock.makefile("rwb")
        try:
            for n in range(requests_per_session):
                method = METHOD_CYCLE[n % len(METHOD_CYCLE)]
                workload = workloads[(n + session_idx) % len(workloads)]
                # Every session submits the same family sources, so
                # the interner resolves them to shared Program objects
                # and warm cache hits cross sessions and requests.
                params: Dict = {"dsl": workload.source}
                if method == "simulate":
                    params["engine"] = (
                        "case" if (n + session_idx) % 2 else "hose"
                    )
                elif method == "speedup_sweep":
                    params["processors"] = [1, 2, 4]
                payload = {
                    "jsonrpc": "2.0",
                    "id": f"s{session_idx}-{n}",
                    "method": method,
                    "params": params,
                }
                line = (json.dumps(payload) + "\n").encode("utf-8")
                t0 = time.perf_counter()
                while True:
                    stream.write(line)
                    stream.flush()
                    raw = stream.readline()
                    if not raw:
                        response = None
                        break
                    response = json.loads(raw)
                    error = response.get("error")
                    if error and error.get("code") == OVERLOADED:
                        # Honour the 429: back off briefly and retry;
                        # the retries stay inside this request's
                        # latency sample.
                        with records_lock:
                            overloaded[0] += 1
                        time.sleep(0.005)
                        continue
                    break
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                with records_lock:
                    records.append((method, elapsed_ms, response))
                if response is None:
                    return
        finally:
            try:
                stream.close()
            except (OSError, ValueError):
                pass
            try:
                sock.close()
            except OSError:
                pass

    server.start()
    t_start = time.perf_counter()
    try:
        threads = [
            threading.Thread(
                target=client, args=(i,), name=f"serve-client-{i}"
            )
            for i in range(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        wall = time.perf_counter() - t_start
    finally:
        server.shutdown()
        pool.close()
        if not was_collecting:
            registry.disable()

    # ------------------------------------------------------------------
    # aggregate
    # ------------------------------------------------------------------
    latencies = sorted(lat for _, lat, _ in records)
    errors = 0
    dropped = 0
    simulate_ok = True
    per_method: Dict[str, List[float]] = {}
    for method, latency, response in records:
        per_method.setdefault(method, []).append(latency)
        if response is None:
            dropped += 1
            continue
        if "error" in response:
            errors += 1
            continue
        result = response.get("result", {})
        if method == "simulate" and result.get("bit_identical") is not True:
            simulate_ok = False
        if method == "speedup_sweep":
            for side in result.get("engines", {}).values():
                if side.get("bit_identical") is not True:
                    simulate_ok = False
    cache_stats = dispatcher.cache.stats()
    total = len(records)
    return {
        "sessions": sessions,
        "requests_per_session": requests_per_session,
        "total_requests": total,
        "workers": workers,
        "max_inflight": max_inflight,
        "families": list(families),
        "size": size,
        "statements": statements,
        "wall_seconds": round(wall, 3),
        "requests_per_second": round(total / wall, 1) if wall > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50.0), 3),
            "p95": round(percentile(latencies, 95.0), 3),
            "mean": round(sum(latencies) / total, 3) if total else 0.0,
            "max": round(max(latencies), 3) if latencies else 0.0,
        },
        "per_method": {
            method: {
                "count": len(samples),
                "p50_ms": round(percentile(sorted(samples), 50.0), 3),
                "p95_ms": round(percentile(sorted(samples), 95.0), 3),
            }
            for method, samples in sorted(per_method.items())
        },
        "errors": errors,
        "dropped": dropped,
        "overloaded_retries": overloaded[0],
        "simulate_bit_identical": simulate_ok,
        "cache": cache_stats,
        "warm_hits": cache_stats["hits"],
        "interned_programs": dispatcher.interned_programs(),
    }


def check_serve(section: Dict) -> List[str]:
    """CI gates over one :func:`measure_serve` row."""
    failures: List[str] = []
    if section["sessions"] < 4:
        failures.append(
            f"serve: only {section['sessions']} concurrent sessions "
            f"(the scenario contract is >= 4)"
        )
    expected = section["sessions"] * section["requests_per_session"]
    if section["total_requests"] != expected or section["dropped"]:
        failures.append(
            f"serve: {section['total_requests']}/{expected} requests "
            f"completed ({section['dropped']} dropped)"
        )
    if section["errors"]:
        failures.append(
            f"serve: {section['errors']} requests returned error envelopes"
        )
    if not section["simulate_bit_identical"]:
        failures.append(
            "serve: a simulate/speedup_sweep run diverged from the "
            "sequential interpreter"
        )
    if section["warm_hits"] <= 0:
        failures.append(
            "serve: shared AnalysisCache saw no cross-request warm hits"
        )
    return failures
