"""Deprecated alias of :mod:`repro.analysis.dependence.subscript_tests`.

The module was renamed: a production module called ``tests.py`` shadows
pytest's collection expectations and invites accidental pickup by test
runners configured with ``python_files = *tests.py``.  Import
:mod:`repro.analysis.dependence.subscript_tests` instead; this shim
re-exports its public names and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.analysis.dependence.subscript_tests import *  # noqa: F401,F403
from repro.analysis.dependence.subscript_tests import (  # noqa: F401
    AliasRelation,
    LoopBounds,
    dimension_relations,
    explicit_pair_may_alias,
    relation_of_reference_pair,
)

warnings.warn(
    "repro.analysis.dependence.tests is deprecated; import "
    "repro.analysis.dependence.subscript_tests instead",
    DeprecationWarning,
    stacklevel=2,
)
