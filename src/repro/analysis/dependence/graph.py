"""Dependence records and the queryable dependence graph.

A :class:`Dependence` connects a *source* reference to a *sink*
reference: the source executes first, the sink second.  The kind follows
the classic naming (flow = write before read, anti = read before write,
output = write before write) and the scope records whether the two
references belong to the same segment or to different segments.

The labeling algorithm's central queries are provided directly:
``is_cross_segment_sink(ref)`` (Lemma 3 / Theorem 1),
``flow_sources_into(ref)`` (covered reads, Lemma 6 / Theorem 2) and
``has_cross_segment_dependences()`` (Lemma 7, fully-independent
regions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.ir.reference import MemoryReference
from repro.ir.types import AccessType, DependenceKind, DependenceScope


@dataclass(frozen=True)
class Dependence:
    """One may-dependence between two references."""

    source: MemoryReference
    sink: MemoryReference
    kind: DependenceKind
    scope: DependenceScope
    variable: str
    #: Execution-position distance (younger minus older segment) when
    #: statically known, e.g. 1 for a distance-1 loop-carried dependence.
    distance: Optional[int] = None

    @property
    def is_cross_segment(self) -> bool:
        return self.scope is DependenceScope.CROSS_SEGMENT

    def describe(self) -> str:
        """Human-readable one-liner for reports and tests."""
        dist = f" distance={self.distance}" if self.distance is not None else ""
        return (
            f"{self.kind.value} dep on {self.variable}: "
            f"{self.source.uid} -> {self.sink.uid} ({self.scope.value}{dist})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Dep {self.describe()}>"


def dependence_kind(source: MemoryReference, sink: MemoryReference) -> Optional[DependenceKind]:
    """Dependence kind implied by the access types (``None`` for read-read)."""
    if source.access is AccessType.WRITE and sink.access is AccessType.READ:
        return DependenceKind.FLOW
    if source.access is AccessType.READ and sink.access is AccessType.WRITE:
        return DependenceKind.ANTI
    if source.access is AccessType.WRITE and sink.access is AccessType.WRITE:
        return DependenceKind.OUTPUT
    return None


class DependenceGraph:
    """All may-dependences of one region, with the queries labeling needs."""

    def __init__(self, region_name: str, dependences: Iterable[Dependence] = ()):
        self.region_name = region_name
        self.dependences: List[Dependence] = []
        self._by_sink: Dict[str, List[Dependence]] = {}
        self._by_source: Dict[str, List[Dependence]] = {}
        for dep in dependences:
            self.add(dep)

    # ------------------------------------------------------------------
    def add(self, dep: Dependence) -> None:
        """Insert a dependence (duplicates with identical endpoints/kind/scope are merged)."""
        for existing in self._by_sink.get(dep.sink.uid, []):
            if (
                existing.source.uid == dep.source.uid
                and existing.kind == dep.kind
                and existing.scope == dep.scope
            ):
                return
        self.dependences.append(dep)
        self._by_sink.setdefault(dep.sink.uid, []).append(dep)
        self._by_source.setdefault(dep.source.uid, []).append(dep)

    def __len__(self) -> int:
        return len(self.dependences)

    def __iter__(self) -> "Iterator[Dependence]":
        return iter(self.dependences)

    # ------------------------------------------------------------------
    # queries used by the labeling algorithm
    # ------------------------------------------------------------------
    def deps_with_sink(self, ref: MemoryReference) -> List[Dependence]:
        """All dependences whose sink is ``ref``."""
        return list(self._by_sink.get(ref.uid, []))

    def deps_with_source(self, ref: MemoryReference) -> List[Dependence]:
        """All dependences whose source is ``ref``."""
        return list(self._by_source.get(ref.uid, []))

    def is_sink(self, ref: MemoryReference) -> bool:
        """True when ``ref`` is the sink of any dependence."""
        return bool(self._by_sink.get(ref.uid))

    def is_cross_segment_sink(self, ref: MemoryReference) -> bool:
        """True when ``ref`` is the sink of a cross-segment dependence (Lemma 3)."""
        return any(d.is_cross_segment for d in self._by_sink.get(ref.uid, []))

    def flow_sources_into(self, ref: MemoryReference) -> List[Dependence]:
        """Flow dependences whose sink is ``ref`` (i.e. the writes it may read)."""
        return [
            d for d in self._by_sink.get(ref.uid, []) if d.kind is DependenceKind.FLOW
        ]

    def cross_segment_dependences(self) -> List[Dependence]:
        """All cross-segment dependences."""
        return [d for d in self.dependences if d.is_cross_segment]

    def has_cross_segment_dependences(self) -> bool:
        """True when the region carries any cross-segment data dependence."""
        return any(d.is_cross_segment for d in self.dependences)

    def variables_with_cross_segment_dependences(self) -> Set[str]:
        """Variables involved in at least one cross-segment dependence."""
        return {d.variable for d in self.dependences if d.is_cross_segment}

    def dependences_on(self, variable: str) -> List[Dependence]:
        """All dependences on ``variable``."""
        return [d for d in self.dependences if d.variable == variable]

    def summary(self) -> Dict[str, int]:
        """Counts by kind and scope (useful in reports and tests)."""
        out: Dict[str, int] = {
            "total": len(self.dependences),
            "cross_segment": 0,
            "intra_segment": 0,
        }
        for dep in self.dependences:
            out[dep.kind.value] = out.get(dep.kind.value, 0) + 1
            if dep.is_cross_segment:
                out["cross_segment"] += 1
            else:
                out["intra_segment"] += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DependenceGraph {self.region_name} deps={len(self.dependences)}>"
