"""Runtime error taxonomy.

Everything the execution substrates raise derives from
:class:`SimulationError`, so callers that want "this run failed" get a
single except clause while the resilience layer
(:mod:`repro.resilience`) can still distinguish *substrate* failures
(livelock, invariant violations, injected faults) from *program*
failures (bad addresses, exhausted operation budgets) when deciding
whether to degrade to the sequential interpreter.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Raised when program execution fails (out-of-bounds subscripts,
    undeclared variables, runaway speculative execution, ...)."""


class AddressError(SimulationError):
    """Raised for invalid memory addresses (bad subscripts, unknown symbols)."""


class InvariantViolation(SimulationError):
    """Raised by the runtime invariant auditor when speculative-store
    state is inconsistent: buffers out of age order, committed entries
    leaking back into the in-flight set, occupancy accounting drift, or
    forwarding served from a younger segment.  Always indicates a
    substrate (or injected-fault) problem, never a program bug, so the
    engines recover from it by degrading to sequential execution."""


class EngineLivelockError(SimulationError):
    """Raised when execution stops making forward progress: a segment
    exhausted its bounded squash-restart budget, the global progress
    watchdog saw too many scheduling rounds without a commit, or a
    cyclic explicit region exceeded its segment-execution cap."""


class FaultInjected(SimulationError):
    """Raised by :mod:`repro.resilience.faults` when an injected fault
    takes the form of an exception inside a speculative segment body
    (the transient-fault model).  The engines treat it as a squashable
    event: the segment is rolled back and re-executed, and only a
    persistent fault escalates to degradation."""
