"""Intermediate representation: expressions, statements, segments, regions, programs.

Most users only need the re-exports below plus either the builder API
(:mod:`repro.ir.builder`) or the text front end (:mod:`repro.ir.dsl`).
"""

from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    Index,
    UnaryOp,
    Var,
    as_expr,
)
from repro.ir.program import Program, ProgramError
from repro.ir.reference import MemoryReference, extract_references
from repro.ir.region import (
    EXIT_NODE,
    LOOP_BODY_SEGMENT,
    ExplicitRegion,
    LoopRegion,
    Region,
    RegionError,
)
from repro.ir.segment import Segment, SegmentError
from repro.ir.stmt import Assign, Do, If, Statement, StatementError
from repro.ir.symbols import Symbol, SymbolError, SymbolTable
from repro.ir.types import (
    AccessType,
    DependenceKind,
    DependenceScope,
    IdempotencyCategory,
    NodeColor,
    NodeMark,
    RefLabel,
    RegionKind,
    VarKind,
)

__all__ = [
    "AccessType",
    "Assign",
    "BinOp",
    "Call",
    "Const",
    "DependenceKind",
    "DependenceScope",
    "Do",
    "EXIT_NODE",
    "ExplicitRegion",
    "Expr",
    "IdempotencyCategory",
    "If",
    "Index",
    "LOOP_BODY_SEGMENT",
    "LoopRegion",
    "MemoryReference",
    "NodeColor",
    "NodeMark",
    "Program",
    "ProgramError",
    "RefLabel",
    "Region",
    "RegionError",
    "RegionKind",
    "Segment",
    "SegmentError",
    "Statement",
    "StatementError",
    "Symbol",
    "SymbolError",
    "SymbolTable",
    "UnaryOp",
    "Var",
    "VarKind",
    "as_expr",
    "extract_references",
]
