"""Differential label-soundness checker.

This package is the *verification* counterpart of the production
analyses in :mod:`repro.analysis` and :mod:`repro.idempotency`: a
second, structurally different derivation of the paper's Algorithm 1
and Algorithm 2 facts plus a dynamic execution oracle, used to judge
every production idempotency label as *sound*, *suspect* or merely
*conservative*.

Components
----------

:mod:`repro.analysis.checker.dataflow`
    A generic iterative (worklist) dataflow solver over arbitrary
    graphs.  All static re-derivations below are instances of it.

:mod:`repro.analysis.checker.stmt_cfg`
    A real statement-level control-flow graph per segment body
    (branch/join diamonds for ``IF``, header/back-edge/exit nodes for
    ``DO``) -- the production analyses never build one; they reason
    over flat reference lists with pairwise rectangle coverage.

:mod:`repro.analysis.checker.rederive`
    Re-derives node marks, exposed reads, RFW sets, liveness,
    privatization, dependences and finally the Algorithm-2 labels from
    first principles: must-defined location descriptors via dataflow
    plus *concrete address enumeration* for dependences (no ZIV / SIV /
    GCD machinery).  Disagreements with production are classified by
    direction (production-aggressive vs production-conservative).

:mod:`repro.analysis.checker.oracle`
    Dynamic ground truth from actual executions: a trace observer on
    the sequential interpreter derives per-instance exposed reads and
    cross-segment dependences by address, and a squash-replay harness
    poisons the addresses of idempotent-labeled writes with sentinels
    and re-executes -- any live difference proves a label unsound.

:mod:`repro.analysis.checker.differential`
    Combines the above into one :class:`ProgramReport` with typed
    findings, the machine-readable payload behind ``python -m
    repro.check``.
"""

from repro.analysis.checker.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.checker.differential import (
    CheckConfig,
    Finding,
    ProgramReport,
    RegionReport,
    check_program,
    mutation_check,
)
from repro.analysis.checker.oracle import (
    DynamicFacts,
    ExecutionObserver,
    TraceOracle,
    replay_check,
)
from repro.analysis.checker.rederive import RederivedFacts, rederive_region
from repro.analysis.checker.stmt_cfg import CFGNode, StmtCFG, build_segment_cfg

__all__ = [
    "CFGNode",
    "CheckConfig",
    "DataflowProblem",
    "DynamicFacts",
    "ExecutionObserver",
    "Finding",
    "ProgramReport",
    "RederivedFacts",
    "RegionReport",
    "StmtCFG",
    "TraceOracle",
    "build_segment_cfg",
    "check_program",
    "mutation_check",
    "rederive_region",
    "replay_check",
    "solve_dataflow",
]
