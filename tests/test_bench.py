"""Benchmark subsystem tests: generators, harness, CLI output."""

import json

from repro.bench import FAMILIES, generate, generate_suite, measure_family
from repro.bench.__main__ import main as bench_main
from repro.runtime.interpreter import run_program


class TestWorkloads:
    def test_all_families_generate_and_run(self):
        for workload in generate_suite(size=12, statements=2):
            result = run_program(workload.program)
            assert result.stats.segments_committed > 0, workload.family

    def test_statement_knob_scales_references(self):
        small = generate("stencil", 16, 2)
        large = generate("stencil", 16, 6)
        assert len(large.region.references) > len(small.region.references)

    def test_unknown_family_rejected(self):
        try:
            generate("nonsense", 16)
        except ValueError as exc:
            assert "nonsense" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestHarness:
    def test_measure_family_smoke(self):
        workload = generate("reduction", 12, 2)
        result = measure_family(workload, min_seconds=0.01, min_repeats=1)
        assert result.analyze.per_second > 0
        assert result.simulate.per_second > 0
        assert result.replayed
        payload = result.as_dict()
        assert payload["family"] == "reduction"
        assert payload["references"] == len(workload.region.references)


class TestCLI:
    def test_smoke_run_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_results.json"
        code = bench_main(["--smoke", "--out", str(out), "--families", "stencil"])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["meta"]["smoke"] is True
        entry = report["families"]["stencil"]
        for mode in ("fast", "baseline"):
            assert entry[mode]["analyze_refs_per_s"] > 0
            assert entry[mode]["simulate_ops_per_s"] > 0
        assert "speedup" in entry
        assert sorted(FAMILIES) == sorted(
            ["guarded", "reduction", "sparse", "stencil"]
        )

    def test_no_fast_path_selects_baseline_only(self, tmp_path):
        out = tmp_path / "baseline.json"
        code = bench_main(
            ["--smoke", "--no-fast-path", "--out", str(out), "--families", "sparse"]
        )
        assert code == 0
        report = json.loads(out.read_text())
        entry = report["families"]["sparse"]
        assert "baseline" in entry and "fast" not in entry
        assert entry["baseline"]["replayed"] is False

    def test_list_scenarios(self, capsys):
        assert bench_main(["--list-scenarios"]) == 0
        captured = capsys.readouterr().out
        for scenario in ("families", "engines", "speedup"):
            assert scenario in captured

    def test_scenario_selection_runs_only_speedup(self, tmp_path):
        out = tmp_path / "speedup.json"
        code = bench_main(
            [
                "--smoke",
                "--scenarios",
                "speedup",
                "--families",
                "reduction",
                "--processors",
                "1",
                "4",
                "--speedup-windows",
                "4",
                "--speedup-capacities",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["meta"]["scenarios"] == ["speedup"]
        assert report["families"] == {}
        assert "engines" not in report
        entry = report["speedup"]["families"]["reduction"]
        assert entry["sequential_cycles"] > 0
        row = entry["configs"]["w4_cinf"]
        for side in ("hose", "case"):
            assert row[side]["matches_sequential"] is True
            assert row[side]["processors"]["4"]["speedup"] > 1

    def test_check_speedup_passes_on_smoke_sizes(self, tmp_path):
        out = tmp_path / "checked.json"
        code = bench_main(
            [
                "--smoke",
                "--scenarios",
                "speedup",
                "--families",
                "reduction",
                "--check-speedup",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        # The acceptance sweep: all four default processor counts.
        row = report["speedup"]["families"]["reduction"]["configs"]["w4_c64"]
        assert set(row["hose"]["processors"]) == {"1", "2", "4", "8"}

    def test_check_speedup_requires_speedup_scenario(self):
        assert (
            bench_main(["--scenarios", "engines", "--check-speedup"]) == 2
        )

    def test_check_speedup_rejects_verify_engines(self):
        # --verify-engines returns before the speedup scenario; the
        # combination must be refused, not silently skipped.
        assert bench_main(["--verify-engines", "--check-speedup"]) == 2

    def test_empty_scenario_selection_rejected(self):
        assert bench_main(["--scenarios", "engines", "--no-engines"]) == 2
