"""Seeded random program generator for fuzz-scale differential checking.

Generates small but adversarial DSL programs exercising the analysis
corners where labeler bugs hide:

* subscript patterns: identity ``a(i)``, shifted ``a(i±k)``, constant
  ``a(c)``, strided inner-loop ``a(t)`` with step 1 or 2, and indirect
  ``a(idx(i))`` (non-affine -- forces the conservative paths);
* scalar reductions, private-candidate temporaries, guarded
  assignments, ``if/then/else`` diamonds, nested loops;
* loop regions with forward, backward and strided iteration spaces,
  and occasionally explicit segment regions with a branch diamond.

Everything is seeded: ``generate_source(seed)`` is a pure function of
its arguments, so any corpus finding is reproducible from
``(seed, index)`` alone.  Extents are generous (arrays of 32) and
every generated subscript is confined to the declared extent by
construction, so generated programs execute without address errors.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.ir.dsl import parse_program
from repro.ir.program import Program

#: Array extent used by every generated array.
EXTENT = 32
#: Region index never exceeds this.
MAX_TRIP = 8
#: Largest subscript shift; EXTENT - MAX_TRIP - MAX_SHIFT stays safe.
MAX_SHIFT = 3

_ARRAYS = ("a", "b", "c")
_SCALARS = ("s", "u", "w")


class _Gen:
    """One program's worth of generator state."""

    def __init__(self, rng: random.Random, name: str):
        self.rng = rng
        self.name = name
        self.lines: List[str] = []

    # -- helpers --------------------------------------------------------
    def pick_array(self) -> str:
        return self.rng.choice(_ARRAYS)

    def pick_scalar(self) -> str:
        return self.rng.choice(_SCALARS)

    def subscript(self, index: str, allow_indirect: bool = True) -> str:
        """A safe subscript expression in terms of loop index ``index``."""
        roll = self.rng.random()
        if roll < 0.45:
            return index
        if roll < 0.65:
            # Positive shifts only: the smallest index value is 1, so a
            # negative shift could escape the declared extent.  Distinct
            # shifts between references still produce cross-iteration
            # dependences in both directions.
            return f"{index} + {self.rng.randint(1, MAX_SHIFT)}"
        if roll < 0.85:
            return str(self.rng.randint(1, MAX_TRIP))
        if allow_indirect:
            return f"idx({index})"
        return index

    def value_expr(self, index: str, depth: int = 0) -> str:
        """A right-hand side reading arrays/scalars/the index."""
        rng = self.rng
        roll = rng.random()
        if depth >= 2 or roll < 0.25:
            return rng.choice(
                (
                    f"{rng.randint(1, 9)}.0",
                    index,
                    self.pick_scalar(),
                )
            )
        if roll < 0.65:
            arr = self.pick_array()
            return f"{arr}({self.subscript(index)})"
        left = self.value_expr(index, depth + 1)
        right = self.value_expr(index, depth + 1)
        op = rng.choice(("+", "-", "*", "+"))
        return f"{left} {op} {right}"

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("  " * indent + text)

    # -- statement menu -------------------------------------------------
    def gen_statement(self, index: str, indent: int, depth: int = 0) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:  # array store
            arr = self.pick_array()
            self.emit(
                indent,
                f"{arr}({self.subscript(index)}) = {self.value_expr(index)}",
            )
        elif roll < 0.50:  # reduction
            s = self.pick_scalar()
            self.emit(indent, f"{s} = {s} + {self.value_expr(index)}")
        elif roll < 0.62:  # scalar overwrite (private candidate)
            s = self.pick_scalar()
            self.emit(indent, f"{s} = {self.value_expr(index)}")
        elif roll < 0.72 and depth < 2:  # guarded assignment
            arr = self.pick_array()
            guard = f"{self.pick_scalar()} > {rng.randint(0, 4)}.5"
            self.emit(
                indent,
                f"if ({guard}) {arr}({self.subscript(index)}) = "
                f"{self.value_expr(index)}",
            )
        elif roll < 0.84 and depth < 2:  # if/then/else diamond
            cond = (
                f"{self.pick_array()}({self.subscript(index, False)}) "
                f"> {rng.randint(1, 6)}.0"
            )
            self.emit(indent, f"if ({cond}) then")
            for _ in range(rng.randint(1, 2)):
                self.gen_statement(index, indent + 1, depth + 1)
            if rng.random() < 0.6:
                self.emit(indent, "else")
                for _ in range(rng.randint(1, 2)):
                    self.gen_statement(index, indent + 1, depth + 1)
            self.emit(indent, "end if")
        elif depth < 2:  # inner loop, stride 1 or 2
            inner = "t" if index != "t" else "v"
            step = rng.choice((1, 1, 2))
            hi = rng.randint(2, MAX_TRIP)
            head = f"do {inner} = 1, {hi}"
            if step != 1:
                head += f", {step}"
            self.emit(indent, head)
            for _ in range(rng.randint(1, 2)):
                self.gen_statement(inner, indent + 1, depth + 1)
            self.emit(indent, "end do")
        else:
            s = self.pick_scalar()
            self.emit(indent, f"{s} = {s} + 1.0")

    # -- regions --------------------------------------------------------
    def gen_loop_region(self, rid: int) -> None:
        rng = self.rng
        lo, hi, step = 1, rng.randint(3, MAX_TRIP), 1
        if rng.random() < 0.15:
            lo, hi, step = hi, 1, -1
        elif rng.random() < 0.12:
            step = 2
        head = f"region R{rid} do i = {lo}, {hi}"
        if step != 1:
            head += f", {step}"
        self.emit(0, head)
        for _ in range(rng.randint(2, 5)):
            self.gen_statement("i", 1)
        self.emit(0, "end region")

    def gen_explicit_region(self, rid: int) -> None:
        rng = self.rng
        self.emit(0, f"region R{rid} explicit")
        names = [f"S{k}" for k in range(rng.randint(2, 4))]
        diamond = len(names) >= 3 and rng.random() < 0.6
        for pos, name in enumerate(names):
            self.emit(1, f"segment {name}")
            for _ in range(rng.randint(1, 3)):
                self.gen_statement(str(rng.randint(1, MAX_TRIP)), 2)
            if diamond and pos == 0:
                self.emit(2, f"branch {self.pick_scalar()} > 1.0")
            self.emit(1, "end segment")
        if diamond:
            first = names[0]
            arms = names[1:-1] if len(names) >= 4 else names[1:]
            last = names[-1] if len(names) >= 4 else None
            for arm in arms:
                self.emit(1, f"edges {first} -> {arm}")
                if last is not None:
                    self.emit(1, f"edges {arm} -> {last}")
        else:
            for src, dst in zip(names, names[1:]):
                self.emit(1, f"edges {src} -> {dst}")
        self.emit(0, "end region")

    # -- whole program --------------------------------------------------
    def generate(self) -> str:
        rng = self.rng
        self.emit(0, f"program {self.name}")
        for arr in _ARRAYS:
            self.emit(0, f"real {arr}({EXTENT})")
        self.emit(0, f"integer idx({EXTENT})")
        for s in _SCALARS:
            self.emit(0, f"real {s}")
        self.emit(0, "")
        self.emit(0, "init")
        for pos, arr in enumerate(_ARRAYS):
            self.emit(1, f"do t = 1, {EXTENT}")
            self.emit(2, f"{arr}(t) = {pos + 1} * t")
            self.emit(1, "end do")
        self.emit(1, f"do t = 1, {EXTENT}")
        # Indirection targets stay inside [1, MAX_TRIP + MAX_SHIFT].
        self.emit(2, f"idx(t) = 1 + mod(5 * t, {MAX_TRIP + MAX_SHIFT})")
        self.emit(1, "end do")
        for pos, s in enumerate(_SCALARS):
            self.emit(1, f"{s} = {pos}.5")
        self.emit(0, "end init")
        self.emit(0, "")
        for rid in range(rng.randint(1, 3)):
            if rng.random() < 0.18:
                self.gen_explicit_region(rid)
            else:
                self.gen_loop_region(rid)
            self.emit(0, "")
        self.emit(0, "finale")
        for s in _SCALARS:
            arr = self.pick_array()
            self.emit(1, f"{s} = {s} + {arr}({rng.randint(1, EXTENT)})")
        self.emit(0, "end finale")
        self.emit(0, "end program")
        return "\n".join(self.lines) + "\n"


def generate_source(seed: int, index: int = 0) -> str:
    """DSL source of generated program ``index`` under ``seed``."""
    rng = random.Random(seed * 1_000_003 + index)
    return _Gen(rng, f"fuzz_{seed}_{index}").generate()


def generate_program(seed: int, index: int = 0) -> Program:
    """Parsed program ``index`` under ``seed``."""
    return parse_program(generate_source(seed, index))


def corpus(count: int, seed: int) -> Iterator[Tuple[int, Program]]:
    """Yield ``(index, program)`` for a whole seeded batch."""
    for index in range(count):
        yield index, generate_program(seed, index)
