"""Unified observability layer: span tracing, metrics, trace export.

The subsystems of this repository each grew their own telemetry --
:class:`~repro.runtime.stats.ExecutionStats` counters,
:class:`~repro.timing.events.TimingRecorder` recordings, resilience
:class:`~repro.runtime.engines.DegradationReport` payloads, checker JSON
reports -- and mostly discard it after aggregation.  ``repro.obs`` is
the layer that makes all of it *inspectable*:

:mod:`repro.obs.tracer`
    A thread-safe span tracer (context managers, decorators, nested
    spans, instant events, attributes).  Disabled by default; every
    instrumentation site in the analyzer, the engines, the resilience
    layer and the checker costs one attribute check when tracing is
    off, so the production fast paths are unperturbed (the bench gate
    enforces <= 2% overhead with observability disabled).

:mod:`repro.obs.metrics`
    A process-wide registry of counters / gauges / histograms with
    adapters that *ingest* the existing telemetry objects
    (``ExecutionStats``, timing ``Recording``, ``DegradationReport``,
    ``AnalysisCache`` stats) instead of duplicating their accounting.

:mod:`repro.obs.export`
    Chrome-trace-event (Perfetto-compatible) JSON export: span trees as
    slices + flow arrows, and the multiprocessor timing schedule of
    :mod:`repro.timing.schedule` as per-processor-lane timelines where
    segment attempts are slices and dispatch / stall / squash / commit
    are colored or instant events.

:mod:`repro.obs.log`
    The shared structured logger behind the bench and check CLIs
    (``--quiet``, JSON-lines output).

``python -m repro.obs`` summarizes and schema-validates exported trace
and metrics files (the CI smoke gates on it).  See
``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    ingest_cache_stats,
    ingest_degradation,
    ingest_execution_stats,
    ingest_recording,
    metrics_registry,
    validate_metrics,
)
from repro.obs.tracer import TRACER, Span, Tracer, traced

__all__ = [
    "TRACER",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_logging",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "ingest_cache_stats",
    "ingest_degradation",
    "ingest_execution_stats",
    "ingest_recording",
    "metrics_registry",
    "traced",
    "validate_metrics",
]


def enable() -> None:
    """Arm the whole observability layer (tracer + metrics collection)."""
    TRACER.enable()
    metrics_registry().enable()


def disable() -> None:
    """Disarm tracing and metrics collection (recorded data is kept)."""
    TRACER.disable()
    metrics_registry().disable()


def enabled() -> bool:
    """True when the span tracer is currently armed."""
    return TRACER.enabled
