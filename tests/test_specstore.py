"""Speculative-store unit tests: forwarding, capacity, violations,
commit/squash lifecycle and occupancy tracking."""

import pytest

from repro.ir.symbols import SymbolTable
from repro.runtime.memory import MemoryImage
from repro.runtime.specstore import SpeculativeStore, SpecStoreError


def make_memory(*scalars):
    table = SymbolTable()
    for name in scalars:
        table.scalar(name)
    return MemoryImage(table)


class TestLifecycle:
    def test_ages_must_increase(self):
        store = SpeculativeStore()
        store.open_segment(("R", 1), 1)
        with pytest.raises(SpecStoreError):
            store.open_segment(("R", 0), 1)

    def test_commit_drains_values_to_memory(self):
        store = SpeculativeStore()
        memory = make_memory("a", "b")
        buf = store.open_segment(("R", 1), 1)
        assert store.record_write(buf, ("a", 0), 3.5)
        assert store.record_write(buf, ("b", 0), 4.5)
        assert store.record_write(buf, ("a", 0), 5.5)  # overwrite, same entry
        assert buf.entries == 2
        committed = store.commit(buf, memory)
        assert committed == 2
        assert memory.load(("a", 0)) == 5.5
        assert memory.load(("b", 0)) == 4.5
        assert len(store) == 0

    def test_squash_clears_but_keeps_registration(self):
        store = SpeculativeStore()
        buf = store.open_segment(("R", 1), 1)
        store.record_write(buf, ("a", 0), 1.0)
        store.record_read(buf, ("b", 0))
        discarded = store.squash(buf)
        assert discarded == 2
        assert buf.entries == 0
        assert buf.squashes == 1
        assert store.buffers() == [buf]

    def test_abandon_removes_without_committing(self):
        store = SpeculativeStore()
        memory = make_memory("a")
        buf = store.open_segment(("R", 1), 1)
        store.record_write(buf, ("a", 0), 9.0)
        store.abandon(buf)
        assert len(store) == 0
        assert memory.load(("a", 0)) == 0.0  # nothing leaked

    def test_commit_of_unregistered_buffer_raises(self):
        store = SpeculativeStore()
        memory = make_memory("a")
        buf = store.open_segment(("R", 1), 1)
        store.commit(buf, memory)
        with pytest.raises(SpecStoreError):
            store.commit(buf, memory)


class TestCapacity:
    def test_allocation_refused_past_capacity(self):
        store = SpeculativeStore(capacity=2)
        buf = store.open_segment(("R", 1), 1)
        assert store.record_write(buf, ("a", 0), 1.0)
        assert store.record_read(buf, ("b", 0))
        assert not store.record_write(buf, ("c", 0), 1.0)
        assert not store.record_read(buf, ("d", 0))
        # Already-tracked addresses never overflow.
        assert store.record_write(buf, ("a", 0), 2.0)
        assert store.record_read(buf, ("b", 0))

    def test_capacity_is_per_segment(self):
        store = SpeculativeStore(capacity=1)
        b1 = store.open_segment(("R", 1), 1)
        b2 = store.open_segment(("R", 2), 2)
        assert store.record_write(b1, ("a", 0), 1.0)
        assert store.record_write(b2, ("b", 0), 1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeStore(capacity=0)

    def test_unbounded_capacity(self):
        store = SpeculativeStore(capacity=None)
        buf = store.open_segment(("R", 1), 1)
        for i in range(500):
            assert store.record_write(buf, ("a", i), float(i))
        assert buf.entries == 500


class TestForwarding:
    def test_nearest_older_writer_wins(self):
        store = SpeculativeStore()
        old = store.open_segment(("R", 1), 1)
        mid = store.open_segment(("R", 2), 2)
        young = store.open_segment(("R", 3), 3)
        store.record_write(old, ("a", 0), 1.0)
        store.record_write(mid, ("a", 0), 2.0)
        assert store.forward(young, ("a", 0)) == 2.0
        # A buffer never forwards from itself or younger buffers.
        assert store.forward(mid, ("a", 0)) == 1.0
        assert store.forward(old, ("a", 0)) is None

    def test_miss_everywhere_returns_none(self):
        store = SpeculativeStore()
        b1 = store.open_segment(("R", 1), 1)
        b2 = store.open_segment(("R", 2), 2)
        store.record_read(b1, ("a", 0))
        assert store.forward(b2, ("a", 0)) is None


class TestViolations:
    def test_younger_readers_reported(self):
        store = SpeculativeStore()
        old = store.open_segment(("R", 1), 1)
        mid = store.open_segment(("R", 2), 2)
        young = store.open_segment(("R", 3), 3)
        store.record_read(mid, ("a", 0))
        store.record_read(young, ("a", 0))
        store.record_read(old, ("a", 0))  # older reader: never a violator
        violators = store.violators(1, ("a", 0))
        assert violators == [mid, young]
        assert store.violators(2, ("a", 0)) == [young]
        assert store.violators(3, ("a", 0)) == []

    def test_own_buffer_hits_are_not_violations(self):
        store = SpeculativeStore()
        old = store.open_segment(("R", 1), 1)
        young = store.open_segment(("R", 2), 2)
        store.record_write(young, ("a", 0), 2.0)
        # Younger wrote but never performed an exposed read.
        assert store.violators(1, ("a", 0)) == []
        assert store.violators(1, ("b", 0)) == []
        assert old.entries == 0


class TestOccupancy:
    def test_peaks_track_high_water_marks(self):
        store = SpeculativeStore()
        memory = make_memory("a", "b", "c")
        b1 = store.open_segment(("R", 1), 1)
        store.record_write(b1, ("a", 0), 1.0)
        store.record_write(b1, ("b", 0), 1.0)
        b2 = store.open_segment(("R", 2), 2)
        store.record_read(b2, ("c", 0))
        assert store.occupancy() == 3
        assert store.peak_entries == 3
        assert store.peak_segment_entries == 2
        store.commit(b1, memory)
        assert store.occupancy() == 1
        assert store.peak_entries == 3  # peak persists after commit


class TestFaultEdges:
    """Squash/abandon/commit edges driven by the resilience layer."""

    def test_squash_of_overflow_stalled_buffer(self):
        # A buffer refused its next allocation (the engine would stall
        # it); squashing it must release every entry so the re-executed
        # segment can allocate afresh.
        store = SpeculativeStore(capacity=2)
        buf = store.open_segment(("R", 1), 1)
        assert store.record_write(buf, ("a", 0), 1.0)
        assert store.record_write(buf, ("b", 0), 2.0)
        assert not store.record_write(buf, ("c", 0), 3.0)  # overflow
        store.squash(buf)
        assert buf.entries == 0
        assert store.occupancy() == 0
        assert store.record_write(buf, ("c", 0), 3.0)
        assert len(store) == 1  # still registered for re-execution

    def test_squash_clears_poison(self):
        store = SpeculativeStore()
        buf = store.open_segment(("R", 1), 1)
        buf.poisoned = True
        store.squash(buf)
        assert buf.poisoned is False

    def test_abandon_with_in_flight_forwarders(self):
        # A younger buffer was being served by an older one; once the
        # older is abandoned (wrong control path), the same read must
        # miss instead of returning the dead segment's value.
        store = SpeculativeStore()
        older = store.open_segment(("R", 1), 1)
        younger = store.open_segment(("R", 2), 2)
        store.record_write(older, ("a", 0), 7.0)
        assert store.forward(younger, ("a", 0)) == 7.0
        store.abandon(older)
        assert store.forward(younger, ("a", 0)) is None
        assert store.occupancy() == 0 + younger.entries

    def test_commit_after_transient_capacity_shrink(self):
        from repro.resilience.faults import (
            FaultInjector,
            FaultPlan,
            FaultySpeculativeStore,
        )

        injector = FaultInjector(
            FaultPlan.single("capacity_shrink", 1.0), seed=0
        )
        store = FaultySpeculativeStore(8, injector)
        memory = make_memory("a", "b")
        buf = store.open_segment(("R", 1), 1)
        # Rate 1.0: every new-entry allocation is refused once ...
        assert not store.record_write(buf, ("a", 0), 1.0)
        # ... but the fault is transient per opportunity, so disarming
        # it (as time passing would) lets the retry land and the commit
        # drain the full buffer.
        injector.plan = FaultPlan([])
        assert store.record_write(buf, ("a", 0), 1.5)
        assert store.record_write(buf, ("b", 0), 2.5)
        assert store.commit(buf, memory) == 2
        assert memory.load(("a", 0)) == 1.5
        assert memory.load(("b", 0)) == 2.5
        assert store.occupancy() == 0
