"""Timing event streams emitted by the speculative engines.

The engines used to bump scalar counters only; with a
:class:`TimingRecorder` attached they additionally emit a **per-segment
-attempt event stream**: segment issue, every operation with its cost
(priced by the :class:`~repro.timing.cost.CostModel` at emission time),
overflow stalls, overflow drains, squashes (tagged with the age of the
violating writer), wrong-path discards and commits.  The recorder folds
the stream into a :class:`Recording` -- alternating non-speculative
:class:`DirectSection` blocks (init / finale) and per-region
:class:`RegionRecording` blocks holding one :class:`SegmentRecord` per
segment occurrence, in age order -- which is exactly the shape the
processor scheduler of :mod:`repro.timing.schedule` consumes.

An attempt's run cycles are coalesced into ``("run", cycles)`` phases
(interleaved with ``("stall",)`` and ``("drain", entries)`` markers), so
a recording stays small even for long segments: its size is linear in
the number of *speculation events*, not operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.timing.cost import CostModel

#: Attempt outcomes.
OUTCOME_ACTIVE = "active"
OUTCOME_COMMITTED = "committed"
OUTCOME_SQUASHED = "squashed"
OUTCOME_DISCARDED = "discarded"

#: Phase tags inside one attempt.
PHASE_RUN = "run"
PHASE_STALL = "stall"
PHASE_DRAIN = "drain"


@dataclass
class AttemptRecord:
    """One execution attempt of one segment occurrence."""

    #: ``["run", cycles]`` / ``("stall",)`` / ``("drain", entries)`` in
    #: execution order (run phases are mutable lists so they coalesce).
    phases: List = field(default_factory=list)
    #: Total run cycles of the attempt (sum of run phases).
    busy_cycles: int = 0
    outcome: str = OUTCOME_ACTIVE
    #: Squashed attempts: the violating writer's age, which of its
    #: attempts performed the violating write, and the priced cycles
    #: that attempt had executed at that moment -- the scheduler uses
    #: these to gate the restart at the write's actual time.
    squashed_by: Optional[int] = None
    squashed_by_attempt: Optional[int] = None
    squashed_at_elapsed: int = 0
    #: Entries drained at commit (committed attempts only).
    commit_entries: int = 0

    def add_run(self, cycles: int) -> None:
        if cycles <= 0:
            return
        phases = self.phases
        if phases and phases[-1][0] is PHASE_RUN:
            phases[-1][1] += cycles
        else:
            phases.append([PHASE_RUN, cycles])
        self.busy_cycles += cycles

    def as_dict(self) -> Dict:
        return {
            "phases": [list(phase) for phase in self.phases],
            "busy_cycles": self.busy_cycles,
            "outcome": self.outcome,
            "squashed_by": self.squashed_by,
            "squashed_by_attempt": self.squashed_by_attempt,
            "squashed_at_elapsed": self.squashed_at_elapsed,
            "commit_entries": self.commit_entries,
        }


@dataclass
class SegmentRecord:
    """All attempts of one segment occurrence."""

    key: Tuple
    age: int
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def outcome(self) -> str:
        return self.attempts[-1].outcome if self.attempts else OUTCOME_ACTIVE

    def as_dict(self) -> Dict:
        return {
            "key": list(self.key),
            "age": self.age,
            "outcome": self.outcome,
            "attempts": [attempt.as_dict() for attempt in self.attempts],
        }


@dataclass
class DirectSection:
    """A non-speculative stretch (init / finale / region entry code)."""

    label: str = "direct"
    cycles: int = 0

    def as_dict(self) -> Dict:
        return {"type": "direct", "label": self.label, "cycles": self.cycles}


@dataclass
class RegionRecording:
    """Event streams of one region execution."""

    name: str
    kind: str  # "loop" | "explicit"
    #: Segment occurrences in age (= dispatch) order.
    segments: List[SegmentRecord] = field(default_factory=list)

    def as_dict(self) -> Dict:
        return {
            "type": "region",
            "name": self.name,
            "kind": self.kind,
            "segments": [segment.as_dict() for segment in self.segments],
        }


Section = Union[DirectSection, RegionRecording]


@dataclass
class Recording:
    """A whole program execution as consumed by the scheduler."""

    cost: CostModel
    window: int = 1
    engine: str = "speculative"
    program: str = ""
    sections: List[Section] = field(default_factory=list)

    def regions(self) -> List[RegionRecording]:
        return [s for s in self.sections if isinstance(s, RegionRecording)]

    def direct_cycles(self) -> int:
        return sum(s.cycles for s in self.sections if isinstance(s, DirectSection))

    def as_dict(self) -> Dict:
        """The whole recording under one shared, versioned schema.

        Traces, bench artifacts and the Chrome-trace exporter all
        consume this shape -- nobody hand-rolls recording dicts.
        """
        return {
            "schema": "repro.timing.recording/v1",
            "program": self.program,
            "engine": self.engine,
            "window": self.window,
            "cost": self.cost.as_dict(),
            "sections": [section.as_dict() for section in self.sections],
        }

    def summary(self) -> Dict[str, int]:
        """Scalar totals of the recording (metrics / bench rows)."""
        segments = attempts = squashed = discarded = committed = busy = 0
        for region in self.regions():
            segments += len(region.segments)
            for segment in region.segments:
                attempts += len(segment.attempts)
                if segment.outcome is OUTCOME_COMMITTED:
                    committed += 1
                for attempt in segment.attempts:
                    busy += attempt.busy_cycles
                    if attempt.outcome is OUTCOME_SQUASHED:
                        squashed += 1
                    elif attempt.outcome is OUTCOME_DISCARDED:
                        discarded += 1
        return {
            "regions": len(self.regions()),
            "segments": segments,
            "attempts": attempts,
            "squashed_attempts": squashed,
            "discarded_attempts": discarded,
            "committed_segments": committed,
            "busy_cycles": busy,
            "direct_cycles": self.direct_cycles(),
        }


class TimingRecorder:
    """Folds engine timing events into a :class:`Recording`.

    All hooks are cheap (dictionary lookup + list append); the engines
    guard every call with ``if recorder is not None`` so an unattached
    engine pays nothing.
    """

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost or CostModel()
        self._recording = Recording(cost=self.cost)
        self._active: Dict[int, SegmentRecord] = {}
        self._region: Optional[RegionRecording] = None
        self._direct: Optional[DirectSection] = None

    # ------------------------------------------------------------------
    # engine-facing hooks
    # ------------------------------------------------------------------
    def run_begin(self, program: str, engine: str, window: int) -> None:
        self._recording.program = program
        self._recording.engine = engine
        self._recording.window = window

    def direct_op(self, kind: str, cycles: int) -> None:
        """One non-speculative operation (init / finale)."""
        if self._direct is None:
            self._direct = DirectSection()
            self._recording.sections.append(self._direct)
        self._direct.cycles += self.cost.op_cost(kind, cycles)

    def region_begin(self, name: str, kind: str) -> None:
        self._direct = None
        self._region = RegionRecording(name=name, kind=kind)
        self._recording.sections.append(self._region)
        self._active.clear()

    def region_end(self) -> None:
        self._region = None
        self._direct = None
        self._active.clear()

    def segment_started(self, key: Tuple, age: int) -> None:
        record = SegmentRecord(key=key, age=age, attempts=[AttemptRecord()])
        self._active[age] = record
        if self._region is not None:
            self._region.segments.append(record)

    def op(self, age: int, kind: str, cycles: int, route: Optional[str]) -> None:
        """One operation of an in-flight segment, priced by the cost model."""
        record = self._active.get(age)
        if record is None:  # pragma: no cover - defensive
            return
        record.attempts[-1].add_run(self.cost.op_cost(kind, cycles, route))

    def batched(self, age: int, cycles: int) -> None:
        """One whole batched attempt, pre-priced by ``CostModel.batch_cost``."""
        record = self._active.get(age)
        if record is None:  # pragma: no cover - defensive
            return
        record.attempts[-1].add_run(cycles)

    def stalled(self, age: int) -> None:
        record = self._active.get(age)
        if record is not None:
            record.attempts[-1].phases.append((PHASE_STALL,))

    def drained(self, age: int, entries: int) -> None:
        record = self._active.get(age)
        if record is not None:
            record.attempts[-1].phases.append((PHASE_DRAIN, entries))

    def squashed(self, age: int, by_age: Optional[int]) -> None:
        record = self._active.get(age)
        if record is None:  # pragma: no cover - defensive
            return
        attempt = record.attempts[-1]
        attempt.outcome = OUTCOME_SQUASHED
        attempt.squashed_by = by_age
        writer = self._active.get(by_age) if by_age is not None else None
        if writer is not None:
            # Snapshot the violating write's position in the writer's
            # own timeline (the write itself is priced just after the
            # violation check, so this is a tight lower bound).
            attempt.squashed_by_attempt = len(writer.attempts) - 1
            attempt.squashed_at_elapsed = writer.attempts[-1].busy_cycles
        record.attempts.append(AttemptRecord())

    def discarded(self, age: int) -> None:
        record = self._active.pop(age, None)
        if record is not None:
            record.attempts[-1].outcome = OUTCOME_DISCARDED

    def committed(self, age: int, entries: int) -> None:
        record = self._active.pop(age, None)
        if record is not None:
            attempt = record.attempts[-1]
            attempt.outcome = OUTCOME_COMMITTED
            attempt.commit_entries = entries

    # ------------------------------------------------------------------
    def recording(self) -> Recording:
        """The folded recording (valid once the engine run returned)."""
        return self._recording
