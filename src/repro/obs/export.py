"""Chrome-trace-event (Perfetto-compatible) JSON export.

Two renderers share one :class:`ChromeTraceBuilder`:

* :meth:`ChromeTraceBuilder.add_spans` turns the tracer's wall-clock
  span tree into nested slices (one Chrome *thread* per real thread)
  plus flow arrows connecting parents to children that ran on another
  thread, and the tracer's instant events into instant markers;

* :meth:`ChromeTraceBuilder.add_schedule` turns a
  :class:`~repro.timing.makespan.MakespanResult` into per-processor
  timelines in the *simulated cycle* domain (1 cycle = 1 us): every
  segment occurrence is a slice on its processor's lane, each recorded
  execution attempt a nested slice colored by outcome (committed /
  squashed / discarded), stall windows nested grey slices, and
  dispatch / squash / commit instant events -- which makes the paper's
  storage-pressure collapse (HOSE serializing at tight capacity while
  CASE keeps all lanes busy) literally visible in the Perfetto UI.

The module is deliberately a *leaf*: every input is duck-typed, so the
tracer, timing and runtime layers can be imported in any order.  Open
exported files at https://ui.perfetto.dev (or chrome://tracing).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Chrome trace colors by attempt outcome (catapult reserved names).
_OUTCOME_COLORS = {
    "committed": "good",
    "squashed": "terrible",
    "discarded": "bad",
    "active": "grey",
}

#: Event phases the validator accepts.
_KNOWN_PHASES = frozenset("BEXiIsftMCbne")


class ChromeTraceBuilder:
    """Accumulates trace events; one process per logical event source."""

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._flow_id = 0

    # ------------------------------------------------------------------
    # process / thread naming
    # ------------------------------------------------------------------
    def _process(self, label: str, sort_index: Optional[int] = None) -> int:
        pid = self._pids.get(label)
        if pid is None:
            pid = self._pids[label] = len(self._pids) + 1
            self._events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
            if sort_index is not None:
                self._events.append(
                    {
                        "ph": "M",
                        "name": "process_sort_index",
                        "pid": pid,
                        "tid": 0,
                        "args": {"sort_index": sort_index},
                    }
                )
        return pid

    def _thread(self, pid: int, label: str) -> int:
        key = (pid, label)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = (
                len([k for k in self._tids if k[0] == pid]) + 1
            )
            self._events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return tid

    # ------------------------------------------------------------------
    # tracer spans -> slices + flow arrows
    # ------------------------------------------------------------------
    def add_spans(
        self,
        spans: Sequence[Any],
        events: Sequence[Any] = (),
        process: str = "tracer",
    ) -> None:
        """Render tracer spans/events (wall clock, ns -> us)."""
        if not spans and not events:
            return
        pid = self._process(process, sort_index=0)
        base = min(
            [s.start_ns for s in spans] + [e.timestamp_ns for e in events]
        )
        by_id = {s.span_id: s for s in spans}
        thread_tid: Dict[int, int] = {}

        def tid_for(thread_id: int, thread_name: str) -> int:
            tid = thread_tid.get(thread_id)
            if tid is None:
                tid = thread_tid[thread_id] = self._thread(
                    pid, f"{thread_name} ({thread_id})"
                )
            return tid

        for span in sorted(spans, key=lambda s: s.start_ns):
            tid = tid_for(span.thread_id, span.thread_name)
            self._events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.category,
                    "pid": pid,
                    "tid": tid,
                    "ts": (span.start_ns - base) / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "args": dict(span.attributes),
                }
            )
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None and parent.thread_id != span.thread_id:
                # Cross-thread parent/child edge: draw a flow arrow.
                self._flow_id += 1
                common = {
                    "name": "span-tree",
                    "cat": span.category,
                    "id": self._flow_id,
                    "pid": pid,
                }
                self._events.append(
                    {
                        **common,
                        "ph": "s",
                        "tid": tid_for(parent.thread_id, parent.thread_name),
                        "ts": (span.start_ns - base) / 1000.0,
                    }
                )
                self._events.append(
                    {
                        **common,
                        "ph": "f",
                        "bp": "e",
                        "tid": tid,
                        "ts": (span.start_ns - base) / 1000.0,
                    }
                )
        for event in events:
            span = by_id.get(event.parent_id) if event.parent_id else None
            thread_name = span.thread_name if span is not None else "events"
            self._events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.name,
                    "cat": event.category,
                    "pid": pid,
                    "tid": tid_for(event.thread_id, thread_name),
                    "ts": (event.timestamp_ns - base) / 1000.0,
                    "args": dict(event.attributes),
                }
            )

    # ------------------------------------------------------------------
    # timing schedule -> per-processor lanes (simulated cycles)
    # ------------------------------------------------------------------
    def add_schedule(self, makespan: Any, label: Optional[str] = None) -> None:
        """Render one ``MakespanResult`` as per-processor timelines.

        ``label`` names the Chrome *process* grouping the lanes; it
        defaults to ``"<engine> <program> P=<processors>"``.
        """
        if label is None:
            label = (
                f"{makespan.engine} {makespan.program} "
                f"P={makespan.processors} w={makespan.window}"
            )
        pid = self._process(label)
        lane_tids = {
            p: self._thread(pid, f"P{p}") for p in range(makespan.processors)
        }
        for schedule in makespan.regions:
            for seg in schedule.segments:
                tid = lane_tids[seg.processor]
                name = _segment_name(seg.key)
                self._events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "name": "dispatch",
                        "cat": "schedule",
                        "pid": pid,
                        "tid": tid,
                        "ts": float(seg.dispatch_time),
                        "args": {"age": seg.age, "segment": name},
                    }
                )
                # The whole occurrence (all attempts + commit wait).
                self._events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": f"segment.{schedule.name}",
                        "pid": pid,
                        "tid": tid,
                        "ts": float(seg.start_time),
                        "dur": float(max(0, seg.commit_time - seg.start_time)),
                        "args": {
                            "age": seg.age,
                            "region": schedule.name,
                            "outcome": seg.outcome,
                            "attempts": seg.attempts,
                            "busy_cycles": seg.busy_cycles,
                            "wasted_cycles": seg.wasted_cycles,
                            "stall_cycles": seg.stall_cycles,
                        },
                    }
                )
                for index, (begin, end, outcome) in enumerate(
                    seg.attempt_windows
                ):
                    self._events.append(
                        {
                            "ph": "X",
                            "name": f"attempt {index + 1} ({outcome})",
                            "cat": "attempt",
                            "cname": _OUTCOME_COLORS.get(outcome, "grey"),
                            "pid": pid,
                            "tid": tid,
                            "ts": float(begin),
                            "dur": float(max(0, end - begin)),
                            "args": {"age": seg.age, "outcome": outcome},
                        }
                    )
                    if outcome == "squashed":
                        self._events.append(
                            {
                                "ph": "i",
                                "s": "t",
                                "name": "squash",
                                "cat": "schedule",
                                "cname": "terrible",
                                "pid": pid,
                                "tid": tid,
                                "ts": float(end),
                                "args": {"age": seg.age},
                            }
                        )
                for begin, end, reason in seg.stall_windows:
                    if end <= begin:
                        continue
                    self._events.append(
                        {
                            "ph": "X",
                            "name": f"stall ({reason})",
                            "cat": "stall",
                            "cname": "grey",
                            "pid": pid,
                            "tid": tid,
                            "ts": float(begin),
                            "dur": float(end - begin),
                            "args": {"age": seg.age, "reason": reason},
                        }
                    )
                if seg.outcome == "committed":
                    self._events.append(
                        {
                            "ph": "i",
                            "s": "t",
                            "name": "commit",
                            "cat": "schedule",
                            "cname": "good",
                            "pid": pid,
                            "tid": tid,
                            "ts": float(seg.commit_time),
                            "args": {"age": seg.age, "segment": name},
                        }
                    )

    # ------------------------------------------------------------------
    def build(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The complete Chrome trace object (JSON-ready)."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": dict(meta) if meta else {},
        }

    def write(self, path: str, meta: Optional[Dict[str, Any]] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.build(meta), handle, indent=1)
            handle.write("\n")


def _segment_name(key: Any) -> str:
    """Compact display name of one segment-occurrence key."""
    try:
        parts = [str(part) for part in key]
    except TypeError:
        return str(key)
    if not parts:
        return "segment"
    return parts[0] + "[" + ", ".join(parts[1:]) + "]" if len(parts) > 1 else parts[0]


# ----------------------------------------------------------------------
# Validation (python -m repro.obs validate).
# ----------------------------------------------------------------------
def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check one Chrome trace object; returns error strings."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"trace must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["trace must contain a traceEvents array"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where}: missing integer {field!r}")
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if phase == "M":
            args = event.get("args")
            if not isinstance(args, dict):
                errors.append(f"{where}: metadata event without args")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: missing non-negative ts")
        if phase == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                errors.append(f"{where}: complete event without dur >= 0")
        if phase in "sf" and "id" not in event:
            errors.append(f"{where}: flow event without id")
    return errors


def summarize_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Human-oriented totals of one trace file (for the CLI summary)."""
    events = payload.get("traceEvents", [])
    processes: Dict[int, str] = {}
    lanes = 0
    slices = 0
    instants = 0
    end = 0.0
    names: Dict[str, int] = {}
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "process_name":
                processes[event["pid"]] = event["args"].get("name", "?")
            elif event.get("name") == "thread_name":
                lanes += 1
            continue
        if phase == "X":
            slices += 1
            end = max(end, float(event.get("ts", 0)) + float(event.get("dur", 0)))
        elif phase == "i":
            instants += 1
            end = max(end, float(event.get("ts", 0)))
        name = event.get("name")
        if isinstance(name, str):
            names[name] = names.get(name, 0) + 1
    return {
        "events": len(events),
        "processes": sorted(processes.values()),
        "lanes": lanes,
        "slices": slices,
        "instant_events": instants,
        "span_end_us": end,
        "top_names": sorted(names.items(), key=lambda kv: -kv[1])[:12],
    }
