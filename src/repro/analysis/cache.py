"""Cross-pass analysis cache.

The labeling pipeline (Algorithm 2) needs the same facts several times:
the read-only variable set feeds the access summaries, the dependence
analyser *and* the RFW analysis; reports re-run the labeling per region;
and the speculative engines re-ask for dependence graphs when choosing
an execution mode.  Without a cache each pass recomputes everything from
the region text.

:class:`AnalysisCache` memoizes per-region artifacts.  Entries are keyed
by the region *object* (regions hash by identity and are immutable after
construction) together with a caller-supplied discriminator key, so the
same region analysed under different knobs (granularity, direction,
private sets...) gets distinct entries.  Holding the region object as
the key keeps it alive while its entries are cached, which makes the
cache immune to the id()-reuse hazard of address-keyed caches.

Typical use::

    cache = AnalysisCache()
    result1 = label_region(region, cache=cache)   # cold: runs analyses
    result2 = label_region(region, cache=cache)   # warm: dictionary hits

**Aliasing contract:** cached values are returned *shared*, not
copied — every warm hit hands back the same object (dependence graph,
summary, RFW result).  Treat them as immutable; a caller that needs a
private mutable copy must copy explicitly (e.g. rebuild a
``DependenceGraph`` from its ``dependences`` list), or use
:meth:`AnalysisCache.invalidate` to force recomputation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable

from repro.ir.region import Region
from repro.obs.metrics import metrics_registry

#: The process-wide registry is a stable singleton (``reset`` mutates it
#: in place), so one module-level binding keeps the per-lookup cost at a
#: single attribute check while disabled.
_METRICS = metrics_registry()


class AnalysisCache:
    """Memoizes per-region analysis results across passes."""

    def __init__(self) -> None:
        self._entries: Dict[Region, Dict[Hashable, Any]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get_or_compute(
        self, region: Region, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``(region, key)``; compute on miss.

        With metrics collection armed (``repro.obs enable``) every
        lookup also bumps the process-wide ``analysis.cache.hits`` /
        ``analysis.cache.misses`` counters; disabled, the cost is one
        attribute check.
        """
        per_region = self._entries.setdefault(region, {})
        if key in per_region:
            self.hits += 1
            if _METRICS.collecting:
                _METRICS.counter("analysis.cache.hits").inc()
            return per_region[key]
        self.misses += 1
        if _METRICS.collecting:
            _METRICS.counter("analysis.cache.misses").inc()
        value = compute()
        per_region[key] = value
        return value

    def peek(self, region: Region, key: Hashable) -> Any:
        """Cached value for ``(region, key)`` or ``None`` — never inserts."""
        per_region = self._entries.get(region)
        if per_region is None:
            return None
        return per_region.get(key)

    def invalidate(self, region: Region) -> None:
        """Drop all entries of one region."""
        self._entries.pop(region, None)

    def clear(self) -> None:
        """Drop everything (counters kept)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus entry counts (diagnostics)."""
        return {
            "regions": len(self._entries),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }
