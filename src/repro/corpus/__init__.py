"""Seeded program corpus for fuzz-scale verification.

The first slice of the ROADMAP's corpus direction: a deterministic
generator of small adversarial DSL programs
(:mod:`repro.corpus.generator`) used by ``python -m repro.check
--fuzz`` to drive the differential label-soundness checker over
hundreds of programs per CI run.
"""

from repro.corpus.generator import (
    corpus,
    generate_program,
    generate_source,
)

__all__ = ["corpus", "generate_program", "generate_source"]
