"""Runtime invariant auditor for the speculative store.

The speculative substrate keeps several representation invariants that
no correct engine/store interaction can break (Definition 1's age
order, the capacity bound, the accounting the bench metrics are built
on).  The auditor re-derives them from scratch after every scheduling
round; a failure means the substrate is corrupted -- by an engine bug
or an injected fault -- and raises
:class:`~repro.runtime.errors.InvariantViolation`, which the engine
answers with graceful degradation to sequential execution.

Audited invariants:

* **age order** -- in-flight buffers are strictly increasing in age
  (sequential program order), with no duplicates;
* **no committed-entry leakage** -- no in-flight buffer is at or below
  the engine's commit watermark (a committed segment's storage must
  have been deregistered, and a region must end with an empty store);
* **occupancy accounting** -- the store's incrementally-maintained
  occupancy equals the sum of per-buffer entries, and the recorded
  high-water marks are not below the current state;
* **entry consistency** -- every buffered value and every exposed read
  occupies a tracked entry, and no buffer exceeds the capacity bound;
* **forwarding direction** -- a read can only be served by an *older*
  in-flight buffer: for the oldest buffer, any address held exclusively
  by younger buffers must forward as a miss.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.errors import InvariantViolation
from repro.runtime.specstore import SpeculativeStore

#: Cap on the per-round forwarding-direction probes (the check is a
#: contract sample, not an exhaustive sweep).
MAX_FORWARD_PROBES = 4


class InvariantAuditor:
    """Validates :class:`SpeculativeStore` consistency between rounds."""

    def __init__(self):
        #: Rounds audited (diagnostics; lets tests assert the auditor
        #: actually ran).
        self.audits = 0

    # ------------------------------------------------------------------
    def audit(
        self,
        store: SpeculativeStore,
        committed_age: int = 0,
        region: Optional[str] = None,
    ) -> None:
        """Check every invariant; raise :class:`InvariantViolation`."""
        self.audits += 1
        where = f" in region {region!r}" if region else ""
        buffers = store.buffers()

        previous_age = None
        occupancy = 0
        for buffer in buffers:
            if previous_age is not None and buffer.age <= previous_age:
                raise InvariantViolation(
                    f"in-flight buffers out of age order{where}: "
                    f"{buffer.age} after {previous_age}"
                )
            previous_age = buffer.age
            if buffer.age <= committed_age:
                raise InvariantViolation(
                    f"committed-entry leakage{where}: buffer "
                    f"{buffer.key!r} (age {buffer.age}) is still in "
                    f"flight at commit watermark {committed_age}"
                )
            missing = (
                set(buffer.values) | buffer.read_set
            ) - buffer.tracked
            if missing:
                raise InvariantViolation(
                    f"untracked entries{where} in buffer {buffer.key!r}: "
                    f"{sorted(missing)[:3]}"
                )
            if store.capacity is not None and buffer.entries > store.capacity:
                raise InvariantViolation(
                    f"buffer {buffer.key!r} holds {buffer.entries} entries "
                    f"over capacity {store.capacity}{where}"
                )
            occupancy += buffer.entries

        if occupancy != store.occupancy():
            raise InvariantViolation(
                f"occupancy accounting drift{where}: store reports "
                f"{store.occupancy()}, buffers hold {occupancy}"
            )
        if store.peak_entries < occupancy:
            raise InvariantViolation(
                f"peak_entries ({store.peak_entries}) below current "
                f"occupancy ({occupancy}){where}"
            )
        if buffers:
            largest = max(buffer.entries for buffer in buffers)
            if store.peak_segment_entries < largest:
                raise InvariantViolation(
                    f"peak_segment_entries ({store.peak_segment_entries}) "
                    f"below a live buffer's {largest}{where}"
                )

        self._audit_forwarding(store, where)

    # ------------------------------------------------------------------
    def audit_region_end(
        self, store: SpeculativeStore, region: Optional[str] = None
    ) -> None:
        """A finished region must leave no in-flight speculative state."""
        self.audits += 1
        where = f" in region {region!r}" if region else ""
        if len(store):
            leaked = [buffer.key for buffer in store.buffers()]
            raise InvariantViolation(
                f"region ended with {len(store)} in-flight buffers"
                f"{where}: {leaked[:3]}"
            )
        if store.occupancy() != 0:
            raise InvariantViolation(
                f"region ended with nonzero occupancy "
                f"({store.occupancy()}){where}"
            )

    # ------------------------------------------------------------------
    def _audit_forwarding(self, store: SpeculativeStore, where: str) -> None:
        """Sample the forwarding contract: older buffers only."""
        buffers = store.buffers()
        if len(buffers) < 2:
            return
        oldest = buffers[0]
        probes = 0
        held_by_oldest = set(oldest.values)
        for younger in buffers[1:]:
            for address in younger.values:
                if address in held_by_oldest:
                    continue
                if store.forward(oldest, address) is not None:
                    raise InvariantViolation(
                        f"forwarding direction violated{where}: the oldest "
                        f"buffer was served {address!r} held only by "
                        f"younger segments"
                    )
                probes += 1
                if probes >= MAX_FORWARD_PROBES:
                    return
