"""Chaos scenario: fault kinds x rates x workloads x engines.

The robustness counterpart of the ``engines`` scenario: every workload
family (plus a dedicated branchy explicit-region program, the only
shape with control-misprediction opportunities) runs under every fault
kind of :mod:`repro.resilience.faults` at each swept rate, on both
HOSE and CASE.  The one thing the scenario asserts is the resilience
contract: *whatever is injected, the final memory state is
bit-identical to the sequential interpreter* -- either because the
engine recovered in place (squash-restart, poison scrub, overflow
drain) or because it degraded gracefully and re-executed sequentially.

Per run the report records what was injected (counts and
opportunities), how the engine coped (fault restarts, rollbacks,
degradation and its reason) and what recovery cost (cycle overhead
against the same engine's fault-free run).  A fault-free,
auditor-attached baseline run per program doubles as an invariant
check -- its audit count is reported so a silently detached auditor
shows up in the results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.workloads import FAMILIES, generate
from repro.ir.dsl import parse_program
from repro.ir.program import Program
from repro.resilience.auditor import InvariantAuditor
from repro.resilience.faults import FAULT_KINDS, FaultPlan
from repro.resilience.harness import ENGINES, run_resilient
from repro.runtime.interpreter import run_program

#: Injection rates swept per fault kind (probability per opportunity).
CHAOS_RATES = (0.05, 0.5)
CHAOS_SMOKE_RATES = (0.1,)
#: Workload scale (kept small: persistent faults intentionally drive
#: the engine into livelock-and-degrade, which costs restarts).
CHAOS_SIZE = 12
CHAOS_SMOKE_SIZE = 8
CHAOS_STATEMENTS = 2
CHAOS_WINDOW = 4
#: Small capacity so capacity_shrink and overflow paths are exercised.
CHAOS_CAPACITY = 16
#: Tight recovery bounds: a persistent fault should degrade quickly,
#: not grind through the production-sized default budgets.
CHAOS_MAX_RESTARTS = 50
CHAOS_WATCHDOG_ROUNDS = 5_000
CHAOS_SEED = 1
CHAOS_ENGINES = ("hose", "case")

#: Diamond-with-loop-free-tail control flow: two branch points give the
#: ``mispredict`` fault real alternatives to steer into.
_EXPLICIT_CHAOS_SRC = """
program chaosflow
  real a = 0.6, b = 2.0, c, d, e, f, g
  region R explicit
    segment R0
      c = a + b
      branch (c > 2.5)
    end segment
    segment R1
      d = c * 2.0
    end segment
    segment R2
      d = c - 1.0
    end segment
    segment R3
      e = d + a
      branch (e > 3.0)
    end segment
    segment R4
      f = e * 0.5
    end segment
    segment R5
      f = e + 1.0
    end segment
    segment R6
      g = f + d
    end segment
    edges R0 -> R1, R2
    edges R1 -> R3
    edges R2 -> R3
    edges R3 -> R4, R5
    edges R4 -> R6
    edges R5 -> R6
    liveout d, e, f, g
  end region
end program
"""


def chaos_programs(
    size: int = CHAOS_SIZE,
    statements: int = CHAOS_STATEMENTS,
    families: Sequence[str] = FAMILIES,
) -> Dict[str, Program]:
    """The swept programs: every loop family plus the explicit one."""
    programs = {
        family: generate(family, size, statements).program
        for family in families
    }
    programs["explicit"] = parse_program(_EXPLICIT_CHAOS_SRC)
    return programs


def _run_row(
    program: Program,
    sequential_values: Dict,
    engine: str,
    plan: Optional[FaultPlan],
    seed: int,
    baseline_cycles: Optional[int],
    batch: bool = True,
) -> Dict:
    result = run_resilient(
        program,
        engine=engine,
        plan=plan,
        seed=seed,
        window=CHAOS_WINDOW,
        capacity=CHAOS_CAPACITY,
        max_restarts=CHAOS_MAX_RESTARTS,
        watchdog_rounds=CHAOS_WATCHDOG_ROUNDS,
        batch=batch,
    )
    recovered = not sequential_values.differences(result.memory, tolerance=0.0)
    row: Dict = {
        "recovered": recovered,
        "degraded": result.degraded,
        "injected": dict(result.fault_counts),
        "total_injected": sum(result.fault_counts.values()),
        "fault_restarts": result.stats.fault_restarts,
        "rollbacks": result.stats.rollbacks,
        "cycles": result.stats.cycles,
    }
    if result.degradation is not None:
        row["degradation"] = {
            "error_type": result.degradation.error_type,
            "reason": result.degradation.reason,
            "region": result.degradation.region,
        }
    if baseline_cycles and not result.degraded:
        row["cycle_overhead"] = round(
            result.stats.cycles / baseline_cycles, 3
        )
    return row


def measure_chaos(
    size: int = CHAOS_SIZE,
    statements: int = CHAOS_STATEMENTS,
    families: Sequence[str] = FAMILIES,
    rates: Sequence[float] = CHAOS_RATES,
    engines: Sequence[str] = CHAOS_ENGINES,
    kinds: Sequence[str] = FAULT_KINDS,
    seed: int = CHAOS_SEED,
    batch: bool = True,
) -> Dict:
    """The whole sweep.  ``result["unrecovered"]`` lists every run whose
    final state diverged from sequential -- the CI gate (must be empty).
    """
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
    programs = chaos_programs(size, statements, families)
    report: Dict = {
        "window": CHAOS_WINDOW,
        "capacity": CHAOS_CAPACITY,
        "max_restarts": CHAOS_MAX_RESTARTS,
        "watchdog_rounds": CHAOS_WATCHDOG_ROUNDS,
        "rates": list(rates),
        "seed": seed,
        "batch": batch,
        "programs": {},
    }
    unrecovered: List[str] = []
    for name, program in programs.items():
        sequential = run_program(program, model_latency=False)
        entry: Dict = {"baseline": {}, "faults": {}}
        baseline_cycles: Dict[str, int] = {}
        for engine in engines:
            # Fault-free run with the auditor attached: every round's
            # invariants re-checked, and degradation would be a bug.
            auditor = InvariantAuditor()
            result = ENGINES[engine](
                program,
                window=CHAOS_WINDOW,
                capacity=CHAOS_CAPACITY,
                auditor=auditor,
                batch=batch,
            ).run()
            clean = (
                not result.degraded
                and not sequential.memory.differences(
                    result.memory, tolerance=0.0
                )
            )
            if not clean:
                unrecovered.append(
                    f"{name}/{engine}: fault-free baseline diverged "
                    f"or degraded"
                )
            baseline_cycles[engine] = result.stats.cycles
            entry["baseline"][engine] = {
                "recovered": clean,
                "cycles": result.stats.cycles,
                "audits": auditor.audits,
            }
        for kind in kinds:
            per_kind: Dict = {}
            for rate in rates:
                per_rate: Dict = {}
                for engine in engines:
                    row = _run_row(
                        program,
                        sequential.memory,
                        engine,
                        FaultPlan.single(kind, rate),
                        seed,
                        baseline_cycles.get(engine),
                        batch=batch,
                    )
                    if not row["recovered"]:
                        unrecovered.append(
                            f"{name}/{engine}: {kind}@{rate} final state "
                            f"diverged from sequential"
                        )
                    per_rate[engine] = row
                per_kind[str(rate)] = per_rate
            entry["faults"][kind] = per_kind
        report["programs"][name] = entry
    report["unrecovered"] = unrecovered
    return report
