"""Shared enumerations and small value types used throughout the IR.

The names follow the paper's vocabulary:

* an :class:`AccessType` distinguishes read from write references,
* a :class:`RefLabel` is the hardware-visible label the compiler attaches
  to a memory reference (Definition 4): ``SPECULATIVE`` references are
  tracked in speculative storage, ``IDEMPOTENT`` references bypass it,
* an :class:`IdempotencyCategory` is the reporting category of Section
  4.1 (fully-independent / read-only / private / shared-dependent),
* a :class:`DependenceKind` is the classical dependence kind (flow /
  anti / output) and a :class:`DependenceScope` records whether the
  dependence is intra-segment or crosses segments.
"""

from __future__ import annotations

import enum


class AccessType(enum.Enum):
    """Whether a memory reference reads or writes its location."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RefLabel(enum.Enum):
    """Compiler label communicated to the hardware (Definition 4).

    ``SPECULATIVE`` references behave exactly as in HOSE: values and
    access information live in the speculative storage.  ``IDEMPOTENT``
    references access non-speculative storage directly and leave no
    access information behind.
    """

    SPECULATIVE = "speculative"
    IDEMPOTENT = "idempotent"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IdempotencyCategory(enum.Enum):
    """Reporting category of an idempotent reference (Section 4.1)."""

    FULLY_INDEPENDENT = "fully-independent"
    READ_ONLY = "read-only"
    PRIVATE = "private"
    SHARED_DEPENDENT = "shared-dependent"
    #: Used for references that remain speculative (not idempotent).
    NOT_IDEMPOTENT = "speculative"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DependenceKind(enum.Enum):
    """Classical data dependence kinds between two references."""

    FLOW = "flow"      # write -> read  (true dependence)
    ANTI = "anti"      # read  -> write
    OUTPUT = "output"  # write -> write

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DependenceScope(enum.Enum):
    """Whether a dependence stays inside one segment or crosses segments."""

    INTRA_SEGMENT = "intra-segment"
    CROSS_SEGMENT = "cross-segment"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class VarKind(enum.Enum):
    """Kind of a program variable."""

    SCALAR = "scalar"
    ARRAY = "array"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RegionKind(enum.Enum):
    """How a region's segments are described."""

    #: The region is a counted loop; segments are its iterations.
    LOOP = "loop"
    #: The region is an explicit segment graph (Figure 2 / Figure 3 style).
    EXPLICIT = "explicit"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class NodeMark(enum.Enum):
    """Per-variable node marking used by Algorithm 1 (RFW analysis).

    A node (segment) is marked ``WRITE`` for variable *x* when *x* is
    defined on all paths through the segment without an exposed read,
    ``READ`` when the segment has an exposed read of *x*, and ``NULL``
    when the segment does not reference *x* at all.
    """

    WRITE = "Write"
    READ = "Read"
    NULL = "Null"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class NodeColor(enum.Enum):
    """Per-variable node colour used by Algorithm 1 (RFW analysis)."""

    WHITE = "White"
    BLACK = "Black"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
