"""Speedup scenario: HOSE/CASE parallel makespan vs sequential time.

The paper's evaluation is ultimately about *speedup*: how speculative
execution performs relative to sequential runs, not just how much
speculative storage it needs.  For every workload family this scenario

1. prices one sequential execution with the timing cost model
   (:func:`repro.timing.makespan.sequential_cycles`) -- the baseline;
2. runs HOSE and CASE once per (window, capacity) configuration with a
   :class:`~repro.timing.events.TimingRecorder` attached (each run
   checked bit-for-bit against the sequential interpreter);
3. schedules every recording onto each processor count in
   ``processors`` (the engine op stream does not depend on P, so one
   recording yields the whole processor sweep) and reports makespan,
   speedup-vs-sequential and the busy / wasted / stall / idle split.

The expected shape mirrors the storage scenario in the time domain:
``reduction`` is embarrassingly parallel, so HOSE scales until its
buffers overflow -- at tight capacities every segment stalls until it
is the oldest and the run serializes -- while CASE's labels route the
same references around speculative storage and keep scaling;
``stencil`` / ``sparse`` / ``guarded`` pay real violation rollbacks.
:func:`check_embarrassing_speedup` packages the headline invariant
(best HOSE makespan on 4 processors strictly below the sequential cycle
total on ``reduction``) for the CI smoke step.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.bench.workloads import FAMILIES, Workload, generate
from repro.runtime.engines import CASEEngine, HOSEEngine
from repro.timing.cost import CostModel
from repro.timing.events import TimingRecorder
from repro.timing.makespan import compute_makespan, sequential_baseline

#: Processor counts of the makespan sweep.
SPEEDUP_PROCESSORS: Tuple[int, ...] = (1, 2, 4, 8)
#: In-flight windows swept (crossed with capacities).
SPEEDUP_WINDOWS: Tuple[int, ...] = (4, 8)
#: Per-segment speculative capacities swept.  8 is deliberately tight:
#: it overflows HOSE on every family (read access info counts against
#: capacity) and shows the labels' effect on *time*, not just storage.
SPEEDUP_CAPACITIES: Tuple[Optional[int], ...] = (8, 64)
#: Workload shape (the engines interleave ops in pure Python, so the
#: scenario uses the engine-bench sizes, not the throughput sizes).
SPEEDUP_SIZE = 20
SPEEDUP_SMOKE_SIZE = 10
SPEEDUP_STATEMENTS = 3

#: Families with no cross-segment dependences: speculation must win.
EMBARRASSINGLY_PARALLEL: Tuple[str, ...] = ("reduction",)


def _config_key(window: int, capacity: Optional[int]) -> str:
    return f"w{window}_c{'inf' if capacity is None else capacity}"


def measure_speedup_family(
    workload: Workload,
    processors: Sequence[int] = SPEEDUP_PROCESSORS,
    windows: Sequence[int] = SPEEDUP_WINDOWS,
    capacities: Sequence[Optional[int]] = SPEEDUP_CAPACITIES,
    cost: Optional[CostModel] = None,
    observer: Optional[Callable[..., None]] = None,
    batch: bool = True,
) -> Dict:
    """Makespans and speedups of one workload, per configuration.

    ``observer`` (when given) is called once per engine run with the
    raw telemetry -- ``observer(workload=..., engine=..., window=...,
    capacity=..., recording=..., makespans={P: MakespanResult})`` -- so
    the bench CLI can export Perfetto timelines and metrics without
    this scenario knowing anything about the exporter.
    """
    cost = cost or CostModel()
    baseline, sequential = sequential_baseline(workload.program, cost)
    analysis_cache = AnalysisCache()
    entry: Dict = {
        "family": workload.family,
        "size": workload.size,
        "statements": workload.statements,
        "sequential_cycles": baseline,
        "configs": {},
    }
    for window in windows:
        for capacity in capacities:
            row: Dict[str, Dict] = {
                "window": window,
                "capacity": capacity,
            }
            for name, engine_cls in (("hose", HOSEEngine), ("case", CASEEngine)):
                recorder = TimingRecorder(cost)
                kwargs = {
                    "window": window,
                    "capacity": capacity,
                    "recorder": recorder,
                    "batch": batch,
                }
                if engine_cls is CASEEngine:
                    kwargs["cache"] = analysis_cache
                result = engine_cls(workload.program, **kwargs).run()
                matches = not sequential.memory.differences(
                    result.memory, tolerance=0.0
                )
                stats = result.stats
                recording = recorder.recording()
                side: Dict = {
                    "matches_sequential": matches,
                    "violations": stats.violations,
                    "rollbacks": stats.rollbacks,
                    "overflow_stalls": stats.overflow_stalls,
                    "stall_rounds": stats.stall_rounds,
                    "spec_peak_entries": result.spec_peak_entries,
                    # The recording's own schema -- the same totals the
                    # metrics adapter and trace exporter consume.
                    "recording": recording.summary(),
                    "processors": {},
                }
                makespans = {}
                for p in processors:
                    makespan = compute_makespan(
                        recording, p, sequential_cycles=baseline
                    )
                    makespans[p] = makespan
                    side["processors"][str(p)] = makespan.as_dict()
                row[name] = side
                if observer is not None:
                    observer(
                        workload=workload,
                        engine=name,
                        window=window,
                        capacity=capacity,
                        recording=recording,
                        stats=stats,
                        makespans=makespans,
                    )
            entry["configs"][_config_key(window, capacity)] = row
    # Headline numbers: the best speedup each engine reaches at P=max.
    top = str(max(processors))
    for name in ("hose", "case"):
        entry[f"best_{name}_speedup"] = round(
            max(
                row[name]["processors"][top]["speedup"]
                for row in entry["configs"].values()
            ),
            3,
        )
    return entry


def measure_speedups(
    size: int = SPEEDUP_SIZE,
    statements: int = SPEEDUP_STATEMENTS,
    families: Sequence[str] = FAMILIES,
    processors: Sequence[int] = SPEEDUP_PROCESSORS,
    windows: Sequence[int] = SPEEDUP_WINDOWS,
    capacities: Sequence[Optional[int]] = SPEEDUP_CAPACITIES,
    cost: Optional[CostModel] = None,
    observer: Optional[Callable[..., None]] = None,
    batch: bool = True,
) -> Dict[str, Dict]:
    """The whole scenario: every family, every configuration."""
    return {
        family: measure_speedup_family(
            generate(family, size, statements),
            processors=processors,
            windows=windows,
            capacities=capacities,
            cost=cost,
            observer=observer,
            batch=batch,
        )
        for family in families
    }


def check_embarrassing_speedup(
    section: Dict, processors: int = 4
) -> List[str]:
    """CI invariant: HOSE must beat sequential on parallel families.

    On every measured embarrassingly-parallel family (no cross-segment
    dependences; ``reduction`` in the default suite), the *best* HOSE
    makespan on ``processors`` processors must be strictly below the
    sequential cycle total.  Returns failure descriptions (empty = OK).
    """
    failures: List[str] = []
    key = str(processors)
    measured = [
        family
        for family in EMBARRASSINGLY_PARALLEL
        if family in section.get("families", {})
    ]
    if not measured:
        return [
            "no embarrassingly-parallel family was measured "
            f"(need one of {list(EMBARRASSINGLY_PARALLEL)}); "
            "the speedup check cannot pass vacuously"
        ]
    for family in measured:
        entry = section["families"][family]
        baseline = entry["sequential_cycles"]
        best = min(
            row["hose"]["processors"][key]["makespan"]
            for row in entry["configs"].values()
        )
        if best >= baseline:
            failures.append(
                f"{family}: best HOSE makespan on P={processors} is {best}, "
                f"not below the sequential total {baseline}"
            )
    return failures
