"""Region live-out analysis.

Definition 5 needs to know whether a variable is *live* at the end of
the enclosing region: an incorrect value left in non-speculative storage
only matters if somebody may still read it.  A region may declare its
live-out set explicitly (``liveout`` in the DSL); otherwise it is
computed conservatively from the code that follows the region in the
program: a variable is live-out when some later read of it is not
preceded by a *certainly executed* unconditional scalar write (arrays
are never considered killed, and any variable referenced in loop-bound
expressions of later regions counts as read).

A later write only kills liveness when it is guaranteed to execute
before any subsequent read: writes under a conditional, in a loop whose
trip count is not provably positive, or in an explicit-region segment
that branching may skip, must not hide a read behind them.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.ir.program import Program
from repro.ir.reference import MemoryReference
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion, Region
from repro.ir.types import AccessType


def _certain_segments(region: ExplicitRegion) -> Set[str]:
    """Segments on *every* entry-to-exit path of ``region``.

    A segment is certainly executed iff removing it disconnects the
    entry from the region exit.
    """
    edges = region.segment_edges()

    def reaches_exit_avoiding(banned: str) -> bool:
        if region.entry == banned:
            return False
        seen = {region.entry}
        stack = [region.entry]
        while stack:
            node = stack.pop()
            for succ in edges.get(node, []):
                if succ == EXIT_NODE:
                    return True
                if succ != banned and succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    return {
        name
        for name in region.segment_names()
        if not reaches_exit_avoiding(name)
    }


def _following_references(
    program: Program, region: Region
) -> Iterator[Tuple[MemoryReference, bool]]:
    """References executing after ``region`` in program order.

    Yields ``(reference, certain)`` where ``certain`` means the
    reference is guaranteed to execute whenever control passes the
    region; only certain references may kill downstream liveness.
    """
    for later in program.regions_after(region.name):
        if isinstance(later, LoopRegion):
            trips = later.constant_trip_count()
            certain = trips is not None and trips >= 1
            for ref in sorted(later.references, key=lambda r: r.order):
                yield ref, certain
        else:
            assert isinstance(later, ExplicitRegion)
            certain_segments = _certain_segments(later)
            # Segment listing order is sequential program order; the
            # per-segment ``order`` only ranks references *within* one
            # segment, so sorting the whole region by it would
            # interleave segments.
            for segment in later.segment_names():
                certain = segment in certain_segments
                refs = sorted(
                    later.segment_references(segment), key=lambda r: r.order
                )
                for ref in refs:
                    yield ref, certain
    for ref in sorted(program.finale_references, key=lambda r: r.order):
        yield ref, True


def _bound_reads_of_following_regions(program: Program, region: Region) -> Set[str]:
    """Variables read by the loop headers of later regions."""
    out: Set[str] = set()
    for later in program.regions_after(region.name):
        if isinstance(later, LoopRegion):
            out |= later.bound_variables
    return out


def region_live_out(program: Program, region: Region) -> Set[str]:
    """The set of variables live at the exit of ``region``.

    An explicit ``live_out`` declaration on the region wins; otherwise
    the conservative forward scan described in the module docstring is
    used.
    """
    if region.live_out is not None:
        return set(region.live_out)

    live: Set[str] = set(_bound_reads_of_following_regions(program, region))
    killed: Set[str] = set()
    for ref, certain in _following_references(program, region):
        if ref.access is AccessType.READ:
            if ref.variable not in killed:
                live.add(ref.variable)
        else:
            # Only a certainly executed unconditional scalar write kills
            # downstream liveness; array writes rarely cover the whole
            # array, so they never kill.
            if certain and not ref.subscripts and not ref.conditional:
                killed.add(ref.variable)
    return live


def live_out_map(program: Program) -> Dict[str, Set[str]]:
    """Live-out sets of every region, keyed by region name."""
    return {region.name: region_live_out(program, region) for region in program.regions}
