"""Observability artifact tool: ``python -m repro.obs``.

Two subcommands over the artifacts the bench/check CLIs export:

``validate PATH [PATH ...]``
    Schema-check each file -- Chrome trace (``traceEvents``) or metrics
    snapshot (``repro.obs.metrics/v1``), detected by content.  Exit 1
    on any error; this is the CI gate behind the observability smoke.

``summary PATH [PATH ...]``
    Human-oriented totals: event / lane / slice counts and span extent
    for traces, instrument counts for metrics snapshots.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.obs.export import summarize_trace, validate_chrome_trace
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import SCHEMA as METRICS_SCHEMA
from repro.obs.metrics import validate_metrics

LOG = get_logger("obs")


def _load(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _kind_of(payload: Any) -> str:
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return "trace"
        if payload.get("schema") == METRICS_SCHEMA:
            return "metrics"
    return "unknown"


def _validate(paths: List[str]) -> int:
    failures = 0
    for path in paths:
        try:
            payload = _load(path)
        except (OSError, ValueError) as exc:
            LOG.error(f"{path}: unreadable: {exc}")
            failures += 1
            continue
        kind = _kind_of(payload)
        if kind == "trace":
            errors = validate_chrome_trace(payload)
        elif kind == "metrics":
            errors = validate_metrics(payload)
        else:
            errors = [
                "unrecognized payload: neither a Chrome trace "
                f"(traceEvents) nor a {METRICS_SCHEMA!r} snapshot"
            ]
        if errors:
            failures += 1
            for error in errors[:20]:
                LOG.error(f"{path}: {error}")
            if len(errors) > 20:
                LOG.error(f"{path}: ... and {len(errors) - 20} more")
        else:
            LOG.info(f"{path}: OK ({kind})")
    return 1 if failures else 0


def _summary(paths: List[str]) -> int:
    status = 0
    for path in paths:
        try:
            payload = _load(path)
        except (OSError, ValueError) as exc:
            LOG.error(f"{path}: unreadable: {exc}")
            status = 1
            continue
        kind = _kind_of(payload)
        if kind == "trace":
            info = summarize_trace(payload)
            LOG.info(
                f"{path}: {info['events']} events, "
                f"{len(info['processes'])} processes, {info['lanes']} lanes, "
                f"{info['slices']} slices, {info['instant_events']} instant "
                f"events, extent {info['span_end_us']:.1f} us"
            )
            for name in info["processes"]:
                LOG.info(f"  process: {name}")
            for name, count in info["top_names"]:
                LOG.info(f"  {count:>6} x {name}")
        elif kind == "metrics":
            LOG.info(
                f"{path}: metrics snapshot -- "
                f"{len(payload.get('counters', {}))} counters, "
                f"{len(payload.get('gauges', {}))} gauges, "
                f"{len(payload.get('histograms', {}))} histograms"
            )
            for name, value in sorted(payload.get("counters", {}).items()):
                LOG.info(f"  {name} = {value}")
        else:
            LOG.error(f"{path}: unrecognized payload")
            status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize / validate exported observability artifacts.",
    )
    parser.add_argument(
        "command", choices=("summary", "validate"), help="what to do"
    )
    parser.add_argument("paths", nargs="+", help="trace / metrics JSON files")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress info output"
    )
    parser.add_argument(
        "--log-json", action="store_true", help="JSON-lines log output"
    )
    args = parser.parse_args(argv)
    configure_logging(quiet=args.quiet, json_lines=args.log_json)
    if args.command == "validate":
        return _validate(args.paths)
    return _summary(args.paths)


if __name__ == "__main__":
    sys.exit(main())
