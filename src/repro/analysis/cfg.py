"""Segment control-flow graphs.

Algorithm 1 (the RFW analysis) and the control-dependence check both
operate on a graph whose nodes are the segments of one region plus a
distinguished exit node.  :class:`SegmentGraph` wraps the adjacency
information exposed by :meth:`repro.ir.region.Region.segment_edges`
and provides the reachability and ancestry queries the analyses need.

For loop regions the graph is the single iteration-template node with a
self edge (iteration ``i`` is followed by iteration ``i+1``) and an edge
to the exit; the age-ordering of segments is the iteration order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set

from repro.ir.region import EXIT_NODE, ExplicitRegion, Region


class SegmentGraph:
    """Directed graph over segment names (plus :data:`EXIT_NODE`)."""

    def __init__(
        self,
        nodes: Sequence[str],
        edges: Dict[str, Sequence[str]],
        entry: str,
        age_order: Optional[Sequence[str]] = None,
    ):
        self.nodes: List[str] = list(nodes)
        if EXIT_NODE not in self.nodes:
            self.nodes.append(EXIT_NODE)
        self.entry = entry
        self._succ: Dict[str, List[str]] = {n: [] for n in self.nodes}
        self._pred: Dict[str, List[str]] = {n: [] for n in self.nodes}
        for src, dsts in edges.items():
            for dst in dsts:
                if dst not in self._succ:
                    raise ValueError(f"edge to unknown node {dst!r}")
                if src not in self._succ:
                    raise ValueError(f"edge from unknown node {src!r}")
                if dst not in self._succ[src]:
                    self._succ[src].append(dst)
                    self._pred[dst].append(src)
        #: Sequential program order of the real segments (oldest first).
        self.age_order: List[str] = list(
            age_order if age_order is not None else [n for n in nodes]
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_region(cls, region: Region) -> "SegmentGraph":
        """Build the graph for ``region``."""
        names = region.segment_names()
        edges = region.segment_edges()
        entry = names[0]
        if isinstance(region, ExplicitRegion):
            entry = region.entry
        return cls(names, edges, entry=entry, age_order=names)

    # ------------------------------------------------------------------
    def successors(self, node: str) -> List[str]:
        """Direct successors of ``node``."""
        return list(self._succ.get(node, []))

    def predecessors(self, node: str) -> List[str]:
        """Direct predecessors of ``node``."""
        return list(self._pred.get(node, []))

    def real_nodes(self) -> List[str]:
        """All nodes except the exit pseudo-node."""
        return [n for n in self.nodes if n != EXIT_NODE]

    # ------------------------------------------------------------------
    def reachable_from(self, node: str, include_self: bool = False) -> Set[str]:
        """All nodes reachable from ``node`` by following edges."""
        seen: Set[str] = set()
        queue = deque(self._succ.get(node, []))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._succ.get(current, []))
        if include_self:
            seen.add(node)
        return seen

    def descendants(self, node: str) -> Set[str]:
        """Transitive successors of ``node`` (excluding the exit)."""
        return {n for n in self.reachable_from(node) if n != EXIT_NODE}

    def graph_ancestors(self, node: str) -> Set[str]:
        """All nodes that can reach ``node`` (control-flow ancestors)."""
        seen: Set[str] = set()
        queue = deque(self._pred.get(node, []))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._pred.get(current, []))
        return seen

    def age_ancestors(self, node: str) -> List[str]:
        """Segments older than ``node`` in sequential program order."""
        if node == EXIT_NODE:
            return list(self.age_order)
        if node not in self.age_order:
            return []
        idx = self.age_order.index(node)
        return self.age_order[:idx]

    def age_of(self, node: str) -> int:
        """Index of ``node`` in the age order (younger = larger)."""
        return self.age_order.index(node)

    # ------------------------------------------------------------------
    def breadth_first(self) -> List[str]:
        """Breadth-first node order from the entry (exit last)."""
        order: List[str] = []
        seen: Set[str] = set()
        queue = deque([self.entry])
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            order.append(node)
            for succ in self._succ.get(node, []):
                if succ not in seen:
                    queue.append(succ)
        # Unreachable nodes (kept for completeness) and the exit go last.
        for node in self.nodes:
            if node not in seen:
                order.append(node)
        return order

    def has_multiple_successor_segments(self) -> bool:
        """True when any real segment has more than one real successor.

        Multiple successors mean the control-flow path through the region
        is data dependent, i.e. there are cross-segment control
        dependences.
        """
        for node in self.real_nodes():
            real_succs = [s for s in self._succ.get(node, []) if s != EXIT_NODE]
            all_succs = self._succ.get(node, [])
            if len(all_succs) > 1 and len(real_succs) >= 1:
                # A node that can either continue or leave the region, or
                # choose between two real successors, is a branch.
                if len(all_succs) > 1 and not (
                    len(real_succs) == 1 and real_succs[0] == node
                ):
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SegmentGraph {len(self.nodes)} nodes entry={self.entry!r}>"
