"""Per-segment access summaries.

This module computes, for one segment body and each variable referenced
in it, the facts Algorithm 1 and the privatization analysis need:

* **exposed read** -- a read of *x* that is not covered by an earlier,
  unconditionally executed write to the same location(s) of *x* within
  the same segment ("upward-exposed use");
* **must-define** -- *x* is written on all paths through the segment
  before any exposed read ("*x* is defined on all paths through segment
  v without exposed read", Algorithm 1 step 1);
* **node mark** -- the ``Write`` / ``Read`` / ``Null`` marking of
  Algorithm 1;
* **address determinism** -- whether every reference to *x* in the
  segment is guaranteed to hit the same storage locations when the
  segment re-executes after a roll-back.  Subscripts built from
  constants, the region's loop index, inner ``DO`` indices and
  region-read-only scalars are deterministic; subscripted subscripts
  (``K(E)`` in Figure 2) and subscripts reading shared written variables
  are not.

Coverage of a read by an earlier write is decided with a rectangle
abstraction.  For the pair (write *w*, read *r*) the inner ``DO`` loops
enclosing **both** references are *shared*: within one iteration of the
shared loops the write executes before the read, so shared loop indices
are treated as fixed symbolic values.  Loops enclosing only one of the
two references have completed (write side) or range over their full
extent (read side) by the time the read executes, so they are expanded
to their constant iteration ranges.  Per dimension the touched set is
then either a constant interval, a symbolic point (region index or
read-only scalar plus constant offset), or *unknown*; the write covers
the read when every read dimension is contained in the corresponding
write dimension.  ``unknown`` never covers and is never covered, which
keeps the analysis conservative (a missed coverage only makes a read
*exposed*, never the other way around).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import BinOp, Const, Expr, Index, UnaryOp, Var, const_int
from repro.ir.reference import MemoryReference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.region import Region
from repro.ir.stmt import Do
from repro.ir.types import AccessType, NodeMark


# ----------------------------------------------------------------------
# Dimension abstraction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DimRange:
    """Constant interval ``[lo, hi]`` touched in one array dimension."""

    lo: int
    hi: int

    def contains(self, other: "DimRange") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi


@dataclass(frozen=True)
class DimSymbolic:
    """Symbolic point ``base + offset`` in one dimension.

    ``base`` is the canonical name of a value that is fixed for the
    relevant execution window (a shared inner loop index, the region
    loop index, or a region-read-only scalar).
    """

    base: str
    offset: int

    def contains(self, other: "DimSymbolic") -> bool:
        return self.base == other.base and self.offset == other.offset


class DimUnknown:
    """Unknown touched set: never covers, never covered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DimUnknown()"


_UNKNOWN = DimUnknown()

Dim = object  # DimRange | DimSymbolic | DimUnknown


def _dim_contains(write_dim: Dim, read_dim: Dim) -> bool:
    if isinstance(write_dim, DimUnknown) or isinstance(read_dim, DimUnknown):
        return False
    if isinstance(write_dim, DimRange) and isinstance(read_dim, DimRange):
        return write_dim.contains(read_dim)
    if isinstance(write_dim, DimSymbolic) and isinstance(read_dim, DimSymbolic):
        return write_dim.contains(read_dim)
    return False


# ----------------------------------------------------------------------
# Subscript classification
# ----------------------------------------------------------------------
def linear_terms(expr: Expr) -> Optional[Tuple[Dict[str, int], int]]:
    """Decompose ``expr`` into ``sum(coeff * name) + const``.

    Only addition, subtraction, negation and multiplication by integer
    constants are allowed; returns ``None`` otherwise (in particular when
    the expression contains an array read, i.e. a subscripted subscript).
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, float) and not float(expr.value).is_integer():
            return None
        return {}, int(expr.value)
    if isinstance(expr, Var):
        return {expr.name: 1}, 0
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = linear_terms(expr.operand)
        if inner is None:
            return None
        coeffs, const = inner
        return {k: -v for k, v in coeffs.items()}, -const
    if isinstance(expr, UnaryOp) and expr.op == "+":
        return linear_terms(expr.operand)
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left = linear_terms(expr.left)
        right = linear_terms(expr.right)
        if left is None or right is None:
            return None
        lcoeffs, lconst = left
        rcoeffs, rconst = right
        sign = 1 if expr.op == "+" else -1
        coeffs = dict(lcoeffs)
        for name, coeff in rcoeffs.items():
            coeffs[name] = coeffs.get(name, 0) + sign * coeff
        return {k: v for k, v in coeffs.items() if v != 0}, lconst + sign * rconst
    if isinstance(expr, BinOp) and expr.op == "*":
        left = linear_terms(expr.left)
        right = linear_terms(expr.right)
        if left is None or right is None:
            return None
        lcoeffs, lconst = left
        rcoeffs, rconst = right
        if not lcoeffs:
            return {k: v * lconst for k, v in rcoeffs.items()}, lconst * rconst
        if not rcoeffs:
            return {k: v * rconst for k, v in lcoeffs.items()}, lconst * rconst
        return None
    return None


def subscript_is_deterministic(
    expr: Expr,
    loop_locals: Set[str],
    region_index: Optional[str],
    read_only_vars: Set[str],
) -> bool:
    """True when the subscript value is identical on every re-execution.

    Constants, inner loop indices, the region index and region-read-only
    scalars are deterministic; subscripted subscripts and reads of
    variables written in the region are not.
    """
    if any(isinstance(node, Index) for node in expr.walk()):
        return False
    allowed = set(loop_locals) | set(read_only_vars)
    if region_index is not None:
        allowed.add(region_index)
    return all(occ.name in allowed for occ in expr.reads())


def reference_is_deterministic(
    ref: MemoryReference,
    region_index: Optional[str],
    read_only_vars: Set[str],
) -> bool:
    """Address determinism of a whole reference (all of its subscripts)."""
    loop_locals = {do.index for do in ref.enclosing_loops}
    return all(
        subscript_is_deterministic(sub, loop_locals, region_index, read_only_vars)
        for sub in ref.subscripts
    )


# ----------------------------------------------------------------------
# Rectangle construction and coverage
# ----------------------------------------------------------------------
def _loop_bounds(do: Do) -> Optional[Tuple[int, int]]:
    """Constant iteration range of an inner DO, normalised so lo <= hi."""
    lo = const_int(do.lower)
    hi = const_int(do.upper)
    step = const_int(do.step)
    if lo is None or hi is None or step is None:
        return None
    if abs(step) != 1:
        # A strided loop skips addresses inside [lo, hi]; claiming the
        # full interval would mark the gaps written/covered.
        return None
    if step < 0:
        lo, hi = hi, lo
    if lo > hi:
        return None
    return lo, hi


def reference_dims(
    ref: MemoryReference,
    expand_loops: Set[Do],
    region_index: Optional[str],
    read_only_vars: Set[str],
) -> Tuple[Dim, ...]:
    """Per-dimension abstraction of the locations touched by ``ref``.

    Loops in ``expand_loops`` contribute their full constant iteration
    range; all other enclosing loops, the region index and read-only
    scalars are treated as fixed symbolic values.
    """
    expandable: Dict[str, Tuple[int, int]] = {}
    symbolic_indices: Set[str] = set()
    for do in ref.enclosing_loops:
        if do in expand_loops:
            bounds = _loop_bounds(do)
            if bounds is not None:
                expandable[do.index] = bounds
            # A loop with unknown bounds that must be expanded produces an
            # unknown dimension whenever its index appears in a subscript.
        else:
            symbolic_indices.add(do.index)

    dims: List[Dim] = []
    for sub in ref.subscripts:
        lin = linear_terms(sub)
        if lin is None:
            dims.append(_UNKNOWN)
            continue
        coeffs, const = lin
        names = list(coeffs)
        if not names:
            dims.append(DimRange(const, const))
            continue
        if len(names) > 1:
            dims.append(_UNKNOWN)
            continue
        name = names[0]
        coeff = coeffs[name]
        if name in expandable and coeff in (1, -1):
            lo, hi = expandable[name]
            values = sorted((coeff * lo + const, coeff * hi + const))
            dims.append(DimRange(values[0], values[1]))
        elif coeff == 1 and (
            name in symbolic_indices
            or name == region_index
            or name in read_only_vars
        ):
            dims.append(DimSymbolic(name, const))
        else:
            dims.append(_UNKNOWN)
    return tuple(dims)


def write_covers_read(
    write: MemoryReference,
    read: MemoryReference,
    region_index: Optional[str],
    read_only_vars: Set[str],
) -> bool:
    """True when ``write`` is guaranteed to have stored to every location
    ``read`` may load, before the read executes, within one segment
    execution.

    Both references must be to the same variable, the write must precede
    the read in program order and must execute unconditionally.
    """
    if write.variable != read.variable:
        return False
    if write.order >= read.order:
        return False
    if write.conditional:
        return False
    if len(write.subscripts) != len(read.subscripts):
        return False
    if not write.subscripts:  # scalar: unconditional earlier write covers
        return True
    shared = set(write.enclosing_loops) & set(read.enclosing_loops)
    write_dims = reference_dims(
        write, set(write.enclosing_loops) - shared, region_index, read_only_vars
    )
    read_dims = reference_dims(
        read, set(read.enclosing_loops) - shared, region_index, read_only_vars
    )
    return all(_dim_contains(w, r) for w, r in zip(write_dims, read_dims))


# ----------------------------------------------------------------------
# Segment summary
# ----------------------------------------------------------------------
@dataclass
class VariableAccessInfo:
    """Summary of how one segment accesses one variable."""

    variable: str
    mark: NodeMark = NodeMark.NULL
    has_exposed_read: bool = False
    has_unconditional_write: bool = False
    deterministic: bool = True
    exposed_reads: List[MemoryReference] = field(default_factory=list)
    covered_reads: List[MemoryReference] = field(default_factory=list)
    covering_writes: Dict[str, MemoryReference] = field(default_factory=dict)
    writes: List[MemoryReference] = field(default_factory=list)
    reads: List[MemoryReference] = field(default_factory=list)

    @property
    def referenced(self) -> bool:
        return bool(self.writes or self.reads)


@dataclass
class AccessSummary:
    """Access summary of one segment: per-variable :class:`VariableAccessInfo`."""

    segment: str
    variables: Dict[str, VariableAccessInfo]

    def mark(self, variable: str) -> NodeMark:
        """Algorithm 1 node marking for ``variable`` (``Null`` if absent)."""
        info = self.variables.get(variable)
        return info.mark if info is not None else NodeMark.NULL

    def info(self, variable: str) -> Optional[VariableAccessInfo]:
        return self.variables.get(variable)

    def referenced_variables(self) -> Set[str]:
        return set(self.variables)

    def exposed_read_variables(self) -> Set[str]:
        return {
            name for name, info in self.variables.items() if info.has_exposed_read
        }


def summarize_segment(
    references: Sequence[MemoryReference],
    segment: str,
    region_index: Optional[str] = None,
    read_only_vars: Optional[Set[str]] = None,
) -> AccessSummary:
    """Compute the :class:`AccessSummary` of one segment body.

    ``references`` must come from
    :func:`repro.ir.reference.extract_references` (program order and
    conditional flags are relied upon).
    """
    read_only_vars = set(read_only_vars or ())
    per_var: Dict[str, VariableAccessInfo] = {}
    ordered = sorted(references, key=lambda r: r.order)

    for ref in ordered:
        info = per_var.setdefault(
            ref.variable, VariableAccessInfo(variable=ref.variable)
        )
        if not reference_is_deterministic(ref, region_index, read_only_vars):
            info.deterministic = False
        if ref.access is AccessType.READ:
            info.reads.append(ref)
        else:
            info.writes.append(ref)
            if not ref.conditional:
                info.has_unconditional_write = True

    # Coverage: pairwise check of each read against earlier unconditional
    # writes to the same variable.
    for ref in ordered:
        if ref.access is not AccessType.READ:
            continue
        info = per_var[ref.variable]
        covering = None
        for write in info.writes:
            if write_covers_read(write, ref, region_index, read_only_vars):
                covering = write
                break
        if covering is not None:
            info.covered_reads.append(ref)
            info.covering_writes[ref.uid] = covering
        else:
            info.exposed_reads.append(ref)
            info.has_exposed_read = True

    for info in per_var.values():
        if info.has_exposed_read:
            info.mark = NodeMark.READ
        elif info.has_unconditional_write:
            info.mark = NodeMark.WRITE
        else:
            info.mark = NodeMark.NULL
    return AccessSummary(segment=segment, variables=per_var)


def summarize_region_segments(
    region: "Region", read_only_vars: Optional[Set[str]] = None
) -> Dict[str, AccessSummary]:
    """Access summaries for every segment of ``region`` (keyed by name)."""
    from repro.ir.region import LoopRegion

    region_index = region.index if isinstance(region, LoopRegion) else None
    out: Dict[str, AccessSummary] = {}
    for name in region.segment_names():
        out[name] = summarize_segment(
            region.segment_references(name),
            segment=name,
            region_index=region_index,
            read_only_vars=read_only_vars,
        )
    return out
