"""Generator-based segment executor.

A segment body is executed as a coroutine that *yields* operations and
receives read values back from whatever engine drives it:

* :class:`ComputeOp` -- non-memory work (the engine adds the cycles);
* :class:`ReadOp`   -- a memory read, tagged with the static
  :class:`~repro.ir.reference.MemoryReference` it corresponds to; the
  engine ``send()``s the value back;
* :class:`WriteOp`  -- a memory write (value already computed), also
  tagged with its static reference.

Because the engines decide where each read value comes from (speculative
storage, an older segment's storage, the non-speculative hierarchy, a
private frame) and where each write goes, the same executor implements
sequential execution, HOSE and CASE; the speculative engines simply
discard the coroutine on a roll-back and create a fresh one, which
naturally re-executes the segment.

The traversal order of reads matches
:func:`repro.ir.reference.extract_references` exactly, so the *k*-th
dynamic read of a statement instance is paired with the *k*-th static
read reference of that statement (induction locals are served from the
register file and never reach memory, again matching extraction).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    Index,
    UnaryOp,
    Var,
    apply_binary,
    apply_intrinsic,
    apply_unary,
)
from repro.ir.reference import MemoryReference
from repro.ir.stmt import Assign, Do, If, Statement
from repro.runtime.errors import SimulationError

Number = Union[int, float]


# ----------------------------------------------------------------------
# Operations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComputeOp:
    """Non-memory work costing ``cycles`` cycles."""

    cycles: int = 1


@dataclass(frozen=True)
class ReadOp:
    """A memory read of ``variable(subscripts)``; the engine sends the value back."""

    variable: str
    subscripts: Tuple[int, ...]
    ref: Optional[MemoryReference]


@dataclass(frozen=True)
class WriteOp:
    """A memory write of ``value`` to ``variable(subscripts)``."""

    variable: str
    subscripts: Tuple[int, ...]
    value: float
    ref: Optional[MemoryReference]


Operation = Union[ComputeOp, ReadOp, WriteOp]
SegmentCoroutine = Generator[Operation, Optional[float], None]


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
@dataclass
class ExecContext:
    """Per-segment execution state: the register file of induction locals."""

    locals: Dict[str, Number] = field(default_factory=dict)
    #: Optional hard limit on executed operations (guards against runaway
    #: loops in generated or property-based-test programs).
    op_budget: Optional[int] = None
    #: Latency hook: an optional ``(stmt, expr) -> cycles`` override of
    #: the default per-statement compute-cost estimate, letting a cost
    #: model (e.g. :class:`repro.timing.cost.CostModel`) price operators
    #: unevenly.  Only affects :class:`ComputeOp` cycles, never values.
    compute_cost: Optional["Callable[[Statement, Expr], int]"] = None
    _ops: int = 0

    def charge(self, amount: int = 1) -> None:
        self._ops += amount
        if self.op_budget is not None and self._ops > self.op_budget:
            raise SimulationError(
                f"operation budget of {self.op_budget} exceeded"
            )


# Keyed by the statement *object* (statements hash by identity), held
# weakly: an id()-keyed dict would hand out a stale cost when a dead
# statement's address is reused by a new one, and a strong-keyed dict
# would leak every statement ever executed.
_COST_CACHE: "weakref.WeakKeyDictionary[Statement, int]" = weakref.WeakKeyDictionary()


def _compute_cost(stmt: Statement, expr: Expr) -> int:
    """Static instruction-count estimate of evaluating ``expr`` (cached)."""
    cached = _COST_CACHE.get(stmt)
    if cached is not None:
        return cached
    operators = sum(
        1 for node in expr.walk() if isinstance(node, (BinOp, UnaryOp, Call))
    )
    cost = 1 + operators
    _COST_CACHE[stmt] = cost
    return cost


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
def _eval_expr(
    expr: Expr,
    ctx: ExecContext,
    refs: Iterator[MemoryReference],
) -> Generator[Operation, Optional[float], Number]:
    """Evaluate ``expr``; reads are yielded as :class:`ReadOp` operations."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        if expr.name in ctx.locals:
            return ctx.locals[expr.name]
        ref = next(refs, None)
        value = yield ReadOp(expr.name, (), ref)
        return 0.0 if value is None else value
    if isinstance(expr, Index):
        subs: List[int] = []
        for sub in expr.subscripts:
            sub_value = yield from _eval_expr(sub, ctx, refs)
            subs.append(int(round(sub_value)))
        ref = next(refs, None)
        value = yield ReadOp(expr.name, tuple(subs), ref)
        return 0.0 if value is None else value
    if isinstance(expr, BinOp):
        left = yield from _eval_expr(expr.left, ctx, refs)
        right = yield from _eval_expr(expr.right, ctx, refs)
        return apply_binary(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = yield from _eval_expr(expr.operand, ctx, refs)
        return apply_unary(expr.op, operand)
    if isinstance(expr, Call):
        args: List[Number] = []
        for arg in expr.args:
            value = yield from _eval_expr(arg, ctx, refs)
            args.append(value)
        return apply_intrinsic(expr.func, args)
    raise SimulationError(f"cannot evaluate expression {expr!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# Statement execution
# ----------------------------------------------------------------------
def _exec_assign(stmt: Assign, ctx: ExecContext) -> SegmentCoroutine:
    ctx.charge()
    if stmt.guard is not None:
        control_refs = iter(stmt.control_reads or [])
        guard_value = yield from _eval_expr(stmt.guard, ctx, control_refs)
        yield ComputeOp(1)
        if not guard_value:
            return
    refs = iter(stmt.reads or [])
    rhs_value = yield from _eval_expr(stmt.rhs, ctx, refs)
    cost_fn = ctx.compute_cost
    yield ComputeOp(
        _compute_cost(stmt, stmt.rhs) if cost_fn is None else cost_fn(stmt, stmt.rhs)
    )
    subs: List[int] = []
    for sub in stmt.target_subscripts:
        sub_value = yield from _eval_expr(sub, ctx, refs)
        subs.append(int(round(sub_value)))
    yield WriteOp(stmt.target, tuple(subs), float(rhs_value), stmt.write)


def _exec_if(stmt: If, ctx: ExecContext) -> SegmentCoroutine:
    ctx.charge()
    control_refs = iter(stmt.control_reads or [])
    cond_value = yield from _eval_expr(stmt.cond, ctx, control_refs)
    yield ComputeOp(1)
    body = stmt.then_body if cond_value else stmt.else_body
    yield from execute_body(body, ctx)


def _exec_do(stmt: Do, ctx: ExecContext) -> SegmentCoroutine:
    ctx.charge()
    control_refs = iter(stmt.control_reads or [])
    lower = yield from _eval_expr(stmt.lower, ctx, control_refs)
    upper = yield from _eval_expr(stmt.upper, ctx, control_refs)
    step = yield from _eval_expr(stmt.step, ctx, control_refs)
    yield ComputeOp(1)
    lower_i, upper_i, step_i = int(round(lower)), int(round(upper)), int(round(step))
    if step_i == 0:
        raise SimulationError(f"DO loop {stmt.sid or stmt.index} has zero step")
    shadowed = ctx.locals.get(stmt.index)
    had_shadow = stmt.index in ctx.locals
    value = lower_i
    while (step_i > 0 and value <= upper_i) or (step_i < 0 and value >= upper_i):
        ctx.charge()
        ctx.locals[stmt.index] = value
        yield ComputeOp(1)
        yield from execute_body(stmt.body, ctx)
        value += step_i
    if had_shadow:
        ctx.locals[stmt.index] = shadowed
    else:
        ctx.locals.pop(stmt.index, None)


def execute_body(body: Sequence[Statement], ctx: ExecContext) -> SegmentCoroutine:
    """Execute a statement list, yielding operations in program order."""
    for stmt in body:
        if isinstance(stmt, Assign):
            yield from _exec_assign(stmt, ctx)
        elif isinstance(stmt, If):
            yield from _exec_if(stmt, ctx)
        elif isinstance(stmt, Do):
            yield from _exec_do(stmt, ctx)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown statement {type(stmt).__name__}")


def segment_coroutine(
    body: Sequence[Statement],
    locals_in_scope: Optional[Dict[str, Number]] = None,
    op_budget: Optional[int] = None,
    compute_cost: Optional[Callable] = None,
) -> SegmentCoroutine:
    """Create a fresh coroutine executing ``body``.

    ``locals_in_scope`` seeds the register file (e.g. the region loop
    index for a loop-region iteration); ``compute_cost`` is the optional
    latency hook replacing the default compute-cost estimate (see
    :class:`ExecContext`).
    """
    ctx = ExecContext(
        locals=dict(locals_in_scope or {}),
        op_budget=op_budget,
        compute_cost=compute_cost,
    )
    return execute_body(body, ctx)


def evaluate_expression(
    expr: Expr,
    read_memory,
    locals_in_scope: Optional[Dict[str, Number]] = None,
) -> Number:
    """Evaluate an expression outside any segment (loop bounds, branches).

    ``read_memory(variable, subscripts)`` supplies memory values; locals
    are served from ``locals_in_scope``.
    """
    locals_map = dict(locals_in_scope or {})

    def reader(name: str, subs: Tuple[int, ...]) -> Number:
        if name in locals_map and not subs:
            return locals_map[name]
        return read_memory(name, subs)

    return expr.evaluate(reader)
