"""Multiprocessor timing model: from engine op streams to speedups.

The speculative engines (:mod:`repro.runtime.engines`) prove the paper's
*storage* claims; this package closes the loop to its *performance*
claims by turning the engines' operation streams into parallel time:

* :mod:`repro.timing.cost` -- the configurable cost model: operation
  costs (operator-weighted compute via the executor's ``compute_cost``
  latency hook), per-route access latencies (conventional memory /
  speculative store / private frame), and the speculation overheads
  (dispatch, commit arbitration, overflow drain, squash penalty);
* :mod:`repro.timing.events` -- the per-segment-attempt timing event
  stream the engines emit through a :class:`TimingRecorder` (issue,
  priced operations, overflow stall / drain, squash with violating
  writer, discard, commit), folded into a compact :class:`Recording`;
* :mod:`repro.timing.schedule` -- the processor-assignment scheduler:
  ``P`` logical processors, window-ordered dispatch in age order,
  earliest-free-processor assignment, commit-in-age-order arbitration;
* :mod:`repro.timing.makespan` -- critical-path makespan over a whole
  recording plus the cost-modelled sequential baseline, yielding
  per-processor busy / wasted / stall / idle breakdowns and
  speedup-vs-sequential.

The bench's ``speedup`` scenario (:mod:`repro.bench.speedup`) sweeps
processors x window x speculative capacity over the workload families
and reports HOSE/CASE speedup curves in ``BENCH_results.json``.
"""

from repro.timing.cost import (
    DEFAULT_COST_MODEL,
    KIND_COMPUTE,
    KIND_READ,
    KIND_WRITE,
    CostModel,
)
from repro.timing.events import (
    AttemptRecord,
    DirectSection,
    Recording,
    RegionRecording,
    SegmentRecord,
    TimingRecorder,
)
from repro.timing.makespan import (
    MakespanResult,
    compute_makespan,
    sequential_baseline,
    sequential_cycles,
    speculative_makespan,
)
from repro.timing.schedule import (
    ProcessorLane,
    RegionSchedule,
    SegmentTiming,
    schedule_region,
)

__all__ = [
    "AttemptRecord",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DirectSection",
    "KIND_COMPUTE",
    "KIND_READ",
    "KIND_WRITE",
    "MakespanResult",
    "ProcessorLane",
    "Recording",
    "RegionRecording",
    "RegionSchedule",
    "SegmentRecord",
    "SegmentTiming",
    "TimingRecorder",
    "compute_makespan",
    "schedule_region",
    "sequential_baseline",
    "sequential_cycles",
    "speculative_makespan",
]
