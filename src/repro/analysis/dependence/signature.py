"""Canonical subscript signatures and the signature-bucketed fast path.

The classic pair loop of the dependence analyser calls
:func:`repro.analysis.dependence.subscript_tests.relation_of_reference_pair` for
every ordered pair of references to a variable, and that call re-derives
the affine decomposition of every subscript and the constant iteration
ranges of the enclosing inner loops *per pair* -- O(n^2) expression
walks for n references.

The observation behind the fast path: the relation test consumes a
reference only through

* its affine subscript decompositions
  (:class:`~repro.analysis.dependence.subscript.AffineSubscript`), and
* the constant iteration ranges of its enclosing inner ``DO`` loops,

both of which are static properties of the *textual* reference.  Two
references with equal decompositions and equal ranges are
indistinguishable to the test.  We therefore canonicalise each reference
into a hashable :class:`ReferenceSignature`, bucket references by
signature, and compute the relation set once per signature *pair*
instead of once per reference pair.  Real loop nests reuse a handful of
subscript patterns across many statements (the APPLU ``BUTS_DO1`` nest
of the paper's Figure 4 touches ``v(m, i, j, k)``-shaped elements
dozens of times), so the number of signature groups g is typically far
smaller than n and the O(n^2) relation tests collapse to O(g^2) plus
O(n^2) dictionary lookups.

Signature-pair results additionally prune provably-disjoint pairs
before any per-pair work: an empty relation set for a group pair
disposes of all member pairs at once.

The :class:`SignatureIndex` is the per-region instrument; it is safe to
reuse across analysis passes of the same region (signatures depend only
on the region text and the invariant-symbol set it was built with).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.dependence.subscript import AffineSubscript, affine_subscripts_of
from repro.analysis.dependence.subscript_tests import (
    ALL_RELATIONS,
    LoopBounds,
    RelationSet,
    _inner_ranges,
    dimension_relations,
)
from repro.ir.reference import MemoryReference
from repro.ir.region import LoopRegion


@dataclass(frozen=True)
class ReferenceSignature:
    """Everything the relation test can observe about one reference.

    ``inner_ranges`` holds the constant iteration range (or ``None`` for
    unknown bounds) of each enclosing inner loop index, sorted by name
    so that equal environments hash equally.
    """

    rank: int
    subscripts: Tuple[AffineSubscript, ...]
    inner_ranges: Tuple[Tuple[str, Optional[Tuple[int, int]]], ...]

    @property
    def is_scalar(self) -> bool:
        return self.rank == 0


def signature_of(
    ref: MemoryReference,
    region_index: Optional[str],
    invariant_symbols: Set[str],
) -> ReferenceSignature:
    """Canonical signature of ``ref`` relative to the region loop."""
    if not ref.subscripts:
        return ReferenceSignature(rank=0, subscripts=(), inner_ranges=())
    subs = affine_subscripts_of(ref, region_index, invariant_symbols)
    ranges = _inner_ranges(ref)
    return ReferenceSignature(
        rank=len(ref.subscripts),
        subscripts=subs,
        inner_ranges=tuple(sorted(ranges.items())),
    )


def relation_of_signature_pair(
    sig_a: ReferenceSignature,
    sig_b: ReferenceSignature,
    bounds: LoopBounds,
) -> RelationSet:
    """Relation set of any reference pair with these signatures.

    Mirrors :func:`relation_of_reference_pair` exactly, but works from
    the precomputed decompositions (both references are assumed to name
    the same variable -- the analyser buckets by variable first).
    """
    if sig_a.is_scalar or sig_b.is_scalar:
        return ALL_RELATIONS
    if sig_a.rank != sig_b.rank:
        return ALL_RELATIONS
    ranges_a = dict(sig_a.inner_ranges)
    ranges_b = dict(sig_b.inner_ranges)
    relations = ALL_RELATIONS
    for sub_a, sub_b in zip(sig_a.subscripts, sig_b.subscripts):
        dim = dimension_relations(sub_a, sub_b, bounds, ranges_a, ranges_b)
        relations = relations & dim
        if not relations:
            return relations
    return relations


@dataclass
class SignatureIndex:
    """Per-region signature buckets plus the memoized pair-relation table.

    Build one per (region, invariant-symbol set); ask it for
    :meth:`group_of` each reference and :meth:`relations_of_groups` for
    pairs.  The index also exposes hit/miss counters so the benchmark
    harness can report pruning effectiveness.
    """

    region: LoopRegion
    invariant_symbols: frozenset
    bounds: LoopBounds = field(init=False)
    _group_ids: Dict[ReferenceSignature, int] = field(default_factory=dict)
    _groups: List[ReferenceSignature] = field(default_factory=list)
    _ref_groups: Dict[str, int] = field(default_factory=dict)
    _pair_relations: Dict[Tuple[int, int], RelationSet] = field(default_factory=dict)
    pair_tests_run: int = 0
    pair_tests_saved: int = 0

    def __post_init__(self) -> None:
        self.bounds = LoopBounds.of_region(self.region)

    # ------------------------------------------------------------------
    def group_of(self, ref: MemoryReference) -> int:
        """Signature group id of ``ref`` (computed once per reference)."""
        gid = self._ref_groups.get(ref.uid)
        if gid is not None:
            return gid
        sig = signature_of(ref, self.region.index, self.invariant_symbols)
        gid = self._group_ids.get(sig)
        if gid is None:
            gid = len(self._groups)
            self._group_ids[sig] = gid
            self._groups.append(sig)
        self._ref_groups[ref.uid] = gid
        return gid

    def relations_of_groups(self, gid_a: int, gid_b: int) -> RelationSet:
        """Relation set of the (ordered) signature-group pair."""
        key = (gid_a, gid_b)
        cached = self._pair_relations.get(key)
        if cached is not None:
            self.pair_tests_saved += 1
            return cached
        relations = relation_of_signature_pair(
            self._groups[gid_a], self._groups[gid_b], self.bounds
        )
        self._pair_relations[key] = relations
        self.pair_tests_run += 1
        return relations

    def relations_of(
        self, ref_a: MemoryReference, ref_b: MemoryReference
    ) -> RelationSet:
        """Relation set of a reference pair via the group table."""
        return self.relations_of_groups(self.group_of(ref_a), self.group_of(ref_b))

    # ------------------------------------------------------------------
    def group_count(self) -> int:
        return len(self._groups)

    def stats(self) -> Dict[str, int]:
        """Counters for diagnostics and the benchmark report."""
        return {
            "groups": len(self._groups),
            "references": len(self._ref_groups),
            "pair_tests_run": self.pair_tests_run,
            "pair_tests_saved": self.pair_tests_saved,
        }
