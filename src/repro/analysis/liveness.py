"""Region live-out analysis.

Definition 5 needs to know whether a variable is *live* at the end of
the enclosing region: an incorrect value left in non-speculative storage
only matters if somebody may still read it.  A region may declare its
live-out set explicitly (``liveout`` in the DSL); otherwise it is
computed conservatively from the code that follows the region in the
program: a variable is live-out when some later read of it is not
preceded by an unconditional scalar write (arrays are never considered
killed, and any variable referenced in loop-bound expressions of later
regions counts as read).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.program import Program
from repro.ir.reference import MemoryReference
from repro.ir.region import LoopRegion, Region
from repro.ir.types import AccessType


def _ordered_following_references(program: Program, region: Region) -> List[MemoryReference]:
    """All references that execute after ``region``, in program order."""
    refs: List[MemoryReference] = []
    for later in program.regions_after(region.name):
        refs.extend(sorted(later.references, key=lambda r: r.order))
    refs.extend(sorted(program.finale_references, key=lambda r: r.order))
    return refs


def _bound_reads_of_following_regions(program: Program, region: Region) -> Set[str]:
    """Variables read by the loop headers of later regions."""
    out: Set[str] = set()
    for later in program.regions_after(region.name):
        if isinstance(later, LoopRegion):
            out |= later.bound_variables
    return out


def region_live_out(program: Program, region: Region) -> Set[str]:
    """The set of variables live at the exit of ``region``.

    An explicit ``live_out`` declaration on the region wins; otherwise
    the conservative forward scan described in the module docstring is
    used.
    """
    if region.live_out is not None:
        return set(region.live_out)

    live: Set[str] = set(_bound_reads_of_following_regions(program, region))
    killed: Set[str] = set()
    for ref in _ordered_following_references(program, region):
        if ref.access is AccessType.READ:
            if ref.variable not in killed:
                live.add(ref.variable)
        else:
            # Only an unconditional scalar write kills downstream liveness;
            # array writes rarely cover the whole array, so they never kill.
            if not ref.subscripts and not ref.conditional:
                killed.add(ref.variable)
    return live


def live_out_map(program: Program) -> Dict[str, Set[str]]:
    """Live-out sets of every region, keyed by region name."""
    return {region.name: region_live_out(program, region) for region in program.regions}
