"""Convenience builders for constructing programs in Python.

The DSL front end (:mod:`repro.ir.dsl`) is the primary way to write
workloads, but tests, examples and generators frequently assemble IR
directly; this module keeps that terse::

    from repro.ir.builder import ProgramBuilder, assign, do, if_, idx, var

    b = ProgramBuilder("demo")
    b.scalar("n", initial=64.0)
    b.array("x", (64,))
    b.init(do("i", 1, 64, [assign("x", var("i"), subscripts=["i"])]))
    b.loop_region(
        "L1", "i", 2, 63,
        body=[assign("x", idx("x", "i") + 1.0, subscripts=["i"])],
        live_out={"x"},
    )
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    ExprLike,
    Index,
    UnaryOp,
    Var,
    as_expr,
)
from repro.ir.program import Program
from repro.ir.region import ExplicitRegion, LoopRegion, Region
from repro.ir.segment import Segment
from repro.ir.stmt import Assign, Do, If, Statement
from repro.ir.symbols import SymbolTable


# ----------------------------------------------------------------------
# expression helpers (thin wrappers with operator support)
# ----------------------------------------------------------------------
class E:
    """Tiny expression-building namespace with operator overloading."""

    @staticmethod
    def const(value: Union[int, float]) -> Const:
        return Const(value)

    @staticmethod
    def var(name: str) -> Var:
        return Var(name)

    @staticmethod
    def idx(name: str, *subs: ExprLike) -> Index:
        return Index(name, [as_expr(s) for s in subs])

    @staticmethod
    def call(func: str, *args: ExprLike) -> Call:
        return Call(func, [as_expr(a) for a in args])


def var(name: str) -> Var:
    """Scalar read."""
    return Var(name)


def const(value: Union[int, float]) -> Const:
    """Literal constant."""
    return Const(value)


def idx(name: str, *subs: ExprLike) -> Index:
    """Array-element read."""
    return Index(name, [as_expr(s) for s in subs])


def call(func: str, *args: ExprLike) -> Call:
    """Intrinsic call."""
    return Call(func, [as_expr(a) for a in args])


# Operator overloading on Expr (installed here to keep expr.py free of
# syntactic sugar).
def _install_operators() -> None:
    def _bin(op: str):
        def fwd(self: Expr, other: ExprLike) -> Expr:
            return BinOp(op, self, as_expr(other))

        def rev(self: Expr, other: ExprLike) -> Expr:
            return BinOp(op, as_expr(other), self)

        return fwd, rev

    for op, (dunder, rdunder) in {
        "+": ("__add__", "__radd__"),
        "-": ("__sub__", "__rsub__"),
        "*": ("__mul__", "__rmul__"),
        "/": ("__truediv__", "__rtruediv__"),
        "%": ("__mod__", "__rmod__"),
        "**": ("__pow__", "__rpow__"),
    }.items():
        fwd, rev = _bin(op)
        setattr(Expr, dunder, fwd)
        setattr(Expr, rdunder, rev)

    def _cmp(op: str):
        def fwd(self: Expr, other: ExprLike) -> Expr:
            return BinOp(op, self, as_expr(other))

        return fwd

    setattr(Expr, "__lt__", _cmp("<"))
    setattr(Expr, "__le__", _cmp("<="))
    setattr(Expr, "__gt__", _cmp(">"))
    setattr(Expr, "__ge__", _cmp(">="))
    setattr(Expr, "__neg__", lambda self: UnaryOp("-", self))


_install_operators()


# ----------------------------------------------------------------------
# statement helpers
# ----------------------------------------------------------------------
def assign(
    target: str,
    rhs: ExprLike,
    subscripts: Sequence[ExprLike] = (),
    guard: Optional[ExprLike] = None,
) -> Assign:
    """Build an assignment statement."""
    return Assign(target, rhs, subscripts=subscripts, guard=guard)


def do(
    index: str,
    lower: ExprLike,
    upper: ExprLike,
    body: Sequence[Statement],
    step: ExprLike = 1,
) -> Do:
    """Build an inner sequential ``DO`` loop."""
    return Do(index, lower, upper, body, step=step)


def if_(
    cond: ExprLike,
    then_body: Sequence[Statement],
    else_body: Sequence[Statement] = (),
) -> If:
    """Build an ``IF``/``ELSE`` statement."""
    return If(cond, then_body, else_body)


# ----------------------------------------------------------------------
# program builder
# ----------------------------------------------------------------------
class ProgramBuilder:
    """Accumulates symbols, init code and regions, then builds a program."""

    def __init__(self, name: str):
        self.name = name
        self.symbols = SymbolTable()
        self._init: List[Statement] = []
        self._finale: List[Statement] = []
        self._regions: List[Region] = []

    # -- symbols --------------------------------------------------------
    def scalar(self, name: str, initial: float = 0.0) -> "ProgramBuilder":
        """Declare a scalar variable."""
        self.symbols.scalar(name, initial=initial)
        return self

    def array(
        self, name: str, shape: Sequence[int], initial: float = 0.0
    ) -> "ProgramBuilder":
        """Declare an array variable."""
        self.symbols.array(name, shape, initial=initial)
        return self

    # -- code sections ----------------------------------------------------
    def init(self, *statements: Statement) -> "ProgramBuilder":
        """Append statements to the sequential init section."""
        self._init.extend(statements)
        return self

    def finale(self, *statements: Statement) -> "ProgramBuilder":
        """Append statements to the sequential finale section."""
        self._finale.extend(statements)
        return self

    # -- regions ----------------------------------------------------------
    def loop_region(
        self,
        name: str,
        index: str,
        lower: ExprLike,
        upper: ExprLike,
        body: Sequence[Statement],
        step: ExprLike = 1,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ) -> LoopRegion:
        """Add a loop region (segments = iterations) and return it."""
        region = LoopRegion(
            name,
            index,
            lower,
            upper,
            body,
            step=step,
            live_out=live_out,
            speculative=speculative,
        )
        self._regions.append(region)
        return region

    def explicit_region(
        self,
        name: str,
        segments: Sequence[Union[Segment, Tuple[str, Sequence[Statement]]]],
        edges: Optional[Dict[str, Sequence[str]]] = None,
        entry: Optional[str] = None,
        live_out: Optional[Iterable[str]] = None,
        speculative: Optional[bool] = None,
    ) -> ExplicitRegion:
        """Add an explicit-segment region and return it.

        ``segments`` may mix :class:`Segment` objects with
        ``(name, statements)`` tuples.
        """
        segs: List[Segment] = []
        for item in segments:
            if isinstance(item, Segment):
                segs.append(item)
            else:
                seg_name, body = item
                segs.append(Segment(seg_name, body))
        region = ExplicitRegion(
            name,
            segs,
            edges=edges,
            entry=entry,
            live_out=live_out,
            speculative=speculative,
        )
        self._regions.append(region)
        return region

    def add_region(self, region: Region) -> Region:
        """Add a pre-built region."""
        self._regions.append(region)
        return region

    # -- finish -----------------------------------------------------------
    def build(self, autodeclare: bool = False) -> Program:
        """Assemble the :class:`Program`.

        With ``autodeclare=True`` any referenced but undeclared variable
        is declared as a scalar (useful for small hand-written tests).
        """
        program = Program(
            self.name,
            symbols=self.symbols,
            init=self._init,
            regions=self._regions,
            finale=self._finale,
        )
        if autodeclare:
            program.ensure_declared()
        return program
