"""Execution statistics collected by the interpreters and engines."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple


@dataclass
class ExecutionStats:
    """Counters shared by the sequential interpreter and the speculative engines."""

    #: Total simulated cycles.
    cycles: int = 0
    #: Dynamic memory reference counts keyed by static reference uid.
    reference_counts: Dict[str, int] = field(default_factory=dict)
    #: Dynamic reads / writes (totals).
    reads: int = 0
    writes: int = 0
    #: References that went to speculative storage / bypassed it / were
    #: served from a private frame (the three routes of Definition 4).
    speculative_accesses: int = 0
    idempotent_accesses: int = 0
    private_accesses: int = 0
    #: Speculation events.
    violations: int = 0
    control_mispredictions: int = 0
    rollbacks: int = 0
    segments_started: int = 0
    segments_committed: int = 0
    overflow_stalls: int = 0
    overflow_entries: int = 0
    commit_entries: int = 0
    #: Wasted work: cycles spent in executions that were rolled back.
    wasted_cycles: int = 0
    #: Rollbacks forced by the resilience layer rather than by a real
    #: data dependence: poisoned-buffer scrubs and restarts after an
    #: injected mid-segment exception or corrupted address (a subset of
    #: ``rollbacks``).
    fault_restarts: int = 0
    #: Scheduling rounds a stalled segment sat waiting to become oldest
    #: -- a raw engine-level pressure metric, reported alongside (but
    #: independent of) the timing model's stall cycles.
    stall_rounds: int = 0
    #: Share of ``cycles`` that came from modelled memory latency
    #: (non-zero only when a latency model is attached).
    memory_latency_cycles: int = 0
    #: Batched-replay counters (``runtime.batch``): whole-segment
    #: attempts executed as one batch, the ops they covered, attempts
    #: resolved through the overflow/validation fallback, post-hoc
    #: validation failures, and read/write-log entries carried per batch
    #: (an occupancy proxy for the segment-local logs).
    batched_attempts: int = 0
    batched_ops: int = 0
    batch_fallbacks: int = 0
    batch_violations: int = 0
    batch_log_entries: int = 0

    # ------------------------------------------------------------------
    def count_reference(self, uid: str) -> None:
        self.reference_counts[uid] = self.reference_counts.get(uid, 0) + 1

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Combine two stats objects (cycles add; counters add).

        The counter list is derived from the dataclass fields, so a new
        engine counter is covered automatically.
        """
        merged = ExecutionStats()
        for name in scalar_counter_names():
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.reference_counts = dict(self.reference_counts)
        for uid, count in other.reference_counts.items():
            merged.reference_counts[uid] = merged.reference_counts.get(uid, 0) + count
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Scalar counters as a plain dict (reference counts omitted)."""
        return {name: getattr(self, name) for name in scalar_counter_names()}


def scalar_counter_names() -> Tuple[str, ...]:
    """All scalar counter fields of :class:`ExecutionStats`.

    Every field except the ``reference_counts`` mapping; both
    :meth:`ExecutionStats.merge` and :meth:`ExecutionStats.as_dict`
    iterate this list so the two can never drift apart (or silently
    drop a newly added counter).
    """
    global _SCALAR_COUNTERS
    if _SCALAR_COUNTERS is None:
        _SCALAR_COUNTERS = tuple(
            f.name for f in fields(ExecutionStats) if f.name != "reference_counts"
        )
    return _SCALAR_COUNTERS


_SCALAR_COUNTERS: "Tuple[str, ...] | None" = None
