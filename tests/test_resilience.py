"""Resilience tests: fault injection, invariant auditing, degradation.

The acceptance bar: every fault kind injected at a nonzero rate leaves
the final memory state bit-identical to the sequential interpreter --
by in-place recovery or by graceful degradation -- on every workload
family and both engines; and the auditor passes on every fault-free
run while catching every manufactured invariant violation.
"""

import pytest

from repro.bench.chaos import chaos_programs
from repro.bench.workloads import FAMILIES, generate
from repro.ir.dsl import parse_program
from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultySpeculativeStore,
    InvariantAuditor,
    run_resilient,
)
from repro.runtime.engines import CASEEngine, HOSEEngine
from repro.runtime.errors import (
    AddressError,
    EngineLivelockError,
    FaultInjected,
    InvariantViolation,
    SimulationError,
)
from repro.runtime.interpreter import run_program
from repro.runtime.specstore import SpeculativeStore, SpecStoreError


def make_program(family="stencil", size=6, statements=2):
    return generate(family, size, statements).program


def assert_recovered(program, sequential, **kwargs):
    result = run_resilient(program, **kwargs)
    diffs = sequential.memory.differences(result.memory, tolerance=0.0)
    assert diffs == {}, (
        f"{kwargs} diverged: {sorted(diffs.items())[:3]}"
    )
    return result


# ----------------------------------------------------------------------
# Error taxonomy (satellite: typed errors).
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_substrate_errors_are_simulation_errors(self):
        for cls in (
            SpecStoreError,
            InvariantViolation,
            EngineLivelockError,
            FaultInjected,
            AddressError,
        ):
            assert issubclass(cls, SimulationError)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="made_up", rate=0.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="dup_commit", rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(
                [FaultSpec("dup_commit", 0.1), FaultSpec("dup_commit", 0.2)]
            )

    def test_plan_truthiness(self):
        assert not FaultPlan([])
        assert not FaultPlan.single("dup_commit", 0.0)
        assert FaultPlan.single("dup_commit", 0.1)


# ----------------------------------------------------------------------
# Injector determinism.
# ----------------------------------------------------------------------
class TestInjectorDeterminism:
    def test_same_seed_same_fault_sequence(self):
        program = make_program()
        plan = FaultPlan.uniform(0.3)
        runs = [
            run_resilient(
                program, plan=plan, seed=11, max_restarts=30,
                watchdog_rounds=2000,
            )
            for _ in range(2)
        ]
        assert runs[0].fault_counts == runs[1].fault_counts
        assert runs[0].fault_counts  # something actually fired
        assert runs[0].stats.as_dict() == runs[1].stats.as_dict()
        assert runs[0].degraded == runs[1].degraded

    def test_fire_counts_opportunities_and_injections(self):
        injector = FaultInjector(FaultPlan.single("dup_commit", 1.0), seed=0)
        for _ in range(5):
            assert injector.fire("dup_commit") is not None
        assert injector.fire("drop_commit") is None  # not armed
        assert injector.opportunities == {"dup_commit": 5}
        assert injector.counts == {"dup_commit": 5}
        assert injector.total_injected() == 5


# ----------------------------------------------------------------------
# The invariant auditor vs manufactured corruption.
# ----------------------------------------------------------------------
class TestAuditor:
    def test_clean_store_passes(self):
        store = SpeculativeStore()
        b1 = store.open_segment(("R", 1), 1)
        store.open_segment(("R", 2), 2)
        store.record_write(b1, ("a", 0), 1.0)
        auditor = InvariantAuditor()
        auditor.audit(store, committed_age=0)
        assert auditor.audits == 1

    def test_committed_entry_leakage(self):
        store = SpeculativeStore()
        store.open_segment(("R", 1), 1)
        with pytest.raises(InvariantViolation, match="leakage"):
            InvariantAuditor().audit(store, committed_age=1)

    def test_age_order(self):
        store = SpeculativeStore()
        store.open_segment(("R", 1), 1)
        store.open_segment(("R", 2), 2)
        store._buffers.reverse()
        with pytest.raises(InvariantViolation, match="age order"):
            InvariantAuditor().audit(store)

    def test_untracked_entries(self):
        store = SpeculativeStore()
        buf = store.open_segment(("R", 1), 1)
        buf.values[("a", 0)] = 1.0  # bypasses entry tracking
        with pytest.raises(InvariantViolation, match="untracked"):
            InvariantAuditor().audit(store)

    def test_occupancy_drift(self):
        store = SpeculativeStore()
        buf = store.open_segment(("R", 1), 1)
        buf.tracked.add(("a", 0))  # entry the store never accounted
        with pytest.raises(InvariantViolation, match="occupancy"):
            InvariantAuditor().audit(store)

    def test_region_end_leftovers(self):
        store = SpeculativeStore()
        store.open_segment(("R", 1), 1)
        with pytest.raises(InvariantViolation, match="region ended"):
            InvariantAuditor().audit_region_end(store, region="R")

    def test_forwarding_direction(self):
        store = SpeculativeStore()
        _oldest = store.open_segment(("R", 1), 1)
        younger = store.open_segment(("R", 2), 2)
        store.record_write(younger, ("a", 0), 9.0)
        # Corrupt the age so the younger buffer looks older to
        # forwarding's nearest-older scan.
        younger.age = 0
        store._buffers.sort(key=lambda b: b.age)
        with pytest.raises(InvariantViolation):
            InvariantAuditor().audit(store)


# ----------------------------------------------------------------------
# Fault-free runs: auditor on, behavior unchanged.
# ----------------------------------------------------------------------
class TestFaultFree:
    @pytest.mark.parametrize("engine", ["hose", "case"])
    def test_audited_run_is_bit_identical(self, engine):
        program = make_program()
        sequential = run_program(program, model_latency=False)
        auditor = InvariantAuditor()
        cls = {"hose": HOSEEngine, "case": CASEEngine}[engine]
        result = cls(program, window=4, capacity=8, auditor=auditor).run()
        assert not result.degraded
        assert auditor.audits > 0
        assert sequential.memory.differences(result.memory, tolerance=0.0) == {}

    def test_faulty_store_with_empty_plan_is_transparent(self):
        program = make_program("sparse")
        injector = FaultInjector(FaultPlan([]), seed=0)
        store = FaultySpeculativeStore(8, injector)
        plain = HOSEEngine(program, window=4, capacity=8).run()
        wrapped = HOSEEngine(program, window=4, store=store).run()
        assert not wrapped.degraded
        assert plain.memory.differences(wrapped.memory, tolerance=0.0) == {}
        assert plain.stats.as_dict() == wrapped.stats.as_dict()
        assert injector.total_injected() == 0


# ----------------------------------------------------------------------
# The tentpole acceptance matrix: every fault kind recovers.
# ----------------------------------------------------------------------
class TestRecoveryMatrix:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("engine", ["hose", "case"])
    def test_uniform_plan_recovers_bit_identically(self, family, engine):
        program = make_program(family)
        sequential = run_program(program, model_latency=False)
        assert_recovered(
            program,
            sequential,
            engine=engine,
            plan=FaultPlan.uniform(0.2),
            seed=5,
            capacity=8,
            max_restarts=30,
            watchdog_rounds=2000,
        )

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_kind_recovers_on_each_family(self, kind, family):
        # The acceptance matrix: every fault type at a nonzero rate on
        # every workload family stays bit-identical to sequential
        # (recovered in place or degraded; both count, silent
        # divergence does not).
        program = make_program(family, size=5)
        sequential = run_program(program, model_latency=False)
        assert_recovered(
            program,
            sequential,
            engine="case",
            plan=FaultPlan.single(kind, 0.4),
            seed=7,
            capacity=8,
            max_restarts=25,
            watchdog_rounds=1500,
        )

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_each_kind_recovers_on_both_engines(self, kind):
        program = make_program("sparse")
        sequential = run_program(program, model_latency=False)
        for engine in ("hose", "case"):
            result = assert_recovered(
                program,
                sequential,
                engine=engine,
                plan=FaultPlan.single(kind, 0.3),
                seed=2,
                capacity=8,
                max_restarts=30,
                watchdog_rounds=2000,
            )
            assert result.engine == engine

    def test_dup_commit_absorbed_without_degradation(self):
        program = make_program("stencil")
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            plan=FaultPlan.single("dup_commit", 1.0),
            seed=0,
        )
        assert not result.degraded
        assert result.fault_counts["dup_commit"] > 0

    def test_corrupt_forward_scrubbed_in_place(self):
        # Stencil segments forward across iterations, so corruptions
        # fire; the poison scrub recovers without degrading.
        program = make_program("stencil", size=8)
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            engine="hose",
            plan=FaultPlan.single("corrupt_forward", 0.3),
            seed=3,
        )
        assert result.fault_counts.get("corrupt_forward", 0) > 0
        assert not result.degraded
        assert result.stats.fault_restarts > 0

    def test_mispredict_on_explicit_region(self):
        program = chaos_programs(size=6)["explicit"]
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            plan=FaultPlan.single("mispredict", 1.0),
            seed=0,
            capacity=8,
        )
        assert result.fault_counts.get("mispredict", 0) > 0


# ----------------------------------------------------------------------
# Detection and degradation.
# ----------------------------------------------------------------------
class TestDegradation:
    def test_drop_commit_detected_by_auditor(self):
        program = make_program()
        with pytest.raises(InvariantViolation):
            run_resilient(
                program,
                plan=FaultPlan.single("drop_commit", 1.0),
                fallback=False,
            )

    def test_drop_commit_degrades_to_correct_result(self):
        program = make_program()
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            plan=FaultPlan.single("drop_commit", 1.0),
        )
        assert result.degraded
        report = result.degradation
        assert report.error_type == "InvariantViolation"
        assert report.program == program.name
        assert report.fault_counts["drop_commit"] > 0
        as_dict = report.as_dict()
        assert as_dict["error_type"] == "InvariantViolation"
        assert as_dict["reason"]

    def test_persistent_self_violation_hits_livelock_guard(self):
        # Rate 1.0 spurious violations restart segments forever; the
        # restart budget (or watchdog) must convert that into a typed
        # livelock error rather than an endless loop.
        program = make_program()
        with pytest.raises(EngineLivelockError):
            run_resilient(
                program,
                engine="hose",
                plan=FaultPlan.single("spurious_violation", 1.0),
                max_restarts=20,
                watchdog_rounds=500,
                fallback=False,
            )

    def test_livelock_degrades_with_report(self):
        program = make_program()
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            engine="hose",
            plan=FaultPlan.single("spurious_violation", 1.0),
            max_restarts=20,
            watchdog_rounds=500,
        )
        assert result.degraded
        assert result.degradation.error_type == "EngineLivelockError"
        assert result.degradation.rollbacks > 0

    def test_persistent_segment_exception_degrades(self):
        program = make_program()
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            plan=FaultPlan.single("segment_exception", 1.0),
            max_restarts=10,
        )
        assert result.degraded
        assert result.stats.segments_committed == sequential.stats.segments_committed

    def test_fallback_off_raises_on_persistent_fault(self):
        program = make_program()
        with pytest.raises(EngineLivelockError):
            run_resilient(
                program,
                plan=FaultPlan.single("segment_exception", 1.0),
                max_restarts=5,
                fallback=False,
            )


# ----------------------------------------------------------------------
# The SymbolError -> AddressError conversion (satellite: now live).
# ----------------------------------------------------------------------
class TestBadAddressPath:
    OOB_SRC = """
program oob
  real a(4), x
  region R do i = 1, 8
    x = a(i)
    liveout x
  end region
end program
"""

    @pytest.mark.parametrize("engine_cls", [HOSEEngine, CASEEngine])
    def test_out_of_range_subscript_raises_address_error(self, engine_cls):
        # No injector is attached, so the engine must surface the
        # converted AddressError instead of degrading.
        program = parse_program(self.OOB_SRC)
        with pytest.raises(AddressError):
            engine_cls(program, window=4, capacity=8).run()

    def test_injected_bad_subscript_recovers(self):
        program = make_program()
        sequential = run_program(program, model_latency=False)
        result = assert_recovered(
            program,
            sequential,
            plan=FaultPlan.single("bad_subscript", 0.3),
            seed=4,
            max_restarts=30,
        )
        assert result.fault_counts.get("bad_subscript", 0) > 0
