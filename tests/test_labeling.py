"""Idempotency analysis tests: Algorithm 1 (RFW), Algorithm 2
(Theorems 1 and 2), the live-out precedence contract and the report
aggregation -- including the Figure 2 walk-through over an explicit
segment graph."""

import pytest

from repro.idempotency.labeling import label_region
from repro.idempotency.report import (
    CategoryCounts,
    count_dynamic_references,
    count_static_references,
    merge_counts,
)
from repro.idempotency.rfw import analyze_rfw
from repro.ir.dsl import parse_program
from repro.ir.types import (
    AccessType,
    IdempotencyCategory,
    NodeColor,
    NodeMark,
    RefLabel,
)
from repro.runtime.interpreter import run_program


def refs_of(region, variable, access=None):
    out = [r for r in region.references if r.variable == variable]
    if access is not None:
        out = [r for r in out if r.access is access]
    return out


# ----------------------------------------------------------------------
# Figure 2 walk-through: explicit segment chain R1 -> R2 -> R3 -> R4.
#
#   R1: x = a + 1       (scalar write of x, no exposed read)
#       k(c(1)) = a     (array write through a subscripted subscript)
#   R2: b = x * 2       (exposed read of x, scalar write of b)
#   R3: x = b + c(2)    (exposed read of b, scalar write of x)
#   R4: b = x + a       (exposed read of x, scalar write of b)
#
# liveout x, b.  `a` and `c` are read-only; `k` is written, never read
# and not live-out.
# ----------------------------------------------------------------------
FIG2_SRC = """
program fig2
  real a = 2.0, b, c(4) = 0.5, x
  real k(8)
  region FIG2 explicit
    segment R1
      x = a + 1
      k(c(1)) = a
    end segment
    segment R2
      b = x * 2
    end segment
    segment R3
      x = b + c(2)
    end segment
    segment R4
      b = x + a
    end segment
    edges R1 -> R2
    edges R2 -> R3
    edges R3 -> R4
    liveout x, b
  end region
end program
"""


@pytest.fixture(scope="module")
def fig2():
    program = parse_program(FIG2_SRC)
    region = program.regions[0]
    return program, region, label_region(region, program=program)


class TestFigure2WalkThrough:
    def test_node_marks(self, fig2):
        _, region, labeling = fig2
        rfw = labeling.rfw
        assert {s: rfw.mark_of("x", s) for s in region.segment_names()} == {
            "R1": NodeMark.WRITE,
            "R2": NodeMark.READ,
            "R3": NodeMark.WRITE,
            "R4": NodeMark.READ,
        }
        assert {s: rfw.mark_of("b", s) for s in region.segment_names()} == {
            "R1": NodeMark.NULL,
            "R2": NodeMark.WRITE,
            "R3": NodeMark.READ,
            "R4": NodeMark.WRITE,
        }

    def test_coloring_danger_propagation(self, fig2):
        _, region, labeling = fig2
        rfw = labeling.rfw
        # x: R2's exposed read endangers everything R1 speculated past;
        # only R1 itself stays White.
        assert {s: rfw.color_of("x", s) for s in region.segment_names()} == {
            "R1": NodeColor.WHITE,
            "R2": NodeColor.BLACK,
            "R3": NodeColor.BLACK,
            "R4": NodeColor.BLACK,
        }
        # b: danger starts at R3's exposed read, so R1 and R2 stay White.
        assert {s: rfw.color_of("b", s) for s in region.segment_names()} == {
            "R1": NodeColor.WHITE,
            "R2": NodeColor.WHITE,
            "R3": NodeColor.BLACK,
            "R4": NodeColor.BLACK,
        }

    def test_rfw_sets(self, fig2):
        _, region, labeling = fig2
        rfw = labeling.rfw
        assert rfw.rfw_set("R1") == {"x"}
        assert rfw.rfw_set("R2") == {"b"}
        assert rfw.rfw_set("R3") == set()
        assert rfw.rfw_set("R4") == set()

    def test_subscripted_subscript_excluded_from_rfw(self, fig2):
        # k(c(1)) in R1: White node, Write mark -- but the address is
        # not statically deterministic, so it is not an RFW (the paper's
        # same-address requirement for K(E) in Figure 2).
        _, region, labeling = fig2
        rfw = labeling.rfw
        assert rfw.mark_of("k", "R1") is NodeMark.WRITE
        assert rfw.color_of("k", "R1") is NodeColor.WHITE
        assert "k" not in rfw.rfw_set("R1")
        (k_write,) = refs_of(region, "k", AccessType.WRITE)
        assert not rfw.is_rfw(k_write)

    def test_labels(self, fig2):
        _, region, labeling = fig2
        assert not labeling.fully_independent
        assert labeling.read_only_vars == {"a", "c"}
        by_uid = {
            ref.uid.split(".", 1)[1]: labeling.label_of(ref)
            for ref in region.references
        }
        # Theorem 1: R1's x write and R2's b write are RFW and sink no
        # cross-segment dependence -> idempotent; R3's x write and R4's
        # b write are Black -> speculative.
        assert by_uid["R1.w1"] is RefLabel.IDEMPOTENT
        assert by_uid["R2.w1"] is RefLabel.IDEMPOTENT
        assert by_uid["R3.w2"] is RefLabel.SPECULATIVE
        assert by_uid["R4.w2"] is RefLabel.SPECULATIVE
        # Theorem 2: the exposed reads all sink cross-segment flow
        # dependences -> speculative; read-only reads are idempotent.
        assert by_uid["R2.r0"] is RefLabel.SPECULATIVE
        assert by_uid["R3.r0"] is RefLabel.SPECULATIVE
        assert by_uid["R4.r0"] is RefLabel.SPECULATIVE
        for ref in region.references:
            if ref.variable in ("a", "c"):
                assert labeling.category_of(ref) is IdempotencyCategory.READ_ONLY


# ----------------------------------------------------------------------
# Theorem 1 / Theorem 2 on loop regions.
# ----------------------------------------------------------------------
class TestTheorem1Writes:
    def test_rfw_write_without_cross_sink_is_idempotent(self):
        src = """
program t1
  real m(16), b(16) = 1.0, s
  region R do k = 2, 16
    m(k) = b(k) + 1
    s = s + b(k)
    liveout m, s
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        assert not labeling.fully_independent
        (m_write,) = refs_of(region, "m", AccessType.WRITE)
        assert labeling.rfw.is_rfw(m_write)
        assert not labeling.dependences.is_cross_segment_sink(m_write)
        assert labeling.label_of(m_write) is RefLabel.IDEMPOTENT
        assert (
            labeling.category_of(m_write)
            is IdempotencyCategory.SHARED_DEPENDENT
        )

    def test_cross_segment_sink_write_stays_speculative(self):
        src = """
program t1b
  real x(16), b(16) = 1.0
  region R do k = 2, 16
    x(k) = b(k) + 1
    x(k-1) = b(k) * 2
    liveout x
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        writes = refs_of(region, "x", AccessType.WRITE)
        by_sub = {str(w.subscripts[0]): w for w in writes}
        w_k = by_sub["k"]
        w_km1 = by_sub["(k - 1)"]
        # Both writes are RFWs (x is marked Write with deterministic
        # addresses), but only the x(k-1) write sinks a cross-segment
        # output dependence (the older segment's x(k) write hits the
        # same element) -> Theorem 1 splits them.
        assert labeling.rfw.is_rfw(w_k) and labeling.rfw.is_rfw(w_km1)
        assert not labeling.dependences.is_cross_segment_sink(w_k)
        assert labeling.dependences.is_cross_segment_sink(w_km1)
        assert labeling.label_of(w_k) is RefLabel.IDEMPOTENT
        assert labeling.label_of(w_km1) is RefLabel.SPECULATIVE


class TestTheorem2Reads:
    def test_read_covered_by_idempotent_write_is_idempotent(self):
        src = """
program t2
  real a(16), b(16) = 1.0, c(16), s
  region R do k = 2, 16
    a(k) = b(k) + 1
    c(k) = a(k) * 2
    s = s + c(k-1)
    liveout a, c, s
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        assert not labeling.fully_independent
        (a_read,) = refs_of(region, "a", AccessType.READ)
        (a_write,) = refs_of(region, "a", AccessType.WRITE)
        # Every dependence sinking into the a(k) read is intra-segment
        # with the (idempotent) a(k) write as source -> idempotent.
        assert labeling.label_of(a_write) is RefLabel.IDEMPOTENT
        assert labeling.label_of(a_read) is RefLabel.IDEMPOTENT

    def test_inner_loop_carried_accumulation_read_is_speculative(self):
        # Regression for the intra-segment direction bug: the first
        # y(k) read is fed by the y(k) write of the *previous inner
        # iteration* -- an intra-segment dependence against textual
        # order.  Labeling it idempotent made the CASE engine read a
        # stale value straight from memory.
        src = """
program t2b
  real y(16), b(4) = 1.0
  region R do k = 2, 16
    do t = 1, 4
      y(k) = y(k) + b(t) + 0.1 * y(k-1)
    end do
    liveout y
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        reads = refs_of(region, "y", AccessType.READ)
        same_k_reads = [r for r in reads if str(r.subscripts[0]) == "k"]
        assert same_k_reads, "expected a y(k) read"
        for read in same_k_reads:
            assert labeling.label_of(read) is RefLabel.SPECULATIVE

    def test_written_scalar_in_subscript_voids_the_pin(self):
        # Regression: `a(t + m)` with `m` decremented by the inner loop
        # touches the SAME address every iteration (t + m is constant),
        # so the write of iteration t feeds the read of iteration t+1
        # even though t looks like a pinning index.  Only symbols that
        # are invariant in the region may support the pinned-dimension
        # refinement.
        src = """
program t2d
  real a(16), m, s(16) = 1.0
  region R do k = 2, 16
    m = 3
    do t = 1, 3
      a(t + m) = a(t + m) + s(k)
      m = m - 1
    end do
    liveout a, m
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        a_reads = refs_of(region, "a", AccessType.READ)
        (a_write,) = refs_of(region, "a", AccessType.WRITE)
        assert a_reads
        flow_into_read = [
            dep
            for read in a_reads
            for dep in labeling.dependences.deps_with_sink(read)
            if dep.source is a_write and not dep.is_cross_segment
        ]
        assert flow_into_read, "inner-loop-carried flow dep must be emitted"
        for read in a_reads:
            assert labeling.label_of(read) is RefLabel.SPECULATIVE

    def test_unreferenced_sink_free_read_is_idempotent(self):
        src = """
program t2c
  real y(16) = 1.0, z(16), s
  region R do k = 2, 16
    z(k) = y(k) * 2
    s = s + z(k-1)
    liveout z, s
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        (y_read,) = refs_of(region, "y", AccessType.READ)
        assert labeling.label_of(y_read) is RefLabel.IDEMPOTENT
        assert labeling.category_of(y_read) is IdempotencyCategory.READ_ONLY


class TestFullyIndependentAndPrivate:
    def test_fully_independent_region_labels_everything(self):
        src = """
program ind
  real a(8, 16) = 0.5, b(8) = 1.5, c(16)
  region R do k = 1, 16
    do i = 1, 8
      c(k) = c(k) + a(i, k) * b(i)
    end do
    liveout c
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        assert labeling.fully_independent
        assert labeling.static_fraction_idempotent() == 1.0
        cats = labeling.counts_by_category()
        assert IdempotencyCategory.NOT_IDEMPOTENT not in cats
        assert cats.get(IdempotencyCategory.FULLY_INDEPENDENT, 0) > 0

    def test_private_scalar_categorised(self):
        src = """
program priv
  real a(16), b(16) = 1.0, s, t
  region R do k = 2, 16
    t = b(k) * 2
    a(k) = t + 1
    s = s + a(k-1)
    liveout a, s
  end region
end program
"""
        program = parse_program(src)
        region = program.regions[0]
        labeling = label_region(region, program=program)
        assert "t" in labeling.private_vars
        for ref in refs_of(region, "t"):
            assert labeling.label_of(ref) is RefLabel.IDEMPOTENT
            assert labeling.category_of(ref) is IdempotencyCategory.PRIVATE


# ----------------------------------------------------------------------
# Live-out precedence (regression).
# ----------------------------------------------------------------------
class TestLiveOutPrecedence:
    SRC = """
program lo
  real a(16), b(16) = 1.0, s, u, checksum
  region R do k = 2, 16
    u = b(k) * 2
    a(k) = u + 1
    s = s + a(k-1)
    liveout a
  end region
  finale
    checksum = s + u + a(2)
  end finale
end program
"""

    def test_declared_live_out_beats_program_derived(self):
        # The finale reads `s` and `u`, so program-derived liveness
        # would say {a, s, u}; the explicit declaration `liveout a`
        # must win.
        program = parse_program(self.SRC)
        region = program.regions[0]
        assert region.live_out == {"a"}
        labeling = label_region(region, program=program)
        assert labeling.live_out == {"a"}
        # With u dead after the region, u becomes privatizable and its
        # references are labeled idempotent-private.
        assert "u" in labeling.private_vars
        for ref in refs_of(region, "u"):
            assert labeling.category_of(ref) is IdempotencyCategory.PRIVATE

    def test_explicit_argument_beats_declaration(self):
        program = parse_program(self.SRC)
        region = program.regions[0]
        labeling = label_region(
            region, program=program, live_out={"a", "s", "u"}
        )
        assert labeling.live_out == {"a", "s", "u"}
        assert "u" not in labeling.private_vars

    def test_program_context_used_without_declaration(self):
        src = self.SRC.replace("    liveout a\n", "")
        program = parse_program(src)
        region = program.regions[0]
        assert region.live_out is None
        labeling = label_region(region, program=program)
        assert {"a", "s", "u"} <= labeling.live_out
        assert "u" not in labeling.private_vars


# ----------------------------------------------------------------------
# analyze_rfw entry points and the report aggregation.
# ----------------------------------------------------------------------
class TestAnalyzeRfwDiamond:
    SRC = """
program diamond
  real p = 1.0, y, z, w
  region D explicit
    segment S0
      p = p + 1
      branch (p > 1.5)
    end segment
    segment S1
      y = p * 2
      z = 1.0
    end segment
    segment S2
      z = 2.0
    end segment
    segment S3
      w = y + z
    end segment
    edges S0 -> S1, S2
    edges S1 -> S3
    edges S2 -> S3
    liveout w
  end region
end program
"""

    def test_path_sensitive_coloring(self):
        program = parse_program(self.SRC)
        region = program.regions[0]
        rfw = analyze_rfw(region, {"w"})
        # y is written only on the S1 path; the S2 path reaches S3's
        # exposed read of y without rewriting it, so S0's successors are
        # dangerous for y and every descendant of S0 is Black.
        for segment in ("S1", "S2", "S3"):
            assert rfw.color_of("y", segment) is NodeColor.BLACK
        assert "y" not in rfw.rfw_set("S1")
        # z is written on *both* paths before the exposed read, so the
        # writes stay White and both are RFW.
        assert rfw.color_of("z", "S1") is NodeColor.WHITE
        assert rfw.color_of("z", "S2") is NodeColor.WHITE
        assert rfw.rfw_set("S1") == {"z"}
        assert rfw.rfw_set("S2") == {"z"}


class TestReportCounts:
    def make_labeling(self):
        src = """
program rep
  real a(16), b(16) = 1.0, s
  region R do k = 2, 16
    a(k) = b(k) + 1
    s = s + a(k-1)
    liveout a, s
  end region
end program
"""
        program = parse_program(src)
        return program, label_region(
            program.regions[0], program=program
        )

    def test_static_counts_sum_to_reference_total(self):
        program, labeling = self.make_labeling()
        counts = count_static_references(labeling)
        assert counts.total == len(labeling.region.references)
        assert 0.0 < counts.fraction_idempotent < 1.0

    def test_as_dict_separates_counts_from_fractions(self):
        program, labeling = self.make_labeling()
        payload = count_static_references(labeling).as_dict()
        assert set(payload) == {"counts", "fractions"}
        counts, fractions = payload["counts"], payload["fractions"]
        assert counts["total_references"] == len(labeling.region.references)
        # Every fraction is a true fraction; raw counts never leak in.
        assert all(0.0 <= v <= 1.0 for v in fractions.values())
        assert "total_references" not in fractions
        assert fractions["idempotent"] == pytest.approx(
            labeling.static_fraction_idempotent()
        )
        # Counts and fractions agree per category.
        for key, count in counts.items():
            if key == "total_references":
                continue
            assert fractions[key] == pytest.approx(
                count / counts["total_references"]
            )

    def test_dynamic_counts_weighted_by_execution(self):
        program, labeling = self.make_labeling()
        result = run_program(program)
        dynamic = count_dynamic_references(
            labeling, result.stats.reference_counts
        )
        assert dynamic.total == sum(
            result.stats.reference_counts.get(ref.uid, 0)
            for ref in labeling.region.references
        )

    def test_merge_counts(self):
        a = CategoryCounts()
        a.add(IdempotencyCategory.READ_ONLY, 2)
        b = CategoryCounts()
        b.add(IdempotencyCategory.READ_ONLY, 3)
        b.add(IdempotencyCategory.NOT_IDEMPOTENT, 1)
        merged = merge_counts([a, b])
        assert merged.count(IdempotencyCategory.READ_ONLY) == 5
        assert merged.total == 6
        assert merged.idempotent_total == 5


# ----------------------------------------------------------------------
# Regressions found by the differential label-soundness checker
# (python -m repro.check); each test pins one minimized fuzz finding.
# ----------------------------------------------------------------------
class TestCheckerRegressions:
    def test_strided_inner_loop_does_not_cover_gap_read(self):
        """A stride-2 write claims no coverage of the skipped addresses.

        ``_loop_bounds`` used to return the full [lo, hi] interval for
        |step| > 1, so ``a(2)`` counted as covered by the writes to
        a(1), a(3), a(5), a(7) and the variable was marked Write.
        """
        from repro.analysis.access import summarize_segment, write_covers_read

        program = parse_program(
            """
            program stride
            real a(8)
            real s

            init
              do t = 1, 8
                a(t) = t
              end do
              s = 0.0
            end init

            region R do i = 1, 2
              do t = 1, 7, 2
                a(t) = 1.0
              end do
              s = s + a(2)
            end region

            finale
              s = s + a(1)
            end finale
            end program
            """
        )
        region = program.regions[0]
        write = next(
            r
            for r in region.references
            if r.variable == "a" and r.access is AccessType.WRITE
        )
        read = next(
            r
            for r in region.references
            if r.variable == "a" and r.access is AccessType.READ
        )
        assert not write_covers_read(write, read, region.index, set())
        summary = summarize_segment(
            region.references, "<iteration>", region_index=region.index
        )
        assert summary.mark("a") is NodeMark.READ  # exposed, not covered

    def test_unit_stride_inner_loop_still_covers(self):
        """|step| == 1 coverage (forward and backward) is unaffected."""
        from repro.analysis.access import write_covers_read

        program = parse_program(
            """
            program unit
            real a(8)
            real s

            init
              s = 0.0
            end init

            region R do i = 1, 2
              do t = 7, 1, -1
                a(t) = 1.0
              end do
              s = s + a(2)
            end region

            finale
              s = s + a(1)
            end finale
            end program
            """
        )
        region = program.regions[0]
        write = next(
            r
            for r in region.references
            if r.variable == "a" and r.access is AccessType.WRITE
        )
        read = next(
            r
            for r in region.references
            if r.variable == "a" and r.access is AccessType.READ
        )
        assert write_covers_read(write, read, region.index, set())

    def test_backward_loop_constant_trip_count(self):
        """``-1`` parses as unary minus; trip counts must fold it.

        ``constant_trip_count`` used to require ``Const`` steps, so any
        backward loop reported ``None`` and downstream liveness lost
        its kill set (a dead scalar stayed live, blocking privatization
        in the preceding region).
        """
        program = parse_program(
            """
            program back
            real a(8)
            real s

            init
              s = 0.0
            end init

            region R do i = 6, 1, -1
              a(i) = s
            end region

            finale
              s = s + a(3)
            end finale
            end program
            """
        )
        region = program.regions[0]
        assert region.constant_trip_count() == 6

    def test_const_int_folds_unary_minus(self):
        from repro.ir.expr import Const, UnaryOp, Var, const_int

        assert const_int(Const(3)) == 3
        assert const_int(UnaryOp("-", Const(2))) == -2
        assert const_int(UnaryOp("-", UnaryOp("-", Const(2)))) == 2
        assert const_int(Var("n")) is None
        assert const_int(Const(2.5)) is None

    def test_fully_independent_array_accumulator_is_lemma7(self):
        """``a(i) = c + a(i)`` in a fully independent region.

        The read-modify-write makes every reference non-re-executable
        in isolation, yet the production labeler marks the whole region
        idempotent: with no cross-instance dependences no roll-back can
        occur (Lemma 7), so the labels are never exercised by a squash.
        The labeling must claim full independence -- the checker's
        dynamic oracle separately verifies that premise.
        """
        program = parse_program(
            """
            program lemma7
            real a(8)
            real s

            init
              do t = 1, 8
                a(t) = t
              end do
              s = 0.0
            end init

            region R do i = 1, 3
              a(i) = 6.0 + a(i)
            end region

            finale
              s = s + a(2)
            end finale
            end program
            """
        )
        region = program.regions[0]
        labeling = label_region(region, program=program)
        assert labeling.fully_independent
        assert all(labeling.is_idempotent(r) for r in region.references)

    def test_explicit_segment_kill_does_not_hide_older_segment_read(self):
        """Live-out scan must walk explicit segments in listing order.

        ``region_live_out`` used to sort a following explicit region's
        references by their per-segment ``order`` alone, interleaving
        the segments: S1's unconditional kill of ``s`` (order 0) was
        scanned before S0's read of ``s`` (order 1), so ``s`` dropped
        out of the live-out set and was wrongly privatized.  Minimized
        from fuzzed programs 370/474 of seed 20260807.
        """
        from repro.analysis.liveness import region_live_out

        program = parse_program(
            """
            program liveorder
            real a(8)
            real s

            init
              do t = 1, 8
                a(t) = t
              end do
              s = 0.5
            end init

            region R0 do i = 1, 4
              s = a(i)
            end region

            region R1 explicit
              segment S0
                a(1) = s + 1.0
              end segment
              segment S1
                s = a(2)
              end segment
              edges S0 -> S1
            end region

            finale
              s = s + a(1)
            end finale
            end program
            """
        )
        r0 = program.regions[0]
        assert "s" in region_live_out(program, r0)
        labeling = label_region(r0, program=program)
        assert "s" not in labeling.private_vars

    def test_maybe_skipped_writes_do_not_kill_liveness(self):
        """Only certainly executed scalar writes kill downstream reads.

        A kill inside a later loop with a non-positive or symbolic trip
        count (here ``do i = 1, 0``) may never execute; the finale read
        of ``s`` must keep ``s`` live out of R0.
        """
        from repro.analysis.liveness import region_live_out

        program = parse_program(
            """
            program zerokill
            real a(8)
            real s

            init
              do t = 1, 8
                a(t) = t
              end do
              s = 0.5
            end init

            region R0 do i = 1, 4
              s = a(i)
            end region

            region R1 do i = 1, 0
              s = a(i)
            end region

            finale
              s = s + 1.0
            end finale
            end program
            """
        )
        assert "s" in region_live_out(program, program.regions[0])
