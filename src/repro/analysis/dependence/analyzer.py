"""Dependence analysis driver.

Builds the :class:`~repro.analysis.dependence.graph.DependenceGraph` of
one region, reference by reference.  Two knobs exist, both of which the
paper's evaluation implicitly fixes:

* :class:`DependenceGranularity` -- ``ELEMENT`` applies the subscript
  tests of :mod:`repro.analysis.dependence.subscript_tests`; ``VARIABLE`` treats
  every pair of references to the same variable as may-aliasing (the
  whole-array behaviour of simpler prototypes).
* :class:`DirectionMode` -- ``EXECUTION`` orients cross-segment
  dependences by actual execution order (older segment is the source),
  which is the sound interpretation of the paper's definitions;
  ``TEXTUAL`` orients them by textual program order inside the segment
  body, which reproduces the narrative of the paper's Figure 4 for the
  count-down APPLU ``BUTS_DO1`` loop (see DESIGN.md for the discussion
  of this deviation).

Variables recognised as *private* carry no cross-segment dependences
(each segment gets its own copy at run time), so their cross-segment
pairs are suppressed; intra-segment dependences are kept.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.access import linear_terms
from repro.analysis.cache import AnalysisCache
from repro.analysis.dependence.graph import (
    Dependence,
    DependenceGraph,
    dependence_kind,
)
from repro.analysis.dependence.signature import SignatureIndex
from repro.analysis.dependence.subscript_tests import (
    ALL_RELATIONS,
    AliasRelation,
    RelationSet,
    explicit_pair_may_alias,
    relation_of_reference_pair,
)
from repro.analysis.readonly import read_only_variables
from repro.ir.reference import MemoryReference
from repro.ir.region import ExplicitRegion, LoopRegion, Region
from repro.ir.types import AccessType, DependenceScope


def _subscript_facts(ref: MemoryReference, memo: Dict[str, tuple]) -> tuple:
    """Cached (textual subscripts, affine decompositions) of one reference.

    Computed once per reference per analysis run -- the pair loops below
    consult these facts O(n^2) times per variable.
    """
    facts = memo.get(ref.uid)
    if facts is None:
        facts = (
            tuple(str(s) for s in ref.subscripts),
            [linear_terms(s) for s in ref.subscripts],
        )
        memo[ref.uid] = facts
    return facts


def _intra_reverse_may_alias(
    ref_a: MemoryReference,
    ref_b: MemoryReference,
    invariant: Set[str],
    memo: Dict[str, tuple],
) -> bool:
    """May an *instance* of the textually-later reference execute before
    an instance of the textually-earlier one within a single segment?

    Within one segment execution the two references interleave only when
    both sit inside a common inner ``DO`` loop: iteration ``t`` of the
    loop runs the textually-later reference before iteration ``t+1``
    runs the textually-earlier one, so a may-alias across iterations is
    a real intra-segment dependence *against* textual order (e.g. the
    accumulation ``y(k) = y(k) + ...`` repeated by an inner loop, where
    the write of iteration ``t`` feeds the read of iteration ``t+1``).

    The one refinement: when the two references have structurally
    identical subscripts and every shared inner index is pinned by a
    dimension of its own (nonzero affine coefficient, no other shared
    index in that dimension, every other symbol in ``invariant`` -- the
    region index and region-read-only scalars, whose values cannot
    change between the two instances), distinct iterations touch
    distinct addresses and aliasing forces the *same* instance -- where
    textual order decides and no reverse dependence exists.  A symbol
    written inside the region (e.g. a scalar decremented by the inner
    loop) voids the pin: ``a(t + m)`` with ``m`` counting down touches
    the same address every iteration.
    """
    shared = [do for do in ref_a.enclosing_loops if do in ref_b.enclosing_loops]
    if not shared:
        return False
    subs_a, dims = _subscript_facts(ref_a, memo)
    subs_b, _ = _subscript_facts(ref_b, memo)
    if subs_a == subs_b and ref_a.subscripts:
        shared_indices = {do.index for do in shared}
        if all(d is not None for d in dims):
            pinned: Set[str] = set()
            for coeffs, _const in dims:
                involved = {
                    name
                    for name, coeff in coeffs.items()
                    if coeff != 0 and name in shared_indices
                }
                others_invariant = all(
                    name in shared_indices or name in invariant
                    for name, coeff in coeffs.items()
                    if coeff != 0
                )
                if len(involved) == 1 and others_invariant:
                    pinned |= involved
            if shared_indices <= pinned:
                return False
    return True


def _emit_intra_segment(
    graph: DependenceGraph,
    ref_a: MemoryReference,
    ref_b: MemoryReference,
    variable: str,
    invariant: Set[str],
    memo: Dict[str, tuple],
) -> None:
    """Intra-segment dependences of one aliasing pair.

    Program order decides the direction for same-instance aliasing; a
    shared inner loop additionally interleaves the instances, making
    the reverse direction real (see :func:`_intra_reverse_may_alias`).
    """
    source, sink = (
        (ref_a, ref_b) if ref_a.order < ref_b.order else (ref_b, ref_a)
    )
    pairs = (
        ((source, sink), (sink, source))
        if _intra_reverse_may_alias(ref_a, ref_b, invariant, memo)
        else ((source, sink),)
    )
    for src, snk in pairs:
        kind = dependence_kind(src, snk)
        if kind is not None:
            graph.add(
                Dependence(
                    source=src,
                    sink=snk,
                    kind=kind,
                    scope=DependenceScope.INTRA_SEGMENT,
                    variable=variable,
                    distance=0,
                )
            )


class DependenceGranularity(enum.Enum):
    """Precision of the aliasing decision."""

    ELEMENT = "element"
    VARIABLE = "variable"


class DirectionMode(enum.Enum):
    """How cross-segment dependences are oriented."""

    EXECUTION = "execution"
    TEXTUAL = "textual"


@dataclass
class DependenceAnalyzer:
    """Configurable reference-by-reference dependence analyser.

    ``fast_path`` enables the signature-bucketed relation memoization of
    :mod:`repro.analysis.dependence.signature` (identical results, far
    fewer subscript tests); disable it to run the original pair-by-pair
    tests, e.g. for baseline measurements.  ``cache`` memoizes whole
    dependence graphs (and signature indexes) across analysis passes.
    """

    granularity: DependenceGranularity = DependenceGranularity.ELEMENT
    direction: DirectionMode = DirectionMode.EXECUTION
    fast_path: bool = True
    cache: Optional[AnalysisCache] = None

    # ------------------------------------------------------------------
    def analyze(
        self,
        region: Region,
        private_variables: Optional[Set[str]] = None,
        read_only: Optional[Set[str]] = None,
    ) -> DependenceGraph:
        """Build the dependence graph of ``region``."""
        private_variables = set(private_variables or ())
        if read_only is None:
            if self.cache is not None:
                read_only = self.cache.get_or_compute(
                    region, "read_only", lambda: read_only_variables(region)
                )
            else:
                read_only = read_only_variables(region)
        if self.cache is not None:
            key = (
                "dependence_graph",
                self.granularity,
                self.direction,
                frozenset(private_variables),
                frozenset(read_only),
            )
            return self.cache.get_or_compute(
                region,
                key,
                lambda: self._build(region, private_variables, read_only),
            )
        return self._build(region, private_variables, read_only)

    def _build(
        self,
        region: Region,
        private_variables: Set[str],
        read_only: Set[str],
    ) -> DependenceGraph:
        graph = DependenceGraph(region.name)
        if isinstance(region, LoopRegion):
            self._analyze_loop(region, graph, private_variables, read_only)
        elif isinstance(region, ExplicitRegion):
            self._analyze_explicit(region, graph, private_variables, read_only)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown region type {type(region).__name__}")
        return graph

    def _signature_index(
        self, region: LoopRegion, read_only: Set[str]
    ) -> SignatureIndex:
        """Signature index for ``region`` (shared through the cache)."""
        invariant = frozenset(read_only)

        def build() -> SignatureIndex:
            return SignatureIndex(region=region, invariant_symbols=invariant)

        if self.cache is not None:
            return self.cache.get_or_compute(
                region, ("signature_index", invariant), build
            )
        return build()

    # ------------------------------------------------------------------
    # loop regions
    # ------------------------------------------------------------------
    def _analyze_loop(
        self,
        region: LoopRegion,
        graph: DependenceGraph,
        private_variables: Set[str],
        read_only: Set[str],
    ) -> None:
        by_var: Dict[str, List[MemoryReference]] = {}
        for ref in region.references:
            by_var.setdefault(ref.variable, []).append(ref)

        index: Optional[SignatureIndex] = None
        if self.fast_path and self.granularity is DependenceGranularity.ELEMENT:
            index = self._signature_index(region, read_only)

        # Names whose values cannot change between two instances within
        # one segment: the region index and region-read-only scalars.
        invariant = set(read_only) | {region.index}
        memo: Dict[str, tuple] = {}

        for variable, refs in by_var.items():
            writes = [r for r in refs if r.access is AccessType.WRITE]
            if not writes:
                continue  # read-only variables carry no dependences
            refs_sorted = sorted(refs, key=lambda r: r.order)
            groups: Optional[List[int]] = None
            if index is not None:
                groups = [index.group_of(r) for r in refs_sorted]
            for i, ref_a in enumerate(refs_sorted):
                a_is_read = ref_a.access is AccessType.READ
                for j in range(i, len(refs_sorted)):
                    ref_b = refs_sorted[j]
                    if a_is_read and ref_b.access is AccessType.READ:
                        continue
                    if groups is not None:
                        relations = index.relations_of_groups(groups[i], groups[j])
                    else:
                        relations = self._loop_relations(
                            ref_a, ref_b, region, read_only
                        )
                    if not relations:
                        continue
                    self._emit_loop_dependences(
                        graph,
                        ref_a,
                        ref_b,
                        relations,
                        variable,
                        private_variables,
                        invariant,
                        memo,
                    )

    def _loop_relations(
        self,
        ref_a: MemoryReference,
        ref_b: MemoryReference,
        region: LoopRegion,
        read_only: Set[str],
    ) -> RelationSet:
        if self.granularity is DependenceGranularity.VARIABLE:
            return ALL_RELATIONS
        return relation_of_reference_pair(ref_a, ref_b, region, read_only)

    def _emit_loop_dependences(
        self,
        graph: DependenceGraph,
        ref_a: MemoryReference,
        ref_b: MemoryReference,
        relations: RelationSet,
        variable: str,
        private_variables: Set[str],
        invariant: Set[str],
        memo: Dict[str, tuple],
    ) -> None:
        # Intra-segment dependences (same iteration).
        if AliasRelation.SAME in relations and ref_a is not ref_b:
            _emit_intra_segment(graph, ref_a, ref_b, variable, invariant, memo)

        # Cross-segment dependences.
        if variable in private_variables:
            return
        carried = relations & {AliasRelation.BEFORE, AliasRelation.AFTER}
        if not carried:
            return
        if self.direction is DirectionMode.TEXTUAL:
            source, sink = (
                (ref_a, ref_b) if ref_a.order <= ref_b.order else (ref_b, ref_a)
            )
            kind = dependence_kind(source, sink)
            if kind is not None:
                graph.add(
                    Dependence(
                        source=source,
                        sink=sink,
                        kind=kind,
                        scope=DependenceScope.CROSS_SEGMENT,
                        variable=variable,
                    )
                )
            return
        # Execution-order direction: BEFORE means ref_a's segment is older.
        if AliasRelation.BEFORE in relations:
            kind = dependence_kind(ref_a, ref_b)
            if kind is not None:
                graph.add(
                    Dependence(
                        source=ref_a,
                        sink=ref_b,
                        kind=kind,
                        scope=DependenceScope.CROSS_SEGMENT,
                        variable=variable,
                    )
                )
        if AliasRelation.AFTER in relations and ref_a is not ref_b:
            kind = dependence_kind(ref_b, ref_a)
            if kind is not None:
                graph.add(
                    Dependence(
                        source=ref_b,
                        sink=ref_a,
                        kind=kind,
                        scope=DependenceScope.CROSS_SEGMENT,
                        variable=variable,
                    )
                )

    # ------------------------------------------------------------------
    # explicit regions
    # ------------------------------------------------------------------
    def _analyze_explicit(
        self,
        region: ExplicitRegion,
        graph: DependenceGraph,
        private_variables: Set[str],
        read_only: Set[str],
    ) -> None:
        from repro.analysis.cfg import SegmentGraph

        segment_graph = SegmentGraph.from_region(region)
        reachable: Dict[str, Set[str]] = {
            name: segment_graph.reachable_from(name)
            for name in region.segment_names()
        }
        by_var: Dict[str, List[MemoryReference]] = {}
        for ref in region.references:
            by_var.setdefault(ref.variable, []).append(ref)

        # Explicit regions have no region index; only region-read-only
        # scalars are invariant between two instances within one segment.
        memo: Dict[str, tuple] = {}

        for variable, refs in by_var.items():
            writes = [r for r in refs if r.access is AccessType.WRITE]
            if not writes:
                continue
            for ref_a, ref_b in itertools.combinations(refs, 2):
                if (
                    ref_a.access is AccessType.READ
                    and ref_b.access is AccessType.READ
                ):
                    continue
                if self.granularity is DependenceGranularity.ELEMENT:
                    if not explicit_pair_may_alias(ref_a, ref_b):
                        continue
                if ref_a.segment == ref_b.segment:
                    _emit_intra_segment(
                        graph, ref_a, ref_b, variable, read_only, memo
                    )
                else:
                    if variable in private_variables:
                        continue
                    age_a = region.age_of(ref_a.segment)
                    age_b = region.age_of(ref_b.segment)
                    source, sink = (
                        (ref_a, ref_b) if age_a < age_b else (ref_b, ref_a)
                    )
                    # Segments on mutually exclusive control-flow paths can
                    # never both appear in a final execution, so no data
                    # dependence connects them (the RFW analysis separately
                    # accounts for stale values left by wrong-path writes).
                    if sink.segment not in reachable.get(source.segment, set()):
                        continue
                    kind = dependence_kind(source, sink)
                    if kind is not None:
                        graph.add(
                            Dependence(
                                source=source,
                                sink=sink,
                                kind=kind,
                                scope=DependenceScope.CROSS_SEGMENT,
                                variable=variable,
                                distance=abs(age_b - age_a),
                            )
                        )


def analyze_dependences(
    region: Region,
    private_variables: Optional[Set[str]] = None,
    read_only: Optional[Set[str]] = None,
    granularity: DependenceGranularity = DependenceGranularity.ELEMENT,
    direction: DirectionMode = DirectionMode.EXECUTION,
    fast_path: bool = True,
    cache: Optional[AnalysisCache] = None,
) -> DependenceGraph:
    """Convenience wrapper around :class:`DependenceAnalyzer`."""
    analyzer = DependenceAnalyzer(
        granularity=granularity,
        direction=direction,
        fast_path=fast_path,
        cache=cache,
    )
    return analyzer.analyze(
        region, private_variables=private_variables, read_only=read_only
    )
