"""Sequential reference interpreter.

Executes a whole :class:`~repro.ir.program.Program` against a single
:class:`~repro.runtime.memory.MemoryImage` in sequential program order:
init section, every region segment by segment (loop iterations in
iteration order, explicit segments following their control-flow edges),
then the finale.  It is the ground truth all speculative engines are
checked against and the workhorse the benchmark harness drives.

Two execution paths produce identical operation streams:

* the coroutine interpreter of :mod:`repro.runtime.executor` (always
  available), and
* the trace record-and-replay fast path of :mod:`repro.runtime.trace`,
  used for loop regions whose control flow is input-independent; the
  body schedule is recorded on entry to the region and replayed for
  every iteration, bypassing AST re-interpretation.

``use_replay=False`` (the benchmark harness's ``--no-fast-path``)
forces the interpreter path everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.ir.program import Program
from repro.ir.region import (
    EXIT_NODE,
    LOOP_BODY_SEGMENT,
    ExplicitRegion,
    LoopRegion,
    Region,
)
from repro.ir.stmt import Statement
from repro.ir.symbols import SymbolError
from repro.runtime.errors import (
    AddressError,
    EngineLivelockError,
    SimulationError,
)
from repro.runtime.executor import (
    ReadOp,
    SegmentCoroutine,
    WriteOp,
    evaluate_expression,
    segment_coroutine,
)
from repro.runtime.memory import MemoryHierarchy, MemoryImage, MemoryLatencies
from repro.runtime.stats import ExecutionStats
from repro.runtime.trace import (
    SegmentTrace,
    TraceError,
    record_trace,
    replay_segment,
)

#: Safety valve for explicit regions whose edges form a cycle.
MAX_EXPLICIT_STEPS = 100_000

#: Pseudo segment names reported to observers for the serial sections.
INIT_SEGMENT = "<init>"
FINALE_SEGMENT = "<finale>"


class ExecutionObserver:
    """Passive observer of one sequential execution.

    Subclass and override; every method is a no-op by default.  The
    interpreter reports each segment instance (loop iteration, explicit
    segment execution, or the init/finale serial sections with
    ``region=None``) and, inside it, every memory operation with its
    resolved flat ``(variable, offset)`` address.  Reads evaluated
    outside segment bodies (region loop bounds, explicit branch
    conditions) go through ``MemoryImage.read`` directly and are *not*
    reported.
    """

    def begin_segment(
        self, region: Optional[str], segment: str, instance: int
    ) -> None:
        """A segment instance is about to execute."""

    def end_segment(self) -> None:
        """The current segment instance finished."""

    def on_read(self, ref, address, value) -> None:
        """One read: static reference (or None), address, value seen."""

    def on_write(self, ref, address, old_value, new_value) -> None:
        """One write: static reference (or None), address, old and new."""


@dataclass
class SequentialResult:
    """Outcome of one sequential execution."""

    program: str
    memory: MemoryImage
    stats: ExecutionStats
    #: Region name -> True when the trace fast path served its iterations.
    replayed_regions: Dict[str, bool] = field(default_factory=dict)
    #: Region name -> human-readable eligibility note.
    replay_reasons: Dict[str, str] = field(default_factory=dict)

    def value_of(self, variable: str, subscripts: Sequence[int] = ()) -> float:
        """Convenience read of the final memory state."""
        return self.memory.read(variable, subscripts)


class SequentialInterpreter:
    """Sequential executor for complete programs."""

    def __init__(
        self,
        program: Program,
        latencies: Optional[MemoryLatencies] = None,
        op_budget: Optional[int] = None,
        use_replay: bool = True,
        model_latency: bool = True,
        op_hook: Optional[Callable[[str, int], None]] = None,
        compute_cost: Optional[Callable] = None,
        observer: Optional[ExecutionObserver] = None,
    ):
        self.program = program
        self.op_budget = op_budget
        self.use_replay = use_replay
        self.model_latency = model_latency
        #: Optional observer called once per operation as
        #: ``op_hook(kind, cycles)`` with kind "read" / "write" /
        #: "compute" -- how the timing model prices a sequential run.
        self.op_hook = op_hook
        #: Optional executor latency hook (see
        #: :class:`repro.runtime.executor.ExecContext`); replay bakes
        #: default compute costs into traces, so a custom hook forces
        #: the interpreter path.
        self.compute_cost = compute_cost
        #: Optional :class:`ExecutionObserver` fed every segment
        #: instance and memory operation (both execution paths).
        self.observer = observer
        if compute_cost is not None:
            self.use_replay = False
        self.hierarchy = MemoryHierarchy(latencies=latencies)
        self._traces: Dict[str, Optional[SegmentTrace]] = {}

    # ------------------------------------------------------------------
    def run(self) -> SequentialResult:
        """Execute the whole program and return the final state."""
        memory = MemoryImage(self.program.symbols)
        stats = ExecutionStats()
        result = SequentialResult(
            program=self.program.name, memory=memory, stats=stats
        )
        observer = self.observer
        if observer is not None and self.program.init:
            observer.begin_segment(None, INIT_SEGMENT, 0)
        self._run_body(self.program.init, memory, stats)
        if observer is not None and self.program.init:
            observer.end_segment()
        for region in self.program.regions:
            self._run_region(region, memory, stats, result)
        if observer is not None and self.program.finale:
            observer.begin_segment(None, FINALE_SEGMENT, 0)
        self._run_body(self.program.finale, memory, stats)
        if observer is not None and self.program.finale:
            observer.end_segment()
        return result

    # ------------------------------------------------------------------
    def _drive(
        self,
        coroutine: SegmentCoroutine,
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        """Pump one segment coroutine against the shared memory image."""
        # This loop runs once per simulated operation; locals for every
        # attribute that would otherwise be re-looked-up per op.
        hierarchy = self.hierarchy
        access_latency = hierarchy.access_latency if self.model_latency else None
        # Address translation goes straight to the symbol-table cache
        # (SymbolError is re-wrapped below to keep the AddressError
        # contract of MemoryImage.address_of).
        address_of = memory.symbols.address_of
        values = memory._values
        initial_value = memory.initial_value
        ref_counts = stats.reference_counts
        missing = object()
        send = coroutine.send
        op_hook = self.op_hook
        observer = self.observer
        reads = writes = cycles = mem_cycles = 0
        try:
            op = send(None)
            while True:
                cls = type(op)
                if cls is ReadOp:
                    address = address_of(op.variable, op.subscripts)
                    value = values.get(address, missing)
                    if value is missing:
                        value = initial_value(address[0])
                    reads += 1
                    ref = op.ref
                    if ref is not None:
                        uid = ref.uid
                        ref_counts[uid] = ref_counts.get(uid, 0) + 1
                    if access_latency is not None:
                        mem_cycles += access_latency(address)
                    if op_hook is not None:
                        op_hook("read", 0)
                    if observer is not None:
                        observer.on_read(ref, address, value)
                    op = send(value)
                elif cls is WriteOp:
                    address = address_of(op.variable, op.subscripts)
                    new_value = float(op.value)
                    if observer is not None:
                        old_value = values.get(address, missing)
                        if old_value is missing:
                            old_value = initial_value(address[0])
                        observer.on_write(op.ref, address, old_value, new_value)
                    values[address] = new_value
                    writes += 1
                    ref = op.ref
                    if ref is not None:
                        uid = ref.uid
                        ref_counts[uid] = ref_counts.get(uid, 0) + 1
                    if access_latency is not None:
                        mem_cycles += access_latency(address)
                    if op_hook is not None:
                        op_hook("write", 0)
                    op = send(None)
                else:  # ComputeOp
                    cycles += op.cycles
                    if op_hook is not None:
                        op_hook("compute", op.cycles)
                    op = send(None)
        except StopIteration:
            return
        except SymbolError as exc:
            raise AddressError(str(exc)) from exc
        finally:
            stats.reads += reads
            stats.writes += writes
            stats.cycles += cycles + mem_cycles
            stats.memory_latency_cycles += mem_cycles

    def _run_body(
        self,
        body: Sequence[Statement],
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        if not body:
            return
        self._drive(
            segment_coroutine(
                body, op_budget=self.op_budget, compute_cost=self.compute_cost
            ),
            memory,
            stats,
        )

    # ------------------------------------------------------------------
    def _run_region(
        self,
        region: Region,
        memory: MemoryImage,
        stats: ExecutionStats,
        result: SequentialResult,
    ) -> None:
        if isinstance(region, LoopRegion):
            self._run_loop_region(region, memory, stats, result)
        elif isinstance(region, ExplicitRegion):
            self._run_explicit_region(region, memory, stats)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown region type {type(region).__name__}")

    def _trace_for(
        self, region: LoopRegion, memory: MemoryImage, result: SequentialResult
    ) -> Optional[SegmentTrace]:
        """Record (or fetch) the region's trace; ``None`` means interpret."""
        if region.name in self._traces:
            return self._traces[region.name]
        trace: Optional[SegmentTrace] = None
        if self.use_replay:
            # record_trace performs the eligibility check itself (one
            # body walk); an ineligible or oversized body raises.
            try:
                trace = record_trace(
                    region, resolve=lambda name: memory.read(name, ())
                )
                reason = "replayed"
            except TraceError as exc:
                trace = None
                reason = str(exc)
        else:
            reason = "fast path disabled"
        self._traces[region.name] = trace
        result.replayed_regions[region.name] = trace is not None
        result.replay_reasons[region.name] = reason
        return trace

    def _run_loop_region(
        self,
        region: LoopRegion,
        memory: MemoryImage,
        stats: ExecutionStats,
        result: SequentialResult,
    ) -> None:
        reader = memory.read
        lower = int(round(evaluate_expression(region.lower, reader)))
        upper = int(round(evaluate_expression(region.upper, reader)))
        step = int(round(evaluate_expression(region.step, reader)))
        if step == 0:
            raise SimulationError(f"region {region.name!r} has zero step")
        trace = self._trace_for(region, memory, result)
        observer = self.observer
        value = lower
        while (step > 0 and value <= upper) or (step < 0 and value >= upper):
            stats.segments_started += 1
            if trace is not None:
                coroutine = replay_segment(trace, value, op_budget=self.op_budget)
            else:
                coroutine = segment_coroutine(
                    region.body,
                    locals_in_scope={region.index: value},
                    op_budget=self.op_budget,
                    compute_cost=self.compute_cost,
                )
            if observer is not None:
                observer.begin_segment(region.name, LOOP_BODY_SEGMENT, value)
            self._drive(coroutine, memory, stats)
            if observer is not None:
                observer.end_segment()
            stats.segments_committed += 1
            value += step

    def _run_explicit_region(
        self,
        region: ExplicitRegion,
        memory: MemoryImage,
        stats: ExecutionStats,
    ) -> None:
        edges = region.segment_edges()
        observer = self.observer
        current = region.entry
        steps = 0
        while current != EXIT_NODE:
            steps += 1
            if steps > MAX_EXPLICIT_STEPS:
                raise EngineLivelockError(
                    f"explicit region {region.name!r} exceeded "
                    f"{MAX_EXPLICIT_STEPS} segment executions"
                )
            segment = region.segment(current)
            stats.segments_started += 1
            if observer is not None:
                observer.begin_segment(region.name, current, steps - 1)
            self._drive(
                segment_coroutine(
                    segment.body,
                    op_budget=self.op_budget,
                    compute_cost=self.compute_cost,
                ),
                memory,
                stats,
            )
            if observer is not None:
                observer.end_segment()
            stats.segments_committed += 1
            successors = edges.get(current, [])
            if not successors:
                return
            if len(successors) > 1 and segment.branch is not None:
                taken = evaluate_expression(segment.branch, memory.read)
                current = successors[0] if taken else successors[1]
            else:
                current = successors[0]


def run_program(
    program: Program,
    op_budget: Optional[int] = None,
    use_replay: bool = True,
    model_latency: bool = True,
    observer: Optional[ExecutionObserver] = None,
) -> SequentialResult:
    """One-shot sequential execution of ``program``."""
    return SequentialInterpreter(
        program,
        op_budget=op_budget,
        use_replay=use_replay,
        model_latency=model_latency,
        observer=observer,
    ).run()
