"""Expression AST.

Expressions are side-effect free trees built from constants, scalar
reads, array-element reads, unary / binary operators and a small set of
intrinsic functions.  They are used both for right-hand sides of
assignments and for subscripts, loop bounds, guards and branch
conditions.

Evaluation is performed through a *reader* callback so that the
different execution substrates (sequential interpreter, HOSE, CASE) can
intercept every memory read: ``reader(name, subscripts)`` receives the
variable name and a tuple of integer subscript values (empty for
scalars) and returns the value.

The traversal order of :meth:`Expr.reads` defines the program order of
the read references inside one expression and is therefore load-bearing
for dependence analysis and for the speculative engines: subscripts are
read before the array element they index, left operands before right
operands, and intrinsic arguments left to right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Tuple, Union

Number = Union[int, float]
#: Signature of the memory-read callback used by :meth:`Expr.evaluate`.
Reader = Callable[[str, Tuple[int, ...]], Number]


class ExpressionError(Exception):
    """Raised for malformed expressions or evaluation errors."""


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    # -- evaluation ----------------------------------------------------
    def evaluate(self, reader: Reader) -> Number:
        """Evaluate the expression, routing memory reads through ``reader``."""
        raise NotImplementedError

    # -- structural queries --------------------------------------------
    def reads(self) -> Iterator["ReadOccurrence"]:
        """Yield every memory-read occurrence in evaluation order."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    def variables(self) -> set:
        """Names of all variables read anywhere in the expression."""
        return {occ.name for occ in self.reads()}

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- misc ----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True)
class ReadOccurrence:
    """One textual read occurrence inside an expression.

    ``subscripts`` are the (unevaluated) subscript expressions: an empty
    tuple denotes a scalar read.
    """

    name: str
    subscripts: Tuple[Expr, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.subscripts)


# ----------------------------------------------------------------------
# Leaf nodes
# ----------------------------------------------------------------------
class Const(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            raise ExpressionError(f"constant must be a number, got {value!r}")
        self.value = value

    def evaluate(self, reader: Reader) -> Number:
        return self.value

    def reads(self) -> Iterator[ReadOccurrence]:
        return iter(())

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class Var(Expr):
    """A scalar variable read."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ExpressionError("variable name must be non-empty")
        self.name = name

    def evaluate(self, reader: Reader) -> Number:
        return reader(self.name, ())

    def reads(self) -> Iterator[ReadOccurrence]:
        yield ReadOccurrence(self.name, ())

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


class Index(Expr):
    """An array-element read ``name(sub1, sub2, ...)``."""

    __slots__ = ("name", "subscripts")

    def __init__(self, name: str, subscripts: Sequence[Expr]):
        if not name:
            raise ExpressionError("array name must be non-empty")
        subs = tuple(as_expr(s) for s in subscripts)
        if not subs:
            raise ExpressionError(f"array read of {name!r} needs subscripts")
        self.name = name
        self.subscripts = subs

    def evaluate(self, reader: Reader) -> Number:
        subs = tuple(int(round(s.evaluate(reader))) for s in self.subscripts)
        return reader(self.name, subs)

    def reads(self) -> Iterator[ReadOccurrence]:
        for sub in self.subscripts:
            yield from sub.reads()
        yield ReadOccurrence(self.name, self.subscripts)

    def children(self) -> Tuple[Expr, ...]:
        return self.subscripts

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Index)
            and other.name == self.name
            and other.subscripts == self.subscripts
        )

    def __hash__(self) -> int:
        return hash(("Index", self.name, self.subscripts))


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
_BINARY_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else 0.0,
    "//": lambda a, b: a // b if b != 0 else 0,
    "%": lambda a, b: a % b if b != 0 else 0,
    "**": lambda a, b: a ** b,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
}

_UNARY_OPS: dict = {
    "-": lambda a: -a,
    "+": lambda a: +a,
    "not": lambda a: int(not bool(a)),
    "abs": abs,
}

_INTRINSICS: dict = {
    "abs": abs,
    "min": min,
    "max": max,
    "mod": lambda a, b: a % b if b != 0 else 0,
    "sqrt": lambda a: math.sqrt(abs(a)),
    "exp": lambda a: math.exp(min(a, 60.0)),
    "log": lambda a: math.log(abs(a)) if a != 0 else 0.0,
    "sin": math.sin,
    "cos": math.cos,
    "int": lambda a: int(a),
    "sign": lambda a: (a > 0) - (a < 0),
}


class BinOp(Expr):
    """A binary operation.  Comparison and logical results are 0 / 1."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _BINARY_OPS:
            raise ExpressionError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = as_expr(left)
        self.right = as_expr(right)

    def evaluate(self, reader: Reader) -> Number:
        lhs = self.left.evaluate(reader)
        rhs = self.right.evaluate(reader)
        try:
            return _BINARY_OPS[self.op](lhs, rhs)
        except (OverflowError, ValueError):  # pragma: no cover - defensive
            return 0.0

    def reads(self) -> Iterator[ReadOccurrence]:
        yield from self.left.reads()
        yield from self.right.reads()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinOp)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.left, self.right))


class UnaryOp(Expr):
    """A unary operation (negation, logical not, absolute value)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op not in _UNARY_OPS:
            raise ExpressionError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = as_expr(operand)

    def evaluate(self, reader: Reader) -> Number:
        return _UNARY_OPS[self.op](self.operand.evaluate(reader))

    def reads(self) -> Iterator[ReadOccurrence]:
        yield from self.operand.reads()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnaryOp)
            and other.op == self.op
            and other.operand == self.operand
        )

    def __hash__(self) -> int:
        return hash(("UnaryOp", self.op, self.operand))


class Call(Expr):
    """An intrinsic function call (``min``, ``max``, ``mod``, ``sqrt``...)."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr]):
        if func not in _INTRINSICS:
            raise ExpressionError(f"unknown intrinsic {func!r}")
        self.func = func
        self.args = tuple(as_expr(a) for a in args)

    def evaluate(self, reader: Reader) -> Number:
        values = [a.evaluate(reader) for a in self.args]
        try:
            return _INTRINSICS[self.func](*values)
        except (TypeError, ValueError, OverflowError):  # pragma: no cover
            return 0.0

    def reads(self) -> Iterator[ReadOccurrence]:
        for arg in self.args:
            yield from arg.reads()

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.func}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Call)
            and other.func == self.func
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash(("Call", self.func, self.args))


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
ExprLike = Union[Expr, Number, str]


def const_int(expr: Expr) -> Optional[int]:
    """Integer value of a constant expression, folding unary minus.

    The DSL parses ``-1`` as ``UnaryOp('-', Const(1))``, so bound
    checks that only accept :class:`Const` silently miss negative
    literals (e.g. a backward loop's step).  Returns ``None`` for
    anything non-constant or non-integral.
    """
    if isinstance(expr, Const):
        value = expr.value
        if float(value) == int(value):
            return int(value)
        return None
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = const_int(expr.operand)
        return -inner if inner is not None else None
    return None


def as_expr(value: ExprLike) -> Expr:
    """Coerce Python values into :class:`Expr` nodes.

    Numbers become :class:`Const`, strings become scalar :class:`Var`
    reads, and :class:`Expr` instances pass through unchanged.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise ExpressionError(f"cannot convert {value!r} to an expression")


def add(*terms: ExprLike) -> Expr:
    """Sum of one or more terms."""
    exprs = [as_expr(t) for t in terms]
    if not exprs:
        raise ExpressionError("add() needs at least one term")
    out = exprs[0]
    for term in exprs[1:]:
        out = BinOp("+", out, term)
    return out


def sub(a: ExprLike, b: ExprLike) -> Expr:
    """Difference ``a - b``."""
    return BinOp("-", as_expr(a), as_expr(b))


def mul(*factors: ExprLike) -> Expr:
    """Product of one or more factors."""
    exprs = [as_expr(f) for f in factors]
    if not exprs:
        raise ExpressionError("mul() needs at least one factor")
    out = exprs[0]
    for factor in exprs[1:]:
        out = BinOp("*", out, factor)
    return out


def div(a: ExprLike, b: ExprLike) -> Expr:
    """Quotient ``a / b`` (division by zero evaluates to 0)."""
    return BinOp("/", as_expr(a), as_expr(b))


def neg(a: ExprLike) -> Expr:
    """Negation ``-a``."""
    return UnaryOp("-", as_expr(a))


def idx(name: str, *subscripts: ExprLike) -> Index:
    """Array-element read ``name(subscripts...)``."""
    return Index(name, tuple(as_expr(s) for s in subscripts))


def intrinsics() -> Tuple[str, ...]:
    """Names of the supported intrinsic functions."""
    return tuple(sorted(_INTRINSICS))


def apply_binary(op: str, left: Number, right: Number) -> Number:
    """Apply a binary operator to evaluated operands (used by the runtime)."""
    try:
        return _BINARY_OPS[op](left, right)
    except KeyError:
        raise ExpressionError(f"unknown binary operator {op!r}") from None
    except (OverflowError, ValueError):  # pragma: no cover - defensive
        return 0.0


def apply_unary(op: str, operand: Number) -> Number:
    """Apply a unary operator to an evaluated operand (used by the runtime)."""
    try:
        return _UNARY_OPS[op](operand)
    except KeyError:
        raise ExpressionError(f"unknown unary operator {op!r}") from None


def apply_intrinsic(func: str, args: Sequence[Number]) -> Number:
    """Apply an intrinsic function to evaluated arguments (used by the runtime)."""
    try:
        fn = _INTRINSICS[func]
    except KeyError:
        raise ExpressionError(f"unknown intrinsic {func!r}") from None
    try:
        return fn(*args)
    except (TypeError, ValueError, OverflowError):  # pragma: no cover - defensive
        return 0.0
