"""Structural validation of programs.

The validator catches the mistakes that otherwise surface as confusing
failures deep inside analyses or the execution engines:

* references to undeclared variables,
* subscript-count mismatches against the declared array rank,
* scalars used with subscripts / arrays used without,
* malformed segment graphs (unreachable segments, missing branch
  expressions on multi-successor segments, edges to unknown segments),
* empty regions.

Validation returns a list of :class:`ValidationIssue`; callers decide
whether warnings are fatal.  :func:`validate_program` with
``strict=True`` raises on any *error*-severity issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ir.program import Program
from repro.ir.region import EXIT_NODE, ExplicitRegion, LoopRegion, Region
from repro.ir.reference import MemoryReference


class ValidationError(Exception):
    """Raised by :func:`validate_program` in strict mode."""


@dataclass(frozen=True)
class ValidationIssue:
    """One finding of the validator."""

    severity: str  # "error" | "warning"
    location: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.location}: {self.message}"


def _check_reference(
    program: Program, ref: MemoryReference, issues: List[ValidationIssue]
) -> None:
    symbol = program.symbols.get(ref.variable)
    location = ref.uid
    if symbol is None:
        issues.append(
            ValidationIssue(
                "error", location, f"undeclared variable {ref.variable!r}"
            )
        )
        return
    if symbol.is_array and not ref.subscripts:
        issues.append(
            ValidationIssue(
                "error",
                location,
                f"array {ref.variable!r} referenced without subscripts",
            )
        )
    if not symbol.is_array and ref.subscripts:
        issues.append(
            ValidationIssue(
                "error",
                location,
                f"scalar {ref.variable!r} referenced with subscripts",
            )
        )
    if symbol.is_array and ref.subscripts and len(ref.subscripts) != symbol.rank:
        issues.append(
            ValidationIssue(
                "error",
                location,
                f"{ref.variable!r} has rank {symbol.rank} but "
                f"{len(ref.subscripts)} subscripts were given",
            )
        )


def _check_explicit_region(
    region: ExplicitRegion, issues: List[ValidationIssue]
) -> None:
    names = set(region.segment_names())
    # Reachability from the entry.
    reachable = set()
    stack = [region.entry]
    while stack:
        node = stack.pop()
        if node in reachable or node == EXIT_NODE:
            continue
        reachable.add(node)
        stack.extend(region.edges.get(node, []))
    unreachable = names - reachable
    for seg in sorted(unreachable):
        issues.append(
            ValidationIssue(
                "warning",
                f"{region.name}.{seg}",
                "segment is unreachable from the region entry",
            )
        )
    # Multi-successor segments should carry a branch expression.
    for seg in region.segments:
        succs = region.edges.get(seg.name, [])
        if len(succs) > 1 and seg.branch is None:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"{region.name}.{seg.name}",
                    f"{len(succs)} successors but no branch expression; "
                    "the first successor will always be taken",
                )
            )
        if len(succs) > 2 and seg.branch is not None:
            issues.append(
                ValidationIssue(
                    "warning",
                    f"{region.name}.{seg.name}",
                    "branch expressions select between at most two successors",
                )
            )


def _check_loop_region(region: LoopRegion, issues: List[ValidationIssue]) -> None:
    trip = region.constant_trip_count()
    if trip == 0:
        issues.append(
            ValidationIssue(
                "warning", region.name, "loop region has a constant zero trip count"
            )
        )


def validate_region(program: Program, region: Region) -> List[ValidationIssue]:
    """Validate one region inside ``program``."""
    issues: List[ValidationIssue] = []
    for ref in region.references:
        _check_reference(program, ref, issues)
    if isinstance(region, ExplicitRegion):
        _check_explicit_region(region, issues)
    elif isinstance(region, LoopRegion):
        _check_loop_region(region, issues)
    return issues


def validate_program(program: Program, strict: bool = False) -> List[ValidationIssue]:
    """Validate the whole program.

    With ``strict=True`` raise :class:`ValidationError` listing all
    error-severity findings (warnings never raise).
    """
    issues: List[ValidationIssue] = []
    for ref in program.init_references + program.finale_references:
        _check_reference(program, ref, issues)
    for region in program.regions:
        issues.extend(validate_region(program, region))
    if strict:
        errors = [i for i in issues if i.severity == "error"]
        if errors:
            detail = "\n".join(str(e) for e in errors)
            raise ValidationError(
                f"program {program.name!r} failed validation:\n{detail}"
            )
    return issues
