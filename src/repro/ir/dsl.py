"""Fortran-flavoured text front end.

The evaluation workloads of the paper are Fortran loop nests; this
module provides a small, line-oriented language in which those loop
nests (and the explicit-segment worked examples) can be written as
plain text and parsed into the IR.  Example::

    program jacobi
      integer n = 64
      real a(64, 64), b(64, 64)

      init
        do j = 1, 64
          do i = 1, 64
            a(i, j) = i + 2 * j
          end do
        end do
      end init

      region SWEEP_DO10 speculative do j = 2, 63
        do i = 2, 63
          b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
        end do
        liveout b
      end region

      finale
        checksum = b(2, 2) + b(63, 63)
      end finale
    end program

Explicit-segment regions (used by the Figure 2 / Figure 3 examples)::

      region R explicit
        segment R0
          a = b + 1
        end segment
        segment R1
          c = a * 2
        end segment
        edges R0 -> R1
        liveout c
      end region

Comments start with ``!`` or ``#`` and run to the end of the line.
Declarations use ``real`` / ``integer`` (treated identically) and may
carry initial values for scalars.  ``liveout`` lines inside a region
list the variables that are live after the region.  A region may be
marked ``speculative`` (force speculative execution) or ``parallel``
(assert that the compiler may run it as a conventional parallel loop);
without a marker the compiler's dependence analysis decides.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.expr import BinOp, Call, Const, Expr, Index, UnaryOp, Var, intrinsics
from repro.ir.program import Program
from repro.ir.region import ExplicitRegion, LoopRegion, Region
from repro.ir.segment import Segment
from repro.ir.stmt import Assign, Do, If, Statement
from repro.ir.symbols import SymbolTable


class DSLSyntaxError(Exception):
    """Raised on any parse failure, carrying the offending line number."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        self.line_no = line_no
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


# ----------------------------------------------------------------------
# Expression tokenizer / parser
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d*(?:[eEdD][-+]?\d+)?|\.\d+(?:[eEdD][-+]?\d+)?|\d+(?:[eEdD][-+]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\*\*|<=|>=|==|!=|->|[-+*/%(),<>=])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_KEYWORD_OPS = {"and", "or", "not"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "name" | "op"
    text: str


def tokenize_expression(text: str, line_no: Optional[int] = None) -> List[_Token]:
    """Tokenize one expression string."""
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DSLSyntaxError(f"unexpected character {text[pos]!r}", line_no)
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.lower() in _KEYWORD_OPS:
            tokens.append(_Token("op", value.lower()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


class _ExprParser:
    """Recursive-descent expression parser over a token list."""

    def __init__(self, tokens: Sequence[_Token], line_no: Optional[int] = None):
        self.tokens = list(tokens)
        self.pos = 0
        self.line_no = line_no

    # -- token helpers --------------------------------------------------
    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise DSLSyntaxError("unexpected end of expression", self.line_no)
        self.pos += 1
        return tok

    def accept(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.kind == "op" and tok.text == text:
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> None:
        if not self.accept(text):
            got = self.peek().text if self.peek() else "<end>"
            raise DSLSyntaxError(f"expected {text!r}, got {got!r}", self.line_no)

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Expr:
        expr = self.parse_or()
        if not self.at_end():
            raise DSLSyntaxError(
                f"trailing tokens after expression: {self.peek().text!r}", self.line_no
            )
        return expr

    def parse_or(self) -> Expr:
        expr = self.parse_and()
        while self.accept("or"):
            expr = BinOp("or", expr, self.parse_and())
        return expr

    def parse_and(self) -> Expr:
        expr = self.parse_not()
        while self.accept("and"):
            expr = BinOp("and", expr, self.parse_not())
        return expr

    def parse_not(self) -> Expr:
        if self.accept("not"):
            return UnaryOp("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        expr = self.parse_additive()
        tok = self.peek()
        if tok is not None and tok.kind == "op" and tok.text in (
            "<",
            "<=",
            ">",
            ">=",
            "==",
            "!=",
        ):
            self.pos += 1
            expr = BinOp(tok.text, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> Expr:
        expr = self.parse_multiplicative()
        while True:
            if self.accept("+"):
                expr = BinOp("+", expr, self.parse_multiplicative())
            elif self.accept("-"):
                expr = BinOp("-", expr, self.parse_multiplicative())
            else:
                return expr

    def parse_multiplicative(self) -> Expr:
        expr = self.parse_unary()
        while True:
            if self.accept("*"):
                expr = BinOp("*", expr, self.parse_unary())
            elif self.accept("/"):
                expr = BinOp("/", expr, self.parse_unary())
            elif self.accept("%"):
                expr = BinOp("%", expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> Expr:
        if self.accept("-"):
            return UnaryOp("-", self.parse_unary())
        if self.accept("+"):
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self.accept("**"):
            return BinOp("**", base, self.parse_unary())
        return base

    def parse_primary(self) -> Expr:
        tok = self.advance()
        if tok.kind == "number":
            text = tok.text.lower().replace("d", "e")
            if any(c in text for c in ".e"):
                return Const(float(text))
            return Const(int(text))
        if tok.kind == "name":
            name = tok.text
            if self.accept("("):
                args: List[Expr] = []
                if not self.accept(")"):
                    args.append(self.parse_or())
                    while self.accept(","):
                        args.append(self.parse_or())
                    self.expect(")")
                if name.lower() in intrinsics():
                    return Call(name.lower(), args)
                return Index(name, args)
            return Var(name)
        if tok.kind == "op" and tok.text == "(":
            expr = self.parse_or()
            self.expect(")")
            return expr
        raise DSLSyntaxError(f"unexpected token {tok.text!r}", self.line_no)


def parse_expression(text: str, line_no: Optional[int] = None) -> Expr:
    """Parse one expression string into an :class:`Expr`."""
    return _ExprParser(tokenize_expression(text, line_no), line_no).parse()


# ----------------------------------------------------------------------
# Line-oriented program parser
# ----------------------------------------------------------------------
@dataclass
class _Line:
    no: int
    text: str


_ASSIGN_RE = re.compile(
    r"^(?P<target>[A-Za-z_][A-Za-z_0-9]*)\s*(?:\((?P<subs>[^=]*)\))?\s*=\s*(?P<rhs>.+)$"
)
_DO_RE = re.compile(
    r"^do\s+(?P<index>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*(?P<rest>.+)$", re.IGNORECASE
)
_IF_THEN_RE = re.compile(r"^if\s*\((?P<cond>.+)\)\s*then$", re.IGNORECASE)


def _split_guarded_if(text: str, line_no: int) -> Tuple[str, str]:
    """Split ``if (<cond>) <statement>`` into its condition and statement.

    The condition may itself contain parentheses, so the closing paren is
    found by balance counting rather than by a regular expression.
    """
    open_pos = text.find("(")
    if open_pos < 0:
        raise DSLSyntaxError(f"guarded IF without condition: {text!r}", line_no)
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                cond = text[open_pos + 1 : i]
                stmt = text[i + 1 :].strip()
                if not stmt:
                    raise DSLSyntaxError(
                        f"guarded IF without a statement: {text!r}", line_no
                    )
                return cond, stmt
    raise DSLSyntaxError(f"unbalanced parentheses in IF: {text!r}", line_no)
_REGION_LOOP_RE = re.compile(
    r"^region\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*(?P<hint>speculative|parallel)?\s*"
    r"do\s+(?P<index>[A-Za-z_][A-Za-z_0-9]*)\s*=\s*(?P<rest>.+)$",
    re.IGNORECASE,
)
_REGION_EXPLICIT_RE = re.compile(
    r"^region\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s*(?P<hint>speculative|parallel)?\s*explicit$",
    re.IGNORECASE,
)
_DECL_RE = re.compile(
    r"^(?:real|integer|double)\s+(?P<rest>.+)$", re.IGNORECASE
)


def _split_top_level_commas(text: str, line_no: int) -> List[str]:
    """Split on commas that are not nested in parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise DSLSyntaxError("unbalanced parentheses", line_no)
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise DSLSyntaxError("unbalanced parentheses", line_no)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _ProgramParser:
    """Parses the full line-oriented program grammar."""

    def __init__(self, source: str):
        self.lines: List[_Line] = []
        for no, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("!", 1)[0].split("#", 1)[0].strip()
            if text:
                self.lines.append(_Line(no, text))
        self.pos = 0

    # -- line helpers --------------------------------------------------
    def peek(self) -> Optional[_Line]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def advance(self) -> _Line:
        line = self.peek()
        if line is None:
            raise DSLSyntaxError("unexpected end of input")
        self.pos += 1
        return line

    def expect_keyword(self, keyword: str) -> _Line:
        line = self.advance()
        if line.text.lower() != keyword:
            raise DSLSyntaxError(f"expected {keyword!r}, got {line.text!r}", line.no)
        return line

    # -- program --------------------------------------------------------
    def parse_program(self) -> Program:
        line = self.advance()
        match = re.match(r"^program\s+([A-Za-z_][A-Za-z_0-9]*)$", line.text, re.I)
        if match is None:
            raise DSLSyntaxError("expected 'program NAME'", line.no)
        name = match.group(1)
        symbols = SymbolTable()
        init: List[Statement] = []
        finale: List[Statement] = []
        regions: List[Region] = []

        while True:
            line = self.peek()
            if line is None:
                raise DSLSyntaxError("missing 'end program'")
            lower = line.text.lower()
            if lower == "end program":
                self.advance()
                break
            if _DECL_RE.match(line.text):
                self.advance()
                self._parse_declaration(line, symbols)
            elif lower == "init":
                self.advance()
                init.extend(self._parse_statement_block({"end init"}))
                self.expect_keyword("end init")
            elif lower == "finale":
                self.advance()
                finale.extend(self._parse_statement_block({"end finale"}))
                self.expect_keyword("end finale")
            elif lower.startswith("region"):
                regions.append(self._parse_region())
            else:
                raise DSLSyntaxError(
                    f"unexpected line at program level: {line.text!r}", line.no
                )
        return Program(name, symbols=symbols, init=init, regions=regions, finale=finale)

    # -- declarations ----------------------------------------------------
    def _parse_declaration(self, line: _Line, symbols: SymbolTable) -> None:
        rest = _DECL_RE.match(line.text).group("rest")
        for item in _split_top_level_commas(rest, line.no):
            match = re.match(
                r"^([A-Za-z_][A-Za-z_0-9]*)\s*(?:\(([^)]*)\))?\s*(?:=\s*(.+))?$", item
            )
            if match is None:
                raise DSLSyntaxError(f"bad declaration {item!r}", line.no)
            name, dims, init_text = match.group(1), match.group(2), match.group(3)
            if dims:
                shape = []
                for dim in dims.split(","):
                    dim = dim.strip()
                    if not dim.isdigit():
                        raise DSLSyntaxError(
                            f"array extents must be integer literals, got {dim!r}",
                            line.no,
                        )
                    shape.append(int(dim))
                initial = float(init_text) if init_text else 0.0
                symbols.array(name, shape, initial=initial)
            else:
                initial = float(init_text) if init_text else 0.0
                symbols.scalar(name, initial=initial)

    # -- statements -------------------------------------------------------
    def _parse_statement_block(self, terminators: set) -> List[Statement]:
        statements: List[Statement] = []
        while True:
            line = self.peek()
            if line is None:
                raise DSLSyntaxError(
                    f"missing one of {sorted(terminators)!r} before end of input"
                )
            if line.text.lower() in terminators:
                return statements
            statements.append(self._parse_statement())

    def _parse_statement(self) -> Statement:
        line = self.advance()
        text = line.text
        lower = text.lower()

        match = _IF_THEN_RE.match(text)
        if match is not None:
            cond = parse_expression(match.group("cond"), line.no)
            then_body = self._parse_statement_block({"else", "end if", "endif"})
            else_body: List[Statement] = []
            terminator = self.advance()
            if terminator.text.lower() == "else":
                else_body = self._parse_statement_block({"end if", "endif"})
                self.advance()
            return If(cond, then_body, else_body)

        match = _DO_RE.match(text)
        if match is not None:
            index = match.group("index")
            parts = _split_top_level_commas(match.group("rest"), line.no)
            if len(parts) not in (2, 3):
                raise DSLSyntaxError("DO needs 'lower, upper[, step]'", line.no)
            lower_e = parse_expression(parts[0], line.no)
            upper_e = parse_expression(parts[1], line.no)
            step_e = parse_expression(parts[2], line.no) if len(parts) == 3 else Const(1)
            body = self._parse_statement_block({"end do", "enddo"})
            self.advance()
            return Do(index, lower_e, upper_e, body, step=step_e)

        if lower.startswith("if") and not lower.endswith("then"):
            cond_text, stmt_text = _split_guarded_if(text, line.no)
            cond = parse_expression(cond_text, line.no)
            inner = self._parse_assignment(stmt_text, line.no)
            inner.guard = cond
            return inner

        return self._parse_assignment(text, line.no)

    def _parse_assignment(self, text: str, line_no: int) -> Assign:
        match = _ASSIGN_RE.match(text)
        if match is None:
            raise DSLSyntaxError(f"cannot parse statement {text!r}", line_no)
        target = match.group("target")
        subs_text = match.group("subs")
        rhs = parse_expression(match.group("rhs"), line_no)
        subscripts: List[Expr] = []
        if subs_text is not None:
            for part in _split_top_level_commas(subs_text, line_no):
                subscripts.append(parse_expression(part, line_no))
        return Assign(target, rhs, subscripts=subscripts)

    # -- regions -----------------------------------------------------------
    def _parse_region(self) -> Region:
        line = self.advance()
        text = line.text

        match = _REGION_LOOP_RE.match(text)
        if match is not None:
            name = match.group("name")
            hint = match.group("hint")
            index = match.group("index")
            parts = _split_top_level_commas(match.group("rest"), line.no)
            if len(parts) not in (2, 3):
                raise DSLSyntaxError("region DO needs 'lower, upper[, step]'", line.no)
            lower_e = parse_expression(parts[0], line.no)
            upper_e = parse_expression(parts[1], line.no)
            step_e = parse_expression(parts[2], line.no) if len(parts) == 3 else Const(1)
            body, live_out = self._parse_region_body({"end region"})
            self.expect_keyword("end region")
            return LoopRegion(
                name,
                index,
                lower_e,
                upper_e,
                body,
                step=step_e,
                live_out=live_out,
                speculative=self._hint_value(hint),
            )

        match = _REGION_EXPLICIT_RE.match(text)
        if match is not None:
            return self._parse_explicit_region(
                match.group("name"), self._hint_value(match.group("hint")), line.no
            )

        raise DSLSyntaxError(f"cannot parse region header {text!r}", line.no)

    @staticmethod
    def _hint_value(hint: Optional[str]) -> Optional[bool]:
        if hint is None:
            return None
        return hint.lower() == "speculative"

    def _parse_region_body(
        self, terminators: set
    ) -> Tuple[List[Statement], Optional[set]]:
        body: List[Statement] = []
        live_out: Optional[set] = None
        while True:
            line = self.peek()
            if line is None:
                raise DSLSyntaxError("missing 'end region'")
            lower = line.text.lower()
            if lower in terminators:
                return body, live_out
            if lower.startswith("liveout"):
                self.advance()
                names = line.text[len("liveout") :].strip()
                live_out = {n.strip() for n in names.split(",") if n.strip()}
                continue
            body.append(self._parse_statement())

    def _parse_explicit_region(
        self, name: str, hint: Optional[bool], header_line: int
    ) -> ExplicitRegion:
        segments: List[Segment] = []
        edges: Dict[str, List[str]] = {}
        live_out: Optional[set] = None
        while True:
            line = self.peek()
            if line is None:
                raise DSLSyntaxError("missing 'end region'", header_line)
            lower = line.text.lower()
            if lower == "end region":
                self.advance()
                break
            if lower.startswith("segment"):
                self.advance()
                match = re.match(
                    r"^segment\s+([A-Za-z_][A-Za-z_0-9]*)$", line.text, re.I
                )
                if match is None:
                    raise DSLSyntaxError(f"bad segment header {line.text!r}", line.no)
                seg_name = match.group(1)
                body: List[Statement] = []
                branch: Optional[Expr] = None
                while True:
                    inner = self.peek()
                    if inner is None:
                        raise DSLSyntaxError("missing 'end segment'", line.no)
                    inner_lower = inner.text.lower()
                    if inner_lower == "end segment":
                        self.advance()
                        break
                    if inner_lower.startswith("branch"):
                        self.advance()
                        expr_text = inner.text[len("branch") :].strip()
                        if expr_text.startswith("(") and expr_text.endswith(")"):
                            expr_text = expr_text[1:-1]
                        branch = parse_expression(expr_text, inner.no)
                        continue
                    body.append(self._parse_statement())
                segments.append(Segment(seg_name, body, branch=branch))
                continue
            if lower.startswith("edges"):
                self.advance()
                match = re.match(
                    r"^edges\s+([A-Za-z_][A-Za-z_0-9]*)\s*->\s*(.+)$", line.text, re.I
                )
                if match is None:
                    raise DSLSyntaxError(f"bad edges line {line.text!r}", line.no)
                src = match.group(1)
                dsts = [d.strip() for d in match.group(2).split(",") if d.strip()]
                edges.setdefault(src, []).extend(dsts)
                continue
            if lower.startswith("liveout"):
                self.advance()
                names = line.text[len("liveout") :].strip()
                live_out = {n.strip() for n in names.split(",") if n.strip()}
                continue
            raise DSLSyntaxError(
                f"unexpected line inside explicit region: {line.text!r}", line.no
            )
        return ExplicitRegion(
            name,
            segments,
            edges=edges if edges else None,
            live_out=live_out,
            speculative=hint,
        )


def parse_program(source: str) -> Program:
    """Parse DSL ``source`` text into a :class:`Program`."""
    return _ProgramParser(source).parse_program()


def parse_statements(source: str) -> List[Statement]:
    """Parse a bare statement block (handy in tests)."""
    parser = _ProgramParser(source)
    statements: List[Statement] = []
    while parser.peek() is not None:
        statements.append(parser._parse_statement())
    return statements
