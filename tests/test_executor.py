"""Executor semantics: DO bounds, guards, op budget, cost cache."""

import gc

import pytest

from conftest import drive_stream
from repro.ir.dsl import parse_program, parse_statements
from repro.ir.expr import BinOp, Var
from repro.ir.stmt import Assign
from repro.runtime.errors import SimulationError
from repro.runtime.executor import (
    _COST_CACHE,
    _compute_cost,
    ReadOp,
    WriteOp,
    segment_coroutine,
)
from repro.runtime.interpreter import run_program
from repro.runtime.memory import MemoryImage


def _scalar_memory(*names: str) -> MemoryImage:
    from repro.ir.symbols import SymbolTable

    table = SymbolTable()
    for name in names:
        table.scalar(name)
    return MemoryImage(table)


def run_body(source_body: str, decls: str):
    src = f"program t\n{decls}\n  init\n{source_body}\n  end init\nend program"
    prog = parse_program(src)
    memory = MemoryImage(prog.symbols)
    ops = drive_stream(segment_coroutine(prog.init), memory)
    return memory, ops


class TestDoLoops:
    def test_upward_bounds_inclusive(self):
        memory, _ = run_body(
            "    do i = 1, 4\n      a(i) = i\n    end do", "  real a(4)"
        )
        assert [memory.read("a", (i,)) for i in range(1, 5)] == [1, 2, 3, 4]

    def test_negative_step_count_down(self):
        memory, ops = run_body(
            "    do i = 4, 1, -1\n      a(i) = 10 - i\n    end do", "  real a(4)"
        )
        writes = [op for op in ops if isinstance(op, WriteOp)]
        assert [w.subscripts[0] for w in writes] == [4, 3, 2, 1]

    def test_zero_trip_loop_executes_nothing(self):
        memory, ops = run_body(
            "    do i = 5, 1\n      a(i) = 1\n    end do", "  real a(5)"
        )
        assert not [op for op in ops if isinstance(op, WriteOp)]

    def test_zero_step_raises(self):
        stmts = parse_statements("do i = 1, 4, 0\n  s = 1\nend do")
        with pytest.raises(SimulationError, match="zero step"):
            drive_stream(segment_coroutine(stmts), _scalar_memory("s"))

    def test_index_shadowing_restored(self):
        body = (
            "    do i = 1, 2\n"
            "      do i = 5, 6\n"
            "        a(i) = 1\n"
            "      end do\n"
            "      b(i) = i\n"
            "    end do"
        )
        memory, _ = run_body(body, "  real a(6), b(2)")
        assert memory.read("b", (1,)) == 1
        assert memory.read("b", (2,)) == 2


class TestGuards:
    def test_guarded_assign_skips_store(self):
        memory, ops = run_body(
            "    if (0 > 1) a(1) = 5\n    if (2 > 1) a(2) = 7", "  real a(2)"
        )
        writes = [op for op in ops if isinstance(op, WriteOp)]
        assert len(writes) == 1
        assert memory.read("a", (2,)) == 7
        assert memory.read("a", (1,)) == 0.0

    def test_guard_reads_come_before_rhs_reads(self):
        memory, ops = run_body(
            "    if (g > 0) a(1) = b(1)", "  real a(1), b(1) = 3, g = 1"
        )
        reads = [op.variable for op in ops if isinstance(op, ReadOp)]
        assert reads == ["g", "b"]


class TestOpBudget:
    def test_budget_exceeded_raises(self):
        stmts = parse_statements("do i = 1, 1000\n  s = i\nend do")
        with pytest.raises(SimulationError, match="operation budget"):
            drive_stream(
                segment_coroutine(stmts, op_budget=50), _scalar_memory("s")
            )

    def test_budget_not_hit_for_small_body(self):
        ops = drive_stream(
            segment_coroutine(parse_statements("s = 1"), op_budget=10),
            _scalar_memory("s"),
        )
        assert ops  # completed without raising


class TestCostCache:
    def test_cost_counts_operators(self):
        stmt = Assign("x", BinOp("+", Var("a"), BinOp("*", Var("b"), Var("c"))))
        assert _compute_cost(stmt, stmt.rhs) == 3  # 1 + two operators

    def test_cache_entry_dies_with_statement(self):
        # Regression: the cache used to be keyed by id(stmt); a new
        # statement reusing a dead statement's address silently got the
        # old cost.  With weak keying the entry disappears instead.
        stmt = Assign("x", BinOp("+", Var("a"), Var("b")))
        _compute_cost(stmt, stmt.rhs)
        assert stmt in _COST_CACHE
        before = len(_COST_CACHE)
        del stmt
        gc.collect()
        assert len(_COST_CACHE) < before

    def test_distinct_statements_get_distinct_costs(self):
        cheap = Assign("x", Var("a"))
        costly = Assign("x", BinOp("+", Var("a"), BinOp("*", Var("b"), Var("c"))))
        assert _compute_cost(cheap, cheap.rhs) == 1
        assert _compute_cost(costly, costly.rhs) == 3


class TestSequentialInterpreter:
    def test_program_end_to_end(self):
        src = """
program t
  real a(8), total
  init
    do i = 1, 8
      a(i) = i
    end do
  end init
  region SUM do i = 1, 8
    total = total + a(i)
    liveout total
  end region
  finale
    total = total * 2
  end finale
end program
"""
        result = run_program(parse_program(src))
        assert result.value_of("total") == 2 * sum(range(1, 9))
        assert result.stats.segments_committed == 8

    def test_explicit_region_branching(self):
        src = """
program t
  real x, y
  region R explicit
    segment A
      x = 1
      branch (x > 0)
    end segment
    segment B
      y = 10
    end segment
    segment C
      y = 20
    end segment
    edges A -> B, C
    liveout y
  end region
end program
"""
        result = run_program(parse_program(src))
        assert result.value_of("y") == 10  # branch taken -> first successor
