"""Shared fixtures and helpers for the test suite."""

import os
import sys

# Allow running pytest without an installed package (the tier-1 command
# sets PYTHONPATH=src; this keeps bare `pytest` working too).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.runtime.memory import MemoryImage  # noqa: E402


def drive_stream(coroutine, memory: MemoryImage):
    """Pump a segment coroutine against ``memory``; return the op list."""
    ops = []
    try:
        op = coroutine.send(None)
        while True:
            ops.append(op)
            name = type(op).__name__
            if name == "ReadOp":
                op = coroutine.send(memory.read(op.variable, op.subscripts))
            else:
                if name == "WriteOp":
                    memory.write(op.variable, op.value, op.subscripts)
                op = coroutine.send(None)
    except StopIteration:
        return ops
