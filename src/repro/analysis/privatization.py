"""Segment-private variable recognition.

A variable is *private* to the segments of a region (Section 4.1,
"Private" category) when every segment that uses it writes its own value
before reading it and the value is not needed after the region:

* the variable is written somewhere in the region (purely read variables
  are *read-only*, a different category);
* no segment has an upward-exposed read of the variable (every read is
  covered by an earlier unconditional write in the same segment, using
  the coverage rules of :mod:`repro.analysis.access`);
* the variable is not live at the region exit.

Private variables carry no cross-segment data dependences, so the
runtime can give each segment its own private storage (the per-segment
private stacks the paper's evaluation describes) and all their
references can be labeled idempotent.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.access import AccessSummary, summarize_region_segments
from repro.analysis.readonly import read_only_variables, written_variables
from repro.ir.region import Region


def private_variables(
    region: Region,
    live_out: Set[str],
    summaries: Optional[Dict[str, AccessSummary]] = None,
) -> Set[str]:
    """Variables private to the segments of ``region``.

    ``live_out`` is the region's live-out set
    (:func:`repro.analysis.liveness.region_live_out`); ``summaries`` may
    be passed to reuse previously computed access summaries.
    """
    if summaries is None:
        summaries = summarize_region_segments(
            region, read_only_vars=read_only_variables(region)
        )
    written = written_variables(region)
    candidates = written - set(live_out)
    private: Set[str] = set()
    for var in candidates:
        exposed_anywhere = False
        for summary in summaries.values():
            info = summary.info(var)
            if info is None:
                continue
            if info.has_exposed_read:
                exposed_anywhere = True
                break
        if not exposed_anywhere:
            private.add(var)
    return private
