"""Idempotency reports.

The paper's evaluation reports *fractions of memory references* that are
idempotent, split by category (Figure 5 statically characterises whole
benchmarks; Figures 6-9 characterise individual loops and additionally
weight by dynamic execution counts).  This module aggregates labeling
results into those fractions, both statically (textual references) and
dynamically (weighted by per-reference execution counts collected by the
sequential interpreter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.idempotency.labeling import LabelingResult
from repro.ir.types import IdempotencyCategory


@dataclass
class CategoryCounts:
    """Reference counts by idempotency category."""

    counts: Dict[IdempotencyCategory, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, category: IdempotencyCategory, amount: float = 1.0) -> None:
        self.counts[category] = self.counts.get(category, 0.0) + amount

    def merge(self, other: "CategoryCounts") -> "CategoryCounts":
        merged = CategoryCounts(dict(self.counts))
        for category, amount in other.counts.items():
            merged.add(category, amount)
        return merged

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        return sum(self.counts.values())

    def count(self, category: IdempotencyCategory) -> float:
        return self.counts.get(category, 0.0)

    @property
    def idempotent_total(self) -> float:
        return self.total - self.count(IdempotencyCategory.NOT_IDEMPOTENT)

    def fraction(self, category: IdempotencyCategory) -> float:
        if self.total == 0:
            return 0.0
        return self.count(category) / self.total

    @property
    def fraction_idempotent(self) -> float:
        if self.total == 0:
            return 0.0
        return self.idempotent_total / self.total

    def counts_dict(self) -> Dict[str, float]:
        """Raw reference counts keyed by category name."""
        return {
            category.value: self.count(category)
            for category in IdempotencyCategory
            if self.count(category) > 0
            or category is IdempotencyCategory.NOT_IDEMPOTENT
        }

    def fractions_dict(self) -> Dict[str, float]:
        """Fractions keyed by category name plus the ``idempotent`` total."""
        out = {
            category.value: self.fraction(category)
            for category in IdempotencyCategory
            if self.count(category) > 0
            or category is IdempotencyCategory.NOT_IDEMPOTENT
        }
        out["idempotent"] = self.fraction_idempotent
        return out

    def as_dict(self) -> Dict[str, object]:
        """Counts and fractions, kept apart.

        ``fractions`` holds only values in [0, 1]; the raw reference
        counts (including ``total_references``) live under ``counts`` so
        consumers never mistake an absolute count for a fraction.
        """
        counts = self.counts_dict()
        counts["total_references"] = self.total
        return {"counts": counts, "fractions": self.fractions_dict()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{cat.value}={amount:g}" for cat, amount in sorted(
                self.counts.items(), key=lambda kv: kv[0].value
            )
        )
        return f"<CategoryCounts {parts}>"


# ----------------------------------------------------------------------
def count_static_references(labeling: LabelingResult) -> CategoryCounts:
    """Static (textual) reference counts by category for one region."""
    counts = CategoryCounts()
    for ref in labeling.region.references:
        counts.add(labeling.category_of(ref))
    return counts


def count_dynamic_references(
    labeling: LabelingResult,
    execution_counts: Mapping[str, int],
) -> CategoryCounts:
    """Dynamic reference counts by category for one region.

    ``execution_counts`` maps reference uids to the number of times the
    reference executed (as collected by the sequential interpreter's
    trace); references that never executed contribute nothing.
    """
    counts = CategoryCounts()
    for ref in labeling.region.references:
        executed = execution_counts.get(ref.uid, 0)
        if executed:
            counts.add(labeling.category_of(ref), float(executed))
    return counts


def merge_counts(per_region: Iterable[CategoryCounts]) -> CategoryCounts:
    """Aggregate counts over several regions (e.g. a whole benchmark)."""
    merged = CategoryCounts()
    for counts in per_region:
        merged = merged.merge(counts)
    return merged


def format_fraction_table(
    rows: Mapping[str, CategoryCounts],
    title: Optional[str] = None,
) -> str:
    """Render a table of idempotent-reference fractions.

    ``rows`` maps a row label (benchmark or loop name) to its counts;
    columns are the three categories of Figure 5 plus the idempotent
    total.
    """
    header = (
        f"{'name':<22} {'read-only':>10} {'private':>10} "
        f"{'shared-dep':>11} {'fully-ind':>10} {'idempotent':>11} {'refs':>12}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for name, counts in rows.items():
        lines.append(
            f"{name:<22} "
            f"{counts.fraction(IdempotencyCategory.READ_ONLY):>10.1%} "
            f"{counts.fraction(IdempotencyCategory.PRIVATE):>10.1%} "
            f"{counts.fraction(IdempotencyCategory.SHARED_DEPENDENT):>11.1%} "
            f"{counts.fraction(IdempotencyCategory.FULLY_INDEPENDENT):>10.1%} "
            f"{counts.fraction_idempotent:>11.1%} "
            f"{counts.total:>12.0f}"
        )
    return "\n".join(lines)
