"""Batched speculative replay: whole-segment attempts as slot programs.

The op-interleaved scheduler of :mod:`repro.runtime.engines` simulates
concurrency by age-ordered round-robin -- one operation per in-flight
segment per round -- which is faithful but costs a coroutine resume, an
``isinstance`` dispatch and several dict operations *per simulated
operation*.  For the loop regions the trace machinery of
:mod:`repro.runtime.trace` can capture, the whole attempt is a known
straight-line slot program; this module executes it in one go:

1. **Run** the entire segment attempt against segment-local read/write
   logs, with no store interaction: a speculative read serves from the
   attempt's own write log, then from the nearest-older in-flight
   attempt's write log (the forwarding contract), then from memory; a
   direct (idempotent) read sees memory plus the attempt's own direct
   writes; private references use the per-attempt private frame.
   Affine subscript templates are flattened once per program to
   column-major ``base + coeff * iv`` offsets and evaluated for the
   whole attempt in a single numpy expression (plain list arithmetic
   when numpy is unavailable); gather/value-dependent subscripts use
   the compiled slot programs of the trace.
2. **Validate post-hoc**: the exposed reads and buffered writes are
   bulk-installed into the attempt's :class:`SegmentBuffer` (so
   forwarding sources stay nearest-older and violations are still
   detected by age against the transferred read set), and at commit
   time every externally-served read value is compared against
   committed memory.  The attempt is a deterministic function of its
   external read values, so equality proves the batched attempt
   bit-identical to a sequential re-execution at that point.
3. **Commit in bulk** -- one store drain plus the write log in program
   order -- or squash and fall back: a validation failure re-runs the
   attempt (now oldest, it reads committed state and must validate), a
   capacity overflow drains the partial buffer like the interleaved
   engine's write-through contract, re-executing through memory only
   when its logs turn out stale.

Fault injection (chaos runs) preserves the resilience recovery
contract: with an injector attached, attempts are driven op-by-op
through :func:`repro.runtime.trace.replay_segment` so ``perturb_op``
sees every operation, forwarded serves go through ``store.forward``
(letting ``corrupt_forward`` poison the consuming buffer for the
engine's scrub), and a mid-attempt fault restarts the attempt plus
everything younger -- exactly the interleaved footprint.  Timing is
priced in bulk through :meth:`repro.timing.cost.CostModel.batch_cost`
with one :meth:`repro.timing.events.TimingRecorder.batched` event per
attempt.

Batching is opt-in (``batch=True`` on the engines; ``repro.bench``
enables it by default with a ``--no-batch`` escape) and silently falls
back to the op-interleaved scheduler for regions the trace cannot
capture (input-dependent control flow, oversized traces, non-integral
or out-of-bounds affine templates), whenever an op budget or a latency
model is in force, and for explicit regions (control speculation stays
op-interleaved).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.log import get_logger

try:  # numpy accelerates affine offset vectors; everything else is pure
    import numpy as _np
except ImportError as _numpy_exc:
    # Only a genuinely absent numpy degrades to the pure-python path —
    # and it says so once, loudly: a bare ``except Exception`` here
    # used to swallow unrelated numpy-initialization failures and
    # silently slow every batched run down.  Anything other than
    # ImportError propagates.
    _np = None
    get_logger("runtime.batch").warning(
        "numpy unavailable; batched replay falls back to pure-python "
        "offset arithmetic",
        error=str(_numpy_exc),
    )

from repro.ir.region import LoopRegion
from repro.ir.symbols import SymbolError
from repro.runtime.errors import (
    AddressError,
    EngineLivelockError,
    FaultInjected,
    SimulationError,
)
from repro.runtime.executor import ComputeOp, ReadOp, WriteOp
from repro.runtime.memory import MemoryImage
from repro.runtime.stats import ExecutionStats
from repro.runtime.trace import (
    _ARITH_FALLBACK_ERRORS,
    EV_ASSIGN,
    EV_COMPUTE,
    EV_CTRL_READ,
    SegmentTrace,
    TraceError,
    _eval_arith,
    _program_subs,
    record_trace,
    replay_segment,
    trace_eligibility,
)

#: Serving-route codes (dense ints for the hot dispatch; the string
#: constants live in :mod:`repro.runtime.engines`).
R_SPEC = 0
R_DIRECT = 1
R_PRIVATE = 2

#: Flat step opcodes.
STEP_CTRL = 0    # (STEP_CTRL, addr, route_code, expected, variable)
STEP_ASSIGN = 1  # (STEP_ASSIGN, rhs_items, target_items, arith_fn,
                 #  arith_program, env, target_item)
# An item is ``(mode, payload, route_code)``:
#   mode 0 -- address resolved at build time (payload = Address);
#   mode 1 -- affine template (payload = index into the flattened
#             base/coeff arrays, offset computed once per attempt);
#   mode 2 -- slot-program subscripts (payload = (name, dims), resolved
#             per access against the attempt's read-value slots).


class _BuildError(Exception):
    """Internal: the trace cannot be compiled to a batch program."""


def _route_codes_for(routes: Dict[str, str]):
    """Mapping closure uid -> dense route code (absent = speculative)."""
    from repro.runtime.engines import ROUTE_DIRECT, ROUTE_PRIVATE

    def code(ref) -> int:
        if ref is None:
            return R_SPEC
        route = routes.get(ref.uid)
        if route is None:
            return R_SPEC
        if route == ROUTE_DIRECT:
            return R_DIRECT
        if route == ROUTE_PRIVATE:
            return R_PRIVATE
        return R_SPEC

    return code


class BatchProgram:
    """One region's recorded schedule compiled to flat batch steps."""

    __slots__ = (
        "region",
        "trace",
        "steps",
        "aff_names",
        "aff_base",
        "aff_coeff",
        "aff_base_np",
        "aff_coeff_np",
        "aff_bounds",
        "n_reads",
        "n_writes",
        "reads_by_route",
        "writes_by_route",
        "default_compute",
        "n_ctrl_computes",
        "assign_stmts",
        "ref_counts",
        "batched_ops",
        "_weighted",
    )

    def __init__(self, region: str, trace: SegmentTrace):
        self.region = region
        self.trace = trace
        self.steps: List[Tuple] = []
        self.aff_names: List[str] = []
        self.aff_base: List[int] = []
        self.aff_coeff: List[int] = []
        self.aff_base_np = None
        self.aff_coeff_np = None
        #: Per affine item: ((base, coeff, extent), ...) per dimension,
        #: validated against the actual iteration range at bind time.
        self.aff_bounds: List[Tuple] = []
        self.n_reads = 0
        self.n_writes = 0
        self.reads_by_route = [0, 0, 0]
        self.writes_by_route = [0, 0, 0]
        #: Sum of executor-level compute cycles per attempt (control
        #: computes plus each assignment's cost op).
        self.default_compute = 0
        self.n_ctrl_computes = 0
        #: Source statements of the assign steps (with unroll repeats),
        #: for recorder-weighted compute totals.
        self.assign_stmts: List[object] = []
        self.ref_counts: Dict[str, int] = {}
        self.batched_ops = 0
        self._weighted: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        self.batched_ops = (
            self.n_reads
            + self.n_writes
            + self.n_ctrl_computes
            + len(self.assign_stmts)
        )
        if _np is not None and self.aff_base:
            self.aff_base_np = _np.asarray(self.aff_base, dtype=_np.int64)
            self.aff_coeff_np = _np.asarray(self.aff_coeff, dtype=_np.int64)

    def bounds_ok(self, first_iv: int, last_iv: int) -> bool:
        """True when every affine subscript stays in bounds for the
        whole iteration range (each dimension is monotonic in ``iv``,
        so the two extreme values suffice)."""
        for bounds in self.aff_bounds:
            for base, coeff, extent in bounds:
                for iv in (first_iv, last_iv):
                    sub = base + coeff * iv
                    if sub < 1 or sub > extent:
                        return False
        return True

    def weighted_compute(self, cost) -> int:
        """Attempt compute cycles under a recorder's cost model
        (mirrors the interleaved engine's ``compute_cost`` hook, which
        prices assignment arithmetic with operator weights and control
        computes at one cycle)."""
        key = id(cost)
        cached = self._weighted.get(key)
        if cached is None:
            expression_cost = cost.expression_cost
            per_stmt: Dict[int, int] = {}
            total = self.n_ctrl_computes
            for stmt in self.assign_stmts:
                c = per_stmt.get(id(stmt))
                if c is None:
                    c = expression_cost(stmt.rhs)
                    per_stmt[id(stmt)] = c
                total += c
            self._weighted[key] = cached = total
        return cached


def build_batch_program(
    region: LoopRegion,
    trace: SegmentTrace,
    routes: Dict[str, str],
    symbols,
) -> BatchProgram:
    """Compile a recorded trace into flat batch steps.

    Raises :class:`_BuildError` when the trace uses something the flat
    executor cannot reproduce exactly (the caller falls back to the
    op-interleaved scheduler, which reproduces any failure mode of the
    original program verbatim).
    """
    bp = BatchProgram(region.name, trace)
    steps = bp.steps
    address_of = symbols.address_of
    route_code = _route_codes_for(routes)
    ref_counts = bp.ref_counts
    reads_by_route = bp.reads_by_route
    writes_by_route = bp.writes_by_route

    def count_ref(ref) -> None:
        if ref is not None:
            uid = ref.uid
            ref_counts[uid] = ref_counts.get(uid, 0) + 1

    def add_affine(name: str, dims) -> int:
        symbol = symbols.get(name)
        if symbol is None or not symbol.is_array or len(dims) != symbol.rank:
            raise _BuildError(f"affine template shape mismatch for {name!r}")
        obase = 0
        ocoeff = 0
        stride = 1
        bounds = []
        for (base, coeff), extent in zip(dims, symbol.shape):
            b = int(base)
            c = int(coeff)
            if b != base or c != coeff:
                raise _BuildError(f"non-integral affine term for {name!r}")
            obase += (b - 1) * stride
            ocoeff += c * stride
            bounds.append((b, c, int(extent)))
            stride *= int(extent)
        index = len(bp.aff_names)
        bp.aff_names.append(name)
        bp.aff_base.append(obase)
        bp.aff_coeff.append(ocoeff)
        bp.aff_bounds.append(tuple(bounds))
        return index

    def build_item(r) -> Tuple:
        bp.n_reads += 1
        if type(r) is ReadOp:
            count_ref(r.ref)
            code = route_code(r.ref)
            reads_by_route[code] += 1
            try:
                addr = address_of(r.variable, r.subscripts)
            except SymbolError as exc:
                raise _BuildError(str(exc)) from exc
            return (0, addr, code)
        name, ref = r[0], r[1]
        count_ref(ref)
        code = route_code(ref)
        reads_by_route[code] += 1
        if len(r) == 3:  # all dims affine (base, coeff)
            return (1, add_affine(name, r[2]), code)
        return (2, (name, r[2]), code)

    for event in trace.events_for(None):
        kind = event[0]
        if kind == EV_COMPUTE:
            bp.default_compute += event[1].cycles
            bp.n_ctrl_computes += 1
        elif kind == EV_CTRL_READ:
            rop = event[1]
            bp.n_reads += 1
            count_ref(rop.ref)
            code = route_code(rop.ref)
            reads_by_route[code] += 1
            try:
                addr = address_of(rop.variable, rop.subscripts)
            except SymbolError as exc:
                raise _BuildError(str(exc)) from exc
            steps.append((STEP_CTRL, addr, code, event[2], rop.variable))
        elif kind == EV_ASSIGN:
            (
                _,
                rhs_reads,
                target_reads,
                arith_fn,
                arith_program,
                env,
                cost_op,
                target,
                subs_or_dims,
                subs_affine,
                subs_const,
                wref,
                ca,
            ) = event
            rhs_items = tuple(build_item(r) for r in rhs_reads)
            target_items = tuple(build_item(r) for r in target_reads)
            bp.n_writes += 1
            count_ref(wref)
            wcode = route_code(wref)
            writes_by_route[wcode] += 1
            if subs_const:
                try:
                    taddr = address_of(target, subs_or_dims)
                except SymbolError as exc:
                    raise _BuildError(str(exc)) from exc
                tgt = (0, taddr, wcode)
            elif subs_affine:
                tgt = (1, add_affine(target, subs_or_dims), wcode)
            else:
                tgt = (2, (target, subs_or_dims), wcode)
            bp.default_compute += cost_op.cycles
            if ca is None or ca.stmt is None:  # pragma: no cover - defensive
                raise _BuildError("assign event lacks its compiled statement")
            bp.assign_stmts.append(ca.stmt)
            steps.append(
                (
                    STEP_ASSIGN,
                    rhs_items,
                    target_items,
                    arith_fn,
                    arith_program,
                    env,
                    tgt,
                )
            )
        else:  # pragma: no cover - EV_CHARGE is stripped by events_for(None)
            raise _BuildError(f"unexpected trace event kind {kind}")

    bp.finalize()
    return bp


class _BatchTask:
    """One in-flight segment attempt under the batched protocol."""

    __slots__ = (
        "key",
        "age",
        "iv",
        "buffer",
        # Final value per written address, speculative + direct routes,
        # program order (what younger attempts forward from and what the
        # bulk commit applies).
        "wlog",
        # Speculative-route write addresses in first-write order (the
        # subset of wlog that transfers into the segment buffer).
        "swlog",
        # Direct-route writes only (what the attempt's own direct reads
        # may see; memory does not have them until commit).
        "dwlog",
        # Exposed read log: address -> (value, served_speculatively).
        # First serve wins; the flag keeps repeat reads priced like the
        # interleaved engine would price them.
        "rlog",
        # Private frame (ROUTE_PRIVATE), flushed at commit.
        "plog",
        "n_spec_spec",
        "n_priv_hit",
        "cycles",
        "restarts",
        "executed",
        "stalled",
    )

    def __init__(self, key: Tuple, age: int, iv: int, buffer):
        self.key = key
        self.age = age
        self.iv = iv
        self.buffer = buffer
        self.wlog: Dict = {}
        self.swlog: Dict = {}
        self.dwlog: Dict = {}
        self.rlog: Dict = {}
        self.plog: Dict = {}
        self.n_spec_spec = 0
        self.n_priv_hit = 0
        self.cycles = 0
        self.restarts = 0
        self.executed = False
        self.stalled = False

    def clear_attempt(self) -> None:
        self.wlog.clear()
        self.swlog.clear()
        self.dwlog.clear()
        self.rlog.clear()
        self.plog.clear()
        self.n_spec_spec = 0
        self.n_priv_hit = 0
        self.executed = False
        self.stalled = False


class _BatchScheduler:
    """Windowed batched execution of one loop region."""

    def __init__(
        self,
        engine,
        bp: BatchProgram,
        region: LoopRegion,
        memory: MemoryImage,
        stats: ExecutionStats,
        lower: int,
        upper: int,
        step: int,
    ):
        self.engine = engine
        self.bp = bp
        self.region = region
        self.memory = memory
        self.stats = stats
        self.active: List[_BatchTask] = []

        def iteration_values():
            value = lower
            while (step > 0 and value <= upper) or (
                step < 0 and value >= upper
            ):
                yield value
                value += step

        self.values = iteration_values()

    # ------------------------------------------------------------------
    # lifecycle (mirrors the interleaved engine's accounting exactly)
    # ------------------------------------------------------------------
    def _start(self, iv: int) -> _BatchTask:
        engine = self.engine
        engine._age += 1
        age = engine._age
        key = (self.region.name, iv)
        buffer = engine.store.open_segment(key, age)
        task = _BatchTask(key, age, iv, buffer)
        self.stats.segments_started += 1
        if engine._recorder is not None:
            engine._recorder.segment_started(key, age)
        if engine._obs is not None:
            engine._obs.event(
                "engine.dispatch", category="engine", age=age, segment=key
            )
        return task

    def _refill(self) -> None:
        window = self.engine.window
        active = self.active
        while len(active) < window:
            iv = next(self.values, None)
            if iv is None:
                return
            active.append(self._start(iv))

    def _squash_restart(
        self,
        task: _BatchTask,
        by_age: Optional[int] = None,
        fault: bool = False,
    ) -> None:
        engine = self.engine
        stats = self.stats
        task.restarts += 1
        if (
            engine.max_restarts is not None
            and task.restarts > engine.max_restarts
        ):
            raise EngineLivelockError(
                f"segment {task.key!r} exceeded the restart budget "
                f"({engine.max_restarts}); the window is not making progress"
            )
        if fault:
            stats.fault_restarts += 1
        stats.rollbacks += 1
        stats.wasted_cycles += task.cycles
        task.cycles = 0
        if task.buffer is not None:
            engine.store.squash(task.buffer)
        task.clear_attempt()
        stats.segments_started += 1
        if engine._recorder is not None:
            engine._recorder.squashed(task.age, by_age)
        if engine._obs is not None:
            engine._obs.event(
                "engine.squash", category="engine", age=task.age, by_age=by_age
            )

    def _stall(self, task: _BatchTask) -> None:
        if not task.stalled:
            task.stalled = True
            self.stats.overflow_stalls += 1
            if self.engine._recorder is not None:
                self.engine._recorder.stalled(task.age)
            if self.engine._obs is not None:
                self.engine._obs.event(
                    "engine.stall", category="engine", age=task.age
                )

    def _scrub_poisoned(self) -> None:
        """Restart everything at or younger than the oldest poisoned
        buffer (corrupt_forward parity model; see the interleaved
        engine's ``_scrub_poisoned``)."""
        oldest = None
        for task in self.active:
            if task.buffer is not None and task.buffer.poisoned:
                oldest = task.age
                break
        if oldest is None:
            return
        if self.engine._obs is not None:
            self.engine._obs.event(
                "engine.poison_scrub", category="engine", age=oldest
            )
        for task in self.active:
            if task.age >= oldest:
                self._squash_restart(task, fault=True)

    def _fault_recover(self, task: _BatchTask) -> None:
        """Mid-attempt injected fault: restart the task and all younger."""
        if self.engine._obs is not None:
            self.engine._obs.event(
                "engine.fault_recovery", category="engine", age=task.age
            )
        for other in self.active:
            if other.age >= task.age:
                self._squash_restart(other, fault=True)

    # ------------------------------------------------------------------
    # post-hoc transfer and violation detection
    # ------------------------------------------------------------------
    def _transfer(self, task: _BatchTask) -> None:
        """Install the attempt's logs into its segment buffer.

        A refusal (capacity overflow, possibly fault-shrunk) stalls the
        task with its partial buffer kept -- the interleaved stall
        contract -- until it is oldest and resolves via the fallback.
        """
        wlog = task.wlog
        ok = self.engine.store.transfer(
            task.buffer,
            task.rlog.keys(),
            [(addr, wlog[addr]) for addr in task.swlog],
        )
        if not ok:
            self._stall(task)

    def _eager_violations(self, task: _BatchTask) -> None:
        """Age-based violation sweep over the attempt's write set.

        Only needed after restarts (younger attempts may hold values
        from the pre-restart execution) and under fault injection
        (``spurious_violation`` must keep firing); first fault-free
        executions cannot have younger readers, and commit-time
        validation catches everything else.
        """
        store = self.engine.store
        stats = self.stats
        oldest = None
        for addr in task.swlog:
            violators = store.violators(task.age, addr)
            if violators:
                stats.violations += len(violators)
                candidate = min(buffer.age for buffer in violators)
                if oldest is None or candidate < oldest:
                    oldest = candidate
        if oldest is None:
            return
        for other in self.active:
            if other.age >= oldest:
                self._squash_restart(other, by_age=task.age)

    def _validate(self, task: _BatchTask) -> bool:
        """Exact post-hoc check of every externally-served read value
        against committed memory.  The attempt is a deterministic
        function of these values (own-log serves are internal), so
        success proves its write set equals a sequential re-execution."""
        load = self.memory.load
        for addr, (value, _) in task.rlog.items():
            if load(addr) != value:
                return False
        return True

    # ------------------------------------------------------------------
    # attempt execution: flat path (no injector)
    # ------------------------------------------------------------------
    def _run_flat(self, task: _BatchTask) -> None:
        bp = self.bp
        iv = task.iv
        wlog = task.wlog
        swlog = task.swlog
        dwlog = task.dwlog
        rlog = task.rlog
        plog = task.plog
        load = self.memory.load
        address_of = self.memory.symbols.address_of
        names = bp.aff_names
        if bp.aff_base_np is not None:
            offs = (bp.aff_base_np + bp.aff_coeff_np * iv).tolist()
        elif bp.aff_base:
            offs = [b + c * iv for b, c in zip(bp.aff_base, bp.aff_coeff)]
        else:
            offs = ()
        n_spec_spec = 0
        n_priv_hit = 0
        older: List[Dict] = []
        for other in self.active:
            if other is task:
                break
            if other.executed:
                older.append(other.wlog)
        older.reverse()

        for step in bp.steps:
            if step[0] == STEP_ASSIGN:
                _, rhs_items, target_items, arith_fn, program, env, tgt = step
                values: List[float] = []
                append = values.append
                for item in rhs_items:
                    mode = item[0]
                    if mode == 1:
                        k = item[1]
                        addr = (names[k], offs[k])
                    elif mode == 0:
                        addr = item[1]
                    else:
                        name, dims = item[1]
                        try:
                            addr = address_of(
                                name, _program_subs(dims, values, iv, env)
                            )
                        except SymbolError as exc:
                            raise AddressError(str(exc)) from exc
                    code = item[2]
                    if code == 0:  # speculative
                        v = wlog.get(addr)
                        if v is not None:
                            if addr in swlog:
                                n_spec_spec += 1
                        else:
                            cached = rlog.get(addr)
                            if cached is not None:
                                v = cached[0]
                                if cached[1]:
                                    n_spec_spec += 1
                            else:
                                for owl in older:
                                    v = owl.get(addr)
                                    if v is not None:
                                        break
                                if v is not None:
                                    n_spec_spec += 1
                                    rlog[addr] = (v, True)
                                else:
                                    v = load(addr)
                                    rlog[addr] = (v, False)
                    elif code == 1:  # direct
                        v = dwlog.get(addr)
                        if v is None:
                            v = load(addr)
                    else:  # private
                        v = plog.get(addr)
                        if v is not None:
                            n_priv_hit += 1
                        else:
                            v = load(addr)
                    append(v)
                if arith_fn is not None:
                    try:
                        rhs_value = arith_fn(values, iv, env)
                    except _ARITH_FALLBACK_ERRORS:
                        rhs_value = _eval_arith(program, values, iv, env)
                else:
                    rhs_value = _eval_arith(program, values, iv, env)
                for item in target_items:
                    mode = item[0]
                    if mode == 1:
                        k = item[1]
                        addr = (names[k], offs[k])
                    elif mode == 0:
                        addr = item[1]
                    else:
                        name, dims = item[1]
                        try:
                            addr = address_of(
                                name, _program_subs(dims, values, iv, env)
                            )
                        except SymbolError as exc:
                            raise AddressError(str(exc)) from exc
                    code = item[2]
                    if code == 0:
                        v = wlog.get(addr)
                        if v is not None:
                            if addr in swlog:
                                n_spec_spec += 1
                        else:
                            cached = rlog.get(addr)
                            if cached is not None:
                                v = cached[0]
                                if cached[1]:
                                    n_spec_spec += 1
                            else:
                                for owl in older:
                                    v = owl.get(addr)
                                    if v is not None:
                                        break
                                if v is not None:
                                    n_spec_spec += 1
                                    rlog[addr] = (v, True)
                                else:
                                    v = load(addr)
                                    rlog[addr] = (v, False)
                    elif code == 1:
                        v = dwlog.get(addr)
                        if v is None:
                            v = load(addr)
                    else:
                        v = plog.get(addr)
                        if v is not None:
                            n_priv_hit += 1
                        else:
                            v = load(addr)
                    append(v)
                mode = tgt[0]
                if mode == 1:
                    k = tgt[1]
                    addr = (names[k], offs[k])
                elif mode == 0:
                    addr = tgt[1]
                else:
                    name, dims = tgt[1]
                    try:
                        addr = address_of(
                            name, _program_subs(dims, values, iv, env)
                        )
                    except SymbolError as exc:
                        raise AddressError(str(exc)) from exc
                value = float(rhs_value)
                code = tgt[2]
                if code == 0:
                    wlog[addr] = value
                    swlog[addr] = None
                elif code == 1:
                    wlog[addr] = value
                    dwlog[addr] = value
                else:
                    plog[addr] = value
            else:  # STEP_CTRL
                _, addr, code, expected, variable = step
                if code == 0:
                    v = wlog.get(addr)
                    if v is not None:
                        if addr in swlog:
                            n_spec_spec += 1
                    else:
                        cached = rlog.get(addr)
                        if cached is not None:
                            v = cached[0]
                            if cached[1]:
                                n_spec_spec += 1
                        else:
                            for owl in older:
                                v = owl.get(addr)
                                if v is not None:
                                    break
                            if v is not None:
                                n_spec_spec += 1
                                rlog[addr] = (v, True)
                            else:
                                v = load(addr)
                                rlog[addr] = (v, False)
                elif code == 1:
                    v = dwlog.get(addr)
                    if v is None:
                        v = load(addr)
                else:
                    v = plog.get(addr)
                    if v is not None:
                        n_priv_hit += 1
                    else:
                        v = load(addr)
                if v != expected:
                    raise SimulationError(
                        f"trace replay divergence in region "
                        f"{bp.trace.region!r}: control read {variable!r} "
                        f"returned {v!r}, recorded {expected!r}"
                    )

        task.n_spec_spec = n_spec_spec
        task.n_priv_hit = n_priv_hit
        self._apply_attempt_stats(task)

    def _apply_attempt_stats(self, task: _BatchTask) -> None:
        """Bulk accounting for one flat attempt (what the interleaved
        scheduler accumulates per op)."""
        bp = self.bp
        stats = self.stats
        engine = self.engine
        reads_by_route = bp.reads_by_route
        writes_by_route = bp.writes_by_route
        stats.reads += bp.n_reads
        stats.writes += bp.n_writes
        stats.speculative_accesses += reads_by_route[0] + writes_by_route[0]
        stats.idempotent_accesses += reads_by_route[1] + writes_by_route[1]
        stats.private_accesses += reads_by_route[2] + writes_by_route[2]
        counts = stats.reference_counts
        for uid, n in bp.ref_counts.items():
            counts[uid] = counts.get(uid, 0) + n
        recorder = engine._recorder
        if recorder is not None:
            compute = bp.weighted_compute(recorder.cost)
        else:
            compute = bp.default_compute
        task.cycles += compute
        stats.cycles += compute
        stats.batched_attempts += 1
        stats.batched_ops += bp.batched_ops
        stats.batch_log_entries += (
            len(task.wlog) + len(task.rlog) + len(task.plog)
        )
        if recorder is not None:
            from repro.runtime.engines import ROUTE_PRIVATE, ROUTE_SPECULATIVE

            priced = recorder.cost.batch_cost(
                compute,
                reads={
                    ROUTE_SPECULATIVE: task.n_spec_spec,
                    ROUTE_PRIVATE: task.n_priv_hit,
                    None: bp.n_reads - task.n_spec_spec - task.n_priv_hit,
                },
                writes={
                    ROUTE_SPECULATIVE: writes_by_route[0],
                    ROUTE_PRIVATE: writes_by_route[2],
                    None: writes_by_route[1],
                },
            )
            recorder.batched(task.age, priced)

    # ------------------------------------------------------------------
    # attempt execution: driver path (fault injector attached)
    # ------------------------------------------------------------------
    def _run_driver(self, task: _BatchTask) -> None:
        """Pump the replayed attempt op-by-op through the fault hooks.

        Same serving discipline as the flat path, but every operation
        passes ``injector.perturb_op`` and forwarded serves go through
        ``store.forward`` so ``corrupt_forward`` can fire and poison the
        consuming buffer.  Stats accrue per op (a faulted attempt's
        partial work must count, as in the interleaved scheduler).
        """
        engine = self.engine
        injector = engine._injector
        store = engine.store
        stats = self.stats
        recorder = engine._recorder
        memory = self.memory
        load = memory.load
        address_of = memory.symbols.address_of
        iv = task.iv
        wlog = task.wlog
        swlog = task.swlog
        dwlog = task.dwlog
        rlog = task.rlog
        plog = task.plog
        older: List[_BatchTask] = []
        for other in self.active:
            if other is task:
                break
            if other.executed:
                older.append(other)
        older.reverse()

        from repro.runtime.engines import (
            ROUTE_DIRECT,
            ROUTE_PRIVATE,
            ROUTE_SPECULATIVE,
        )

        route_of = engine._routes.get
        ops = 0
        coroutine = replay_segment(self.bp.trace, iv)
        try:
            op = coroutine.send(None)
            while True:
                op = injector.perturb_op(op)
                ops += 1
                cls = type(op)
                if cls is ComputeOp:
                    task.cycles += op.cycles
                    stats.cycles += op.cycles
                    if recorder is not None:
                        recorder.op(task.age, "compute", op.cycles, None)
                    op = coroutine.send(None)
                    continue
                try:
                    address = address_of(op.variable, op.subscripts)
                except SymbolError as exc:
                    raise AddressError(str(exc)) from exc
                ref = op.ref
                route = (
                    route_of(ref.uid, ROUTE_SPECULATIVE)
                    if ref is not None
                    else ROUTE_SPECULATIVE
                )
                if cls is ReadOp:
                    served = route
                    if route is ROUTE_PRIVATE:
                        value = plog.get(address)
                        if value is None:
                            value = load(address)
                            served = None
                        else:
                            task.n_priv_hit += 1
                        stats.private_accesses += 1
                    elif route is ROUTE_DIRECT:
                        value = dwlog.get(address)
                        if value is None:
                            value = load(address)
                        stats.idempotent_accesses += 1
                    else:
                        value = wlog.get(address)
                        if value is not None:
                            if address not in swlog:
                                served = None
                        else:
                            cached = rlog.get(address)
                            if cached is not None:
                                value = cached[0]
                                if not cached[1]:
                                    served = None
                            else:
                                holder = None
                                for other in older:
                                    value = other.wlog.get(address)
                                    if value is not None:
                                        holder = other
                                        break
                                if value is not None:
                                    if (
                                        holder.buffer is not None
                                        and holder.buffer.holds(address)
                                    ):
                                        # Route the serve through the
                                        # store so corrupt_forward can
                                        # fire (it poisons task.buffer
                                        # for the scrub).  The nearest
                                        # older value-holding buffer is
                                        # the holder, so the value only
                                        # differs when corrupted.
                                        forwarded = store.forward(
                                            task.buffer, address
                                        )
                                        if forwarded is not None:
                                            value = forwarded
                                    rlog[address] = (value, True)
                                else:
                                    value = load(address)
                                    rlog[address] = (value, False)
                                    served = None
                        if served is not None and value is not None:
                            task.n_spec_spec += 1
                        stats.speculative_accesses += 1
                    stats.reads += 1
                    if ref is not None:
                        stats.count_reference(ref.uid)
                    if recorder is not None:
                        recorder.op(task.age, "read", 0, served)
                    op = coroutine.send(value)
                else:  # WriteOp
                    value = float(op.value)
                    if route is ROUTE_PRIVATE:
                        plog[address] = value
                        stats.private_accesses += 1
                    elif route is ROUTE_DIRECT:
                        wlog[address] = value
                        dwlog[address] = value
                        stats.idempotent_accesses += 1
                    else:
                        wlog[address] = value
                        swlog[address] = None
                        stats.speculative_accesses += 1
                    stats.writes += 1
                    if ref is not None:
                        stats.count_reference(ref.uid)
                    if recorder is not None:
                        recorder.op(task.age, "write", 0, route)
                    op = coroutine.send(None)
        except StopIteration:
            pass
        stats.batched_attempts += 1
        stats.batched_ops += ops
        stats.batch_log_entries += len(wlog) + len(rlog) + len(plog)

    # ------------------------------------------------------------------
    # head fallback: overflow drain / write-through re-execution
    # ------------------------------------------------------------------
    def _resolve_stalled_head(self, head: _BatchTask) -> None:
        """The oldest attempt overflowed its buffer during transfer.

        Its logs are complete (only the transfer stalled), so when they
        still validate the buffer simply drains early -- the interleaved
        write-through contract, minus the re-execution.  Stale logs are
        squashed and the attempt re-executes in write-through mode
        against committed memory.
        """
        engine = self.engine
        stats = self.stats
        memory = self.memory
        stats.batch_fallbacks += 1
        if self._validate(head):
            stats.overflow_entries += head.buffer.entries
            drained = engine.store.commit(head.buffer, memory)
            stats.commit_entries += drained
            head.buffer = None
            head.stalled = False
            if engine._recorder is not None:
                engine._recorder.drained(head.age, drained)
            if engine._obs is not None:
                engine._obs.event(
                    "engine.drain",
                    category="engine",
                    age=head.age,
                    entries=drained,
                )
            self._commit(head, drained=True)
            return
        stats.batch_violations += 1
        stats.violations += 1
        self._squash_restart(head)
        self._run_write_through(head)
        head.executed = True
        self._commit(head, drained=True)

    def _run_write_through(self, head: _BatchTask) -> None:
        """Re-execute the oldest attempt non-speculatively.

        Reads and writes go straight to memory (private references keep
        their frame); an injected fault here raises -- earlier writes
        already reached memory, so local re-execution would double-apply
        them, exactly the interleaved engine's write-through policy.
        """
        engine = self.engine
        injector = engine._injector
        stats = self.stats
        recorder = engine._recorder
        memory = self.memory
        load = memory.load
        store_value = memory.store
        address_of = memory.symbols.address_of
        plog = head.plog

        from repro.runtime.engines import ROUTE_DIRECT, ROUTE_PRIVATE, ROUTE_SPECULATIVE

        route_of = engine._routes.get
        ops = 0
        coroutine = replay_segment(self.bp.trace, head.iv)
        try:
            op = coroutine.send(None)
            while True:
                if injector is not None:
                    op = injector.perturb_op(op)
                ops += 1
                cls = type(op)
                if cls is ComputeOp:
                    head.cycles += op.cycles
                    stats.cycles += op.cycles
                    if recorder is not None:
                        recorder.op(head.age, "compute", op.cycles, None)
                    op = coroutine.send(None)
                    continue
                try:
                    address = address_of(op.variable, op.subscripts)
                except SymbolError as exc:
                    raise AddressError(str(exc)) from exc
                ref = op.ref
                route = (
                    route_of(ref.uid, ROUTE_SPECULATIVE)
                    if ref is not None
                    else ROUTE_SPECULATIVE
                )
                if cls is ReadOp:
                    served = route
                    if route is ROUTE_PRIVATE:
                        value = plog.get(address)
                        if value is None:
                            value = load(address)
                            served = None
                        else:
                            head.n_priv_hit += 1
                        stats.private_accesses += 1
                    elif route is ROUTE_DIRECT:
                        value = load(address)
                        stats.idempotent_accesses += 1
                    else:
                        value = load(address)
                        served = None
                        stats.speculative_accesses += 1
                    stats.reads += 1
                    if ref is not None:
                        stats.count_reference(ref.uid)
                    if recorder is not None:
                        recorder.op(head.age, "read", 0, served)
                    op = coroutine.send(value)
                else:  # WriteOp
                    served = route
                    if route is ROUTE_PRIVATE:
                        plog[address] = float(op.value)
                        stats.private_accesses += 1
                    else:
                        store_value(address, op.value)
                        if route is ROUTE_DIRECT:
                            stats.idempotent_accesses += 1
                        else:
                            stats.speculative_accesses += 1
                            served = None
                    stats.writes += 1
                    if ref is not None:
                        stats.count_reference(ref.uid)
                    if recorder is not None:
                        recorder.op(head.age, "write", 0, served)
                    op = coroutine.send(None)
        except StopIteration:
            pass
        stats.batched_attempts += 1
        stats.batched_ops += ops
        stats.batch_log_entries += len(plog)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------
    def _commit(self, head: _BatchTask, drained: bool = False) -> None:
        engine = self.engine
        stats = self.stats
        memory = self.memory
        store_value = memory.store
        entries = 0
        if head.buffer is not None:
            entries = engine.store.commit(head.buffer, memory)
            stats.commit_entries += entries
            head.buffer = None
        # The write log covers direct-route writes (which only exist in
        # the log until commit) and re-covers the buffered values with
        # the same program-order final values; a write-through fallback
        # leaves the log empty, so only the private frame remains.
        for address, value in head.wlog.items():
            store_value(address, value)
        for address, value in head.plog.items():
            store_value(address, value)
        stats.segments_committed += 1
        engine._committed_age = head.age
        engine._rounds_since_commit = 0
        if engine._recorder is not None:
            engine._recorder.committed(head.age, entries + len(head.plog))
        if engine._obs is not None:
            engine._obs.event(
                "engine.commit",
                category="engine",
                age=head.age,
                entries=entries + len(head.plog),
            )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        """Execute and transfer every pending attempt, oldest first."""
        engine = self.engine
        stats = self.stats
        active = self.active
        self._scrub_poisoned()
        engine._rounds_since_commit += 1
        if (
            engine.watchdog_rounds is not None
            and engine._rounds_since_commit > engine.watchdog_rounds
        ):
            raise EngineLivelockError(
                f"no segment committed in {engine.watchdog_rounds} "
                f"scheduling rounds; the engine is not making progress"
            )
        run_driver = engine._injector is not None
        for task in list(active):
            if task.stalled:
                if active and task is not active[0]:
                    stats.stall_rounds += 1
                continue
            if task.executed:
                continue
            try:
                if run_driver:
                    self._run_driver(task)
                else:
                    self._run_flat(task)
            except (FaultInjected, AddressError):
                if engine._injector is None:
                    raise
                self._fault_recover(task)
                break
            task.executed = True
            self._transfer(task)
            if not task.stalled and (run_driver or task.restarts > 0):
                self._eager_violations(task)
        self._scrub_poisoned()
        if engine.auditor is not None:
            engine.auditor.audit(
                engine.store, engine._committed_age, region=self.region.name
            )

    def _commit_phase(self) -> None:
        active = self.active
        stats = self.stats
        while active:
            self._scrub_poisoned()
            head = active[0]
            if not head.executed:
                break  # restarted; needs another sweep
            if head.stalled:
                self._resolve_stalled_head(head)
            elif not self._validate(head):
                stats.batch_violations += 1
                stats.violations += 1
                self._squash_restart(head)
                break
            else:
                self._commit(head)
            active.pop(0)
            self._refill()

    def run(self) -> None:
        self._refill()
        while self.active:
            self._sweep()
            self._commit_phase()


# ----------------------------------------------------------------------
# engine entry point
# ----------------------------------------------------------------------
def _prepare(region: LoopRegion, routes: Dict[str, str], memory: MemoryImage):
    """Record and compile ``region`` for batching; None = ineligible."""
    eligible, _reason = trace_eligibility(region)
    if not eligible:
        return None
    try:
        trace = record_trace(region, memory.read)
    except TraceError:
        return None
    try:
        return build_batch_program(region, trace, routes, memory.symbols)
    except _BuildError:
        return None


def try_run_batched(
    engine,
    region: LoopRegion,
    memory: MemoryImage,
    stats: ExecutionStats,
    lower: int,
    upper: int,
    step: int,
) -> bool:
    """Run ``region`` under the batched protocol if it is eligible.

    Returns ``False`` when the region cannot be batched (the caller
    falls back to the op-interleaved scheduler); ``True`` means the
    region executed (or had no iterations) and its effects are in
    ``memory`` / ``stats``.
    """
    cache = engine._batch_programs
    name = region.name
    if name in cache:
        bp = cache[name]
    else:
        bp = _prepare(region, engine._routes, memory)
        cache[name] = bp
    if bp is None:
        return False
    if step > 0:
        count = 0 if lower > upper else (upper - lower) // step + 1
    else:
        count = 0 if lower < upper else (lower - upper) // (-step) + 1
    if count == 0:
        return True
    last = lower + (count - 1) * step
    if not bp.bounds_ok(lower, last):
        # Out-of-range subscripts must fail exactly like the
        # interleaved path (mid-run AddressError with partial state).
        return False
    scheduler = _BatchScheduler(
        engine, bp, region, memory, stats, lower, upper, step
    )
    obs = engine._obs
    if obs is not None:
        with obs.span(
            "engine.batch",
            category="engine",
            region=name,
            engine=engine.engine_name,
            tasks=count,
            ops_per_attempt=bp.batched_ops,
        ):
            scheduler.run()
    else:
        scheduler.run()
    return True
